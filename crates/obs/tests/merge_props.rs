//! Property tests for [`MetricsRegistry::merge`]: associative,
//! commutative, identity — mirroring the `ActivityTrace::merge` laws that
//! underpin the engine's parallel fold determinism.

use glitch_obs::MetricsRegistry;
use proptest::prelude::*;

/// One random record operation: `(kind, name index, value)` against a
/// small shared name pool, so random registries overlap on some names and
/// differ on others. Kind 0 adds to a counter, 1 observes a gauge
/// maximum, 2 records a histogram sample.
type Op = (usize, usize, u64);

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn ops_strategy() -> proptest::collection::VecStrategy<(
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<u64>,
)> {
    proptest::collection::vec((0usize..3, 0usize..NAMES.len(), 0u64..1_000_000), 0..40)
}

fn registry_from_ops(ops: &[Op]) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for &(kind, name, value) in ops {
        match kind {
            0 => {
                let handle = m.counter(NAMES[name]);
                m.add(handle, value);
            }
            1 => {
                let handle = m.gauge(NAMES[name]);
                m.observe_max(handle, value);
            }
            _ => {
                let handle = m.histogram(NAMES[name]);
                m.record(handle, value);
            }
        }
    }
    m
}

fn merged(mut left: MetricsRegistry, right: &MetricsRegistry) -> MetricsRegistry {
    left.merge(right.clone());
    left
}

proptest! {
    /// `merge` is associative and commutative with the empty registry as
    /// identity — the laws that make the job-order fold of per-thread
    /// collectors independent of how the reduction is bracketed.
    #[test]
    fn merge_is_associative_commutative_identity(
        a_ops in ops_strategy(),
        b_ops in ops_strategy(),
        c_ops in ops_strategy(),
    ) {
        let a = registry_from_ops(&a_ops);
        let b = registry_from_ops(&b_ops);
        let c = registry_from_ops(&c_ops);
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let left = merged(merged(a.clone(), &b), &c);
        let right = merged(a.clone(), &merged(b.clone(), &c));
        prop_assert_eq!(&left, &right);
        // Commutativity: a ⊕ b == b ⊕ a.
        prop_assert_eq!(merged(a.clone(), &b), merged(b.clone(), &a));
        // Identity, both sides.
        prop_assert_eq!(merged(a.clone(), &MetricsRegistry::new()), a.clone());
        prop_assert_eq!(merged(MetricsRegistry::new(), &a), a);
    }

    /// Splitting one observation stream into chunks and folding them — in
    /// either direction — reproduces the single-collector registry, and
    /// equal registries export byte-identical JSON.
    #[test]
    fn chunked_folds_match_and_export_identically(
        ops in ops_strategy(),
    ) {
        let whole = registry_from_ops(&ops);
        let chunks: Vec<MetricsRegistry> = ops.chunks(7).map(registry_from_ops).collect();
        let mut forward = MetricsRegistry::new();
        for chunk in &chunks {
            forward.merge(chunk.clone());
        }
        let mut backward = MetricsRegistry::new();
        for chunk in chunks.iter().rev() {
            backward.merge(chunk.clone());
        }
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&backward, &whole);
        prop_assert_eq!(
            glitch_obs::export::metrics_json(&forward),
            glitch_obs::export::metrics_json(&backward)
        );
    }
}
