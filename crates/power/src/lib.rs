//! # glitch-power
//!
//! Dynamic power estimation for synchronous CMOS netlists, following
//! equation 1 and the measurement methodology of section 5 of the DATE'95
//! paper *Analysis and Reduction of Glitches in Synchronous Networks*:
//!
//! ```text
//! P_dyn = p_t · C_load · V_dd² · f
//! ```
//!
//! Power is decomposed into the paper's three components:
//!
//! 1. **combinational logic** — switched capacitance of every logic net,
//!    weighted by the simulated transition counts (so glitches cost real
//!    power),
//! 2. **flipflops** — a per-flipflop average power (the paper assumes 50%
//!    input activity), linear in the flipflop count,
//! 3. **clock line** — the clock capacitance grows with the number of
//!    flipflops and is charged every cycle.
//!
//! The default [`Technology`] is calibrated to a 0.8 µm / 5 V process so the
//! absolute numbers land in the same range as Table 3 of the paper; the
//! *shape* of the results (ratios between components, where the optimum
//! retiming lies) is what the reproduction relies on.
//!
//! ## Example
//!
//! ```
//! use glitch_power::Technology;
//!
//! let tech = Technology::cmos_0p8um_5v();
//! // 48 flipflops load the clock line with ~3.2 pF, as in Table 3.
//! let picofarad = tech.clock_capacitance(48) * 1e12;
//! assert!((picofarad - 3.2).abs() < 0.3);
//! ```

mod capacitance;
mod estimate;
mod tech;

pub use capacitance::CapacitanceModel;
pub use estimate::{
    estimate_power, estimate_power_from_counts, estimate_power_from_parts, PowerBreakdown,
    PowerReport,
};
pub use tech::Technology;
