//! Per-net load capacitance estimation.

use glitch_netlist::{NetId, Netlist};

use crate::tech::Technology;

/// Estimates the load capacitance of every net of a netlist from the
/// technology coefficients: driver output capacitance plus the gate
/// capacitance of every load pin plus per-fanout wiring.
#[derive(Debug, Clone)]
pub struct CapacitanceModel<'a> {
    netlist: &'a Netlist,
    tech: Technology,
}

impl<'a> CapacitanceModel<'a> {
    /// Creates a capacitance model for a netlist in a given technology.
    #[must_use]
    pub fn new(netlist: &'a Netlist, tech: Technology) -> Self {
        CapacitanceModel { netlist, tech }
    }

    /// The technology the model uses.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Load capacitance of one net, in farads.
    #[must_use]
    pub fn net_capacitance(&self, net: NetId) -> f64 {
        let record = self.netlist.net(net);
        let fanout = record.fanout() as f64;
        let driver = if record.driver().is_some() {
            self.tech.gate_output_cap
        } else {
            0.0
        };
        driver + fanout * (self.tech.gate_input_cap + self.tech.wire_cap_per_fanout)
    }

    /// Sum of all net capacitances, in farads.
    #[must_use]
    pub fn total_capacitance(&self) -> f64 {
        self.netlist
            .nets()
            .map(|(id, _)| self.net_capacitance(id))
            .sum()
    }

    /// Average net capacitance, in farads (0 for an empty netlist).
    #[must_use]
    pub fn average_capacitance(&self) -> f64 {
        if self.netlist.net_count() == 0 {
            0.0
        } else {
            self.total_capacitance() / self.netlist.net_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_scales_with_fanout() {
        let mut nl = Netlist::new("cap");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b, "x");
        let y1 = nl.inv(x, "y1");
        let y2 = nl.inv(x, "y2");
        nl.mark_output(y1);
        nl.mark_output(y2);
        let tech = Technology::cmos_0p8um_5v();
        let model = CapacitanceModel::new(&nl, tech);
        // x has a driver and two loads; y1 has a driver and no loads.
        let cx = model.net_capacitance(x);
        let cy = model.net_capacitance(y1);
        assert!(cx > cy);
        let expected_x =
            tech.gate_output_cap + 2.0 * (tech.gate_input_cap + tech.wire_cap_per_fanout);
        assert!((cx - expected_x).abs() < 1e-18);
        // The undriven primary input has no driver capacitance but one load.
        let ca = model.net_capacitance(a);
        assert!((ca - (tech.gate_input_cap + tech.wire_cap_per_fanout)).abs() < 1e-18);
        assert!(model.total_capacitance() > 0.0);
        assert!(model.average_capacitance() > 0.0);
        assert_eq!(model.technology(), &tech);
    }

    #[test]
    fn empty_netlist_has_zero_capacitance() {
        let nl = Netlist::new("empty");
        let model = CapacitanceModel::new(&nl, Technology::default());
        assert_eq!(model.total_capacitance(), 0.0);
        assert_eq!(model.average_capacitance(), 0.0);
    }
}
