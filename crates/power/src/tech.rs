//! Technology parameters: supply voltage and capacitance coefficients.

/// Electrical parameters of the implementation technology.
///
/// All capacitances are in farads and the supply voltage in volts. The
/// default values model the paper's 0.8 µm, 5 V standard-cell process: node
/// capacitances of a few hundred femtofarads (cell output plus local
/// wiring), an effective switched capacitance of 150 fF per flipflop per
/// cycle at the paper's assumed 50% data activity, and a clock load of about
/// 55 fF per flipflop on top of a 0.5 pF trunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Gate capacitance of one cell input pin, in farads.
    pub gate_input_cap: f64,
    /// Output (drain + local routing) capacitance of one driving cell, in
    /// farads.
    pub gate_output_cap: f64,
    /// Additional wiring capacitance per fanout connection, in farads.
    pub wire_cap_per_fanout: f64,
    /// Effective capacitance charged from the supply by one flipflop per
    /// clock cycle (internal nodes plus Q output, at the paper's 50% input
    /// activity assumption), in farads.
    pub ff_switched_cap: f64,
    /// Clock-line capacitance independent of the flipflop count (trunk and
    /// driver), in farads.
    pub clock_base_cap: f64,
    /// Clock-line capacitance added per flipflop (clock pin plus branch
    /// wiring), in farads.
    pub clock_cap_per_ff: f64,
}

impl Technology {
    /// The 0.8 µm / 5 V process the paper's layouts were made in
    /// (calibrated against Table 3, see the crate documentation).
    #[must_use]
    pub fn cmos_0p8um_5v() -> Self {
        Technology {
            vdd: 5.0,
            gate_input_cap: 40e-15,
            gate_output_cap: 250e-15,
            wire_cap_per_fanout: 50e-15,
            ff_switched_cap: 150e-15,
            clock_base_cap: 0.5e-12,
            clock_cap_per_ff: 55e-15,
        }
    }

    /// A loosely scaled deep-submicron variant (1.2 V, roughly 10× smaller
    /// capacitances) for what-if comparisons; the paper's analysis is
    /// technology-independent, only the absolute milliwatts change.
    #[must_use]
    pub fn cmos_65nm_1v2() -> Self {
        Technology {
            vdd: 1.2,
            gate_input_cap: 2e-15,
            gate_output_cap: 6e-15,
            wire_cap_per_fanout: 3e-15,
            ff_switched_cap: 8e-15,
            clock_base_cap: 50e-15,
            clock_cap_per_ff: 4e-15,
        }
    }

    /// Total clock-line capacitance for a circuit with `flipflops`
    /// flipflops.
    #[must_use]
    pub fn clock_capacitance(&self, flipflops: usize) -> f64 {
        self.clock_base_cap + self.clock_cap_per_ff * flipflops as f64
    }

    /// Average power drawn by one flipflop at clock frequency `f` (hertz),
    /// in watts.
    #[must_use]
    pub fn flipflop_power(&self, frequency: f64) -> f64 {
        self.ff_switched_cap * self.vdd * self.vdd * frequency
    }

    /// Power drawn by the clock line for `flipflops` flipflops at clock
    /// frequency `f` (hertz), in watts.
    #[must_use]
    pub fn clock_power(&self, flipflops: usize, frequency: f64) -> f64 {
        self.clock_capacitance(flipflops) * self.vdd * self.vdd * frequency
    }

    /// Energy drawn from the supply by one 0→1 transition of a node with
    /// capacitance `cap` (farads), in joules: `½·C·V²` is dissipated in the
    /// pull-up and `½·C·V²` is stored (and later burned by the 1→0
    /// transition), so on average each *pair* of transitions costs `C·V²`
    /// and each single transition `½·C·V²`.
    #[must_use]
    pub fn transition_energy(&self, cap: f64) -> f64 {
        0.5 * cap * self.vdd * self.vdd
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::cmos_0p8um_5v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_capacitance_matches_table_3() {
        // Table 3: 48 FF -> 3.2 pF, 174 -> 10.5 pF, 218 -> 12.8 pF,
        // 350 -> 19.9 pF.
        let tech = Technology::cmos_0p8um_5v();
        for (ffs, pf) in [(48usize, 3.2f64), (174, 10.5), (218, 12.8), (350, 19.9)] {
            let model = tech.clock_capacitance(ffs) * 1e12;
            assert!(
                (model - pf).abs() / pf < 0.1,
                "{ffs} flipflops: model {model:.1} pF vs paper {pf} pF"
            );
        }
    }

    #[test]
    fn flipflop_power_matches_table_3_baseline() {
        // Table 3 circuit 1: 48 flipflops dissipate 0.9 mW at 5 MHz.
        let tech = Technology::cmos_0p8um_5v();
        let total = tech.flipflop_power(5e6) * 48.0 * 1e3;
        assert!((total - 0.9).abs() < 0.15, "48 flipflops: {total:.2} mW");
    }

    #[test]
    fn clock_power_matches_table_3_baseline() {
        // Table 3 circuit 1: 3.2 pF of clock load dissipates 0.5 mW at 5 MHz.
        let tech = Technology::cmos_0p8um_5v();
        let mw = tech.clock_power(48, 5e6) * 1e3;
        assert!((mw - 0.5).abs() < 0.15, "clock power {mw:.2} mW");
    }

    #[test]
    fn default_is_the_paper_process() {
        assert_eq!(Technology::default(), Technology::cmos_0p8um_5v());
        assert!(Technology::cmos_65nm_1v2().vdd < Technology::default().vdd);
    }

    #[test]
    fn transition_energy_is_half_cv2() {
        let tech = Technology::cmos_0p8um_5v();
        let e = tech.transition_energy(100e-15);
        assert!((e - 0.5 * 100e-15 * 25.0).abs() < 1e-18);
    }
}
