//! Power estimation from simulated transition activity.

use std::fmt;

use glitch_activity::ActivityTrace;
use glitch_netlist::Netlist;

use crate::capacitance::CapacitanceModel;
use crate::tech::Technology;

/// The paper's three-way power decomposition, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Dissipation in the combinational logic (transition-activity driven).
    pub logic: f64,
    /// Dissipation inside the flipflops (linear in the flipflop count).
    pub flipflop: f64,
    /// Dissipation in the clock line (driven by the clock capacitance).
    pub clock: f64,
}

impl PowerBreakdown {
    /// Total dynamic power, in watts.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.logic + self.flipflop + self.clock
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "logic {:.2} mW + flipflop {:.2} mW + clock {:.2} mW = {:.2} mW",
            self.logic * 1e3,
            self.flipflop * 1e3,
            self.clock * 1e3,
            self.total() * 1e3
        )
    }
}

/// A full power report: the breakdown plus the operating point and circuit
/// figures it was computed for.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// The three-component breakdown, in watts.
    pub breakdown: PowerBreakdown,
    /// Clock frequency the estimate applies to, in hertz.
    pub frequency: f64,
    /// Number of flipflops in the circuit.
    pub flipflops: usize,
    /// Clock-line capacitance, in farads.
    pub clock_capacitance: f64,
    /// Average switched capacitance in the combinational logic per clock
    /// cycle, in farads.
    pub switched_cap_per_cycle: f64,
    /// Number of cycles of activity the estimate is based on.
    pub cycles: u64,
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "power @ {:.1} MHz, {} flipflops ({} cycles of activity)",
            self.frequency / 1e6,
            self.flipflops,
            self.cycles
        )?;
        writeln!(f, "  {}", self.breakdown)?;
        writeln!(
            f,
            "  clock capacitance {:.1} pF, switched logic capacitance {:.1} pF/cycle",
            self.clock_capacitance * 1e12,
            self.switched_cap_per_cycle * 1e12
        )
    }
}

/// Estimates the dynamic power of a netlist from a simulated activity trace.
///
/// The trace must have been recorded over the same netlist (node indices are
/// net indices, as produced by `glitch-sim`). Logic power counts every net
/// except primary inputs (driven by the environment) and flipflop outputs
/// (already covered by the per-flipflop figure); each transition charges or
/// discharges the net's load capacitance, costing `½·C·V²`.
///
/// # Panics
///
/// Panics if the trace covers fewer nodes than the netlist has nets.
#[must_use]
pub fn estimate_power(
    netlist: &Netlist,
    trace: &ActivityTrace,
    tech: &Technology,
    frequency: f64,
) -> PowerReport {
    assert!(
        trace.node_count() >= netlist.net_count(),
        "trace covers {} nodes but the netlist has {} nets",
        trace.node_count(),
        netlist.net_count()
    );
    let counts: Vec<u64> = (0..netlist.net_count())
        .map(|i| trace.node(i).transitions())
        .collect();
    estimate_power_from_counts(netlist, &counts, trace.cycles(), tech, frequency)
}

/// Estimates the dynamic power of a netlist from raw per-net transition
/// counts (indexed by net index) accumulated over `cycles` clock cycles.
///
/// This is the streaming-friendly core behind [`estimate_power`]: a probe
/// counting transitions on the fly produces numerically identical results
/// to the trace-based path because both funnel through this function.
///
/// # Panics
///
/// Panics if `counts` covers fewer entries than the netlist has nets.
#[must_use]
pub fn estimate_power_from_counts(
    netlist: &Netlist,
    counts: &[u64],
    cycles: u64,
    tech: &Technology,
    frequency: f64,
) -> PowerReport {
    assert!(
        counts.len() >= netlist.net_count(),
        "counts cover {} nets but the netlist has {} nets",
        counts.len(),
        netlist.net_count()
    );
    let model = CapacitanceModel::new(netlist, *tech);

    // Nets driven by flipflop outputs are part of the flipflop power figure;
    // primary inputs are driven by the environment.
    let mut eligible: Vec<bool> = netlist
        .nets()
        .map(|(_, net)| !net.is_primary_input())
        .collect();
    for cell_id in netlist.dff_cells() {
        for &out in netlist.cell(cell_id).outputs() {
            eligible[out.index()] = false;
        }
    }
    let caps: Vec<f64> = netlist
        .nets()
        .map(|(id, _)| model.net_capacitance(id))
        .collect();

    estimate_power_from_parts(
        &counts[..netlist.net_count()],
        &caps,
        &eligible,
        netlist.dff_count(),
        cycles,
        tech,
        frequency,
    )
}

/// The netlist-free core of the power estimate: per-net transition counts,
/// per-net load capacitances, a per-net eligibility mask (`false` for
/// primary inputs and flipflop outputs), and the flipflop count.
///
/// This is the single implementation of the paper's power formula; the
/// netlist-based [`estimate_power_from_counts`] and the streaming
/// `glitch_sim::PowerProbe` (which captures `caps`/`eligible` at run start
/// and re-estimates after merging shards) both delegate here, so every
/// path is numerically identical by construction.
///
/// # Panics
///
/// Panics if `counts`, `caps` and `eligible` have different lengths.
#[must_use]
pub fn estimate_power_from_parts(
    counts: &[u64],
    caps: &[f64],
    eligible: &[bool],
    flipflops: usize,
    cycles: u64,
    tech: &Technology,
    frequency: f64,
) -> PowerReport {
    assert!(
        counts.len() == caps.len() && counts.len() == eligible.len(),
        "counts ({}), capacitances ({}) and eligibility ({}) must cover the same nets",
        counts.len(),
        caps.len(),
        eligible.len()
    );
    let divisor = cycles.max(1);
    let mut switched_cap_per_cycle = 0.0f64;
    for ((&transitions, &cap), &eligible) in counts.iter().zip(caps).zip(eligible) {
        if !eligible {
            continue;
        }
        let per_cycle = transitions as f64 / divisor as f64;
        switched_cap_per_cycle += 0.5 * per_cycle * cap;
    }

    let breakdown = PowerBreakdown {
        logic: switched_cap_per_cycle * tech.vdd * tech.vdd * frequency,
        flipflop: tech.flipflop_power(frequency) * flipflops as f64,
        clock: if flipflops > 0 {
            tech.clock_power(flipflops, frequency)
        } else {
            0.0
        },
    };
    PowerReport {
        breakdown,
        frequency,
        flipflops,
        clock_capacitance: if flipflops > 0 {
            tech.clock_capacitance(flipflops)
        } else {
            0.0
        },
        switched_cap_per_cycle,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, RippleCarryAdder};
    use glitch_sim::{ActivityProbe, RandomStimulus, SimSession};

    fn adder_trace(bits: usize, cycles: u64) -> (Netlist, ActivityTrace) {
        let adder = RippleCarryAdder::new(bits, AdderStyle::CompoundCell);
        let stim = RandomStimulus::new(vec![adder.a.clone(), adder.b.clone()], cycles, 7)
            .hold(adder.cin, false);
        let mut report = SimSession::new(&adder.netlist)
            .stimulus(stim)
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        let trace = report.take_probe::<ActivityProbe>().unwrap().into_trace();
        (adder.netlist, trace)
    }

    #[test]
    fn logic_power_scales_with_frequency_and_activity() {
        let (nl, trace) = adder_trace(8, 200);
        let tech = Technology::cmos_0p8um_5v();
        let slow = estimate_power(&nl, &trace, &tech, 1e6);
        let fast = estimate_power(&nl, &trace, &tech, 10e6);
        assert!(slow.breakdown.logic > 0.0);
        assert!((fast.breakdown.logic / slow.breakdown.logic - 10.0).abs() < 1e-9);
        // A combinational adder has no flipflops: only logic power.
        assert_eq!(slow.breakdown.flipflop, 0.0);
        assert_eq!(slow.breakdown.clock, 0.0);
        assert_eq!(slow.flipflops, 0);
        assert!((slow.breakdown.total() - slow.breakdown.logic).abs() < 1e-15);
    }

    #[test]
    fn report_renders_human_readable_text() {
        let (nl, trace) = adder_trace(4, 50);
        let report = estimate_power(&nl, &trace, &Technology::default(), 5e6);
        let text = report.to_string();
        assert!(text.contains("5.0 MHz"));
        assert!(text.contains("logic"));
        assert!(text.contains("mW"));
        assert_eq!(report.cycles, 50);
    }

    #[test]
    fn flipflop_and_clock_components_appear_with_registers() {
        let mut nl = Netlist::new("reg8");
        let d = nl.add_input_bus("d", 8);
        let q = nl.register_bus(&d, "q");
        nl.mark_output_bus(&q);
        let session_report = SimSession::new(&nl)
            .stimulus(RandomStimulus::new(vec![d], 100, 3))
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        let tech = Technology::cmos_0p8um_5v();
        let trace = session_report.probe::<ActivityProbe>().unwrap().trace();
        let report = estimate_power(&nl, trace, &tech, 5e6);
        assert_eq!(report.flipflops, 8);
        assert!(report.breakdown.flipflop > 0.0);
        assert!(report.breakdown.clock > 0.0);
        // Q nets are excluded from logic power and there is no other logic,
        // so the logic component must be zero.
        assert!(report.breakdown.logic.abs() < 1e-15);
        assert!((report.clock_capacitance - tech.clock_capacitance(8)).abs() < 1e-18);
    }

    #[test]
    fn glitchier_circuits_burn_more_logic_power() {
        // The same adder simulated with more input activity (wider operands
        // change more bits) must not decrease in switched capacitance.
        let (nl_small, trace_small) = adder_trace(4, 300);
        let (nl_big, trace_big) = adder_trace(16, 300);
        let tech = Technology::default();
        let small = estimate_power(&nl_small, &trace_small, &tech, 5e6);
        let big = estimate_power(&nl_big, &trace_big, &tech, 5e6);
        assert!(big.breakdown.logic > small.breakdown.logic);
        assert!(big.switched_cap_per_cycle > small.switched_cap_per_cycle);
    }

    #[test]
    fn counts_path_matches_trace_path_bit_for_bit() {
        let (nl, trace) = adder_trace(8, 150);
        let tech = Technology::cmos_0p8um_5v();
        let from_trace = estimate_power(&nl, &trace, &tech, 5e6);
        let counts: Vec<u64> = (0..nl.net_count())
            .map(|i| trace.node(i).transitions())
            .collect();
        let from_counts = estimate_power_from_counts(&nl, &counts, trace.cycles(), &tech, 5e6);
        assert_eq!(from_trace, from_counts);
    }

    #[test]
    #[should_panic(expected = "counts cover")]
    fn mismatched_counts_are_rejected() {
        let (nl, _) = adder_trace(4, 10);
        let _ = estimate_power_from_counts(&nl, &[0, 0], 10, &Technology::default(), 5e6);
    }

    #[test]
    #[should_panic(expected = "trace covers")]
    fn mismatched_trace_is_rejected() {
        let (nl, _) = adder_trace(4, 10);
        let tiny = ActivityTrace::new(2);
        let _ = estimate_power(&nl, &tiny, &Technology::default(), 5e6);
    }
}
