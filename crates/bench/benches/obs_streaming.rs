//! The cost of the live-serving telemetry primitives added for the
//! `status` op and `--access-log`:
//!
//! - `windowed_record`: one [`WindowedHistogram::record`] sample — the
//!   per-request cost every admitted job pays twice (queue wait, handle
//!   time).
//! - `windowed_query`: merging the ring into 1-minute percentiles — the
//!   per-`status` read cost.
//! - `eventlog_append`: one access-log line framed and written — the
//!   per-request cost of `--access-log`.

use criterion::{criterion_group, criterion_main, Criterion};
use glitch_obs::{EventLog, WindowedHistogram, WINDOW_1M_MICROS};

fn bench_obs_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_streaming");

    group.bench_function("windowed_record", |b| {
        let mut histogram = WindowedHistogram::default();
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            histogram.record(now, std::hint::black_box(now % 4096));
        });
    });

    group.bench_function("windowed_query", |b| {
        let mut histogram = WindowedHistogram::default();
        // A fully-populated ring: worst-case merge width for a window.
        for i in 0..120_000u64 {
            histogram.record(i * 2_500, i % 8192);
        }
        let now = 120_000 * 2_500;
        b.iter(|| {
            let window = histogram.window(std::hint::black_box(now), WINDOW_1M_MICROS);
            std::hint::black_box((
                window.value_at_quantile(0.50),
                window.value_at_quantile(0.99),
            ));
        });
    });

    group.bench_function("eventlog_append", |b| {
        let dir = std::env::temp_dir().join(format!("glitch-obs-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let log = EventLog::create(dir.join("access.jsonl"), 1 << 30).expect("event log");
        let line = r#"{"id":1,"op":"analyze","fingerprint":"00deadbeef00cafe","cache":"hit","queue_us":12,"wall_us":3400,"outcome":"ok"}"#;
        b.iter(|| log.append(std::hint::black_box(line)).expect("append"));
        drop(log);
        std::fs::remove_dir_all(&dir).ok();
    });

    group.finish();
}

criterion_group!(benches, bench_obs_streaming);
criterion_main!(benches);
