//! Criterion benchmarks of the per-table experiment kernels (scaled-down
//! vector counts; the `exp_*` binaries run the paper-sized versions).

use criterion::{criterion_group, criterion_main, Criterion};
use glitch_bench::experiments::{
    direction_detector_activity, figure5, figure9, table1, table2, table3_power_sweep, worst_case,
};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("e1_worst_case_4bit", |b| {
        b.iter(|| worst_case(4, 0).observed_max)
    });
    group.bench_function("e3_figure5_16bit_200v", |b| {
        b.iter(|| figure5(16, 200).totals.transitions)
    });
    group.bench_function("e4_table1_100v", |b| b.iter(|| table1(100).len()));
    group.bench_function("e5_table2_100v", |b| b.iter(|| table2(100).len()));
    group.bench_function("e6_direction_detector_200v", |b| {
        b.iter(|| direction_detector_activity(200).totals.transitions)
    });
    group.bench_function("e7_power_sweep_100v", |b| {
        b.iter(|| table3_power_sweep(100, &[1, 4, 8]).optimum())
    });
    group.bench_function("e8_figure9_100v", |b| {
        b.iter(|| figure9(100).unbalanced_useless)
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
