//! Criterion benchmarks of the one-pass session API against the seed's
//! two-pass style: the session must deliver activity + power + waveform
//! from a single simulation at roughly the cost of the cheapest single-
//! artefact run, where the pre-session code paid one full simulation per
//! artefact.
//!
//! The `parallel_multi_seed` group measures the sharded executor: an
//! 8-seed sweep of a multiplier-class circuit run serially (1 worker)
//! versus fanned across 4 workers. On multi-core hardware the 4-worker
//! run should be comfortably > 1.5× faster; the reduction is bit-identical
//! either way (see `crates/sim/tests/parallel.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::power::Technology;
use glitch_core::sim::{
    ActivityProbe, AggregateReport, ParallelRunner, PowerProbe, RandomStimulus, SimJob, SimSession,
    VcdProbe,
};

const CYCLES: u64 = 50;
const SEED: u64 = 7;

fn stimulus(buses: &[Bus]) -> RandomStimulus {
    RandomStimulus::new(buses.to_vec(), CYCLES, SEED)
}

/// Bare simulation, no observers: the floor the probe overhead is measured
/// against.
fn bare(netlist: &Netlist, buses: &[Bus]) -> u64 {
    let report = SimSession::new(netlist)
        .stimulus(stimulus(buses))
        .run()
        .expect("settles");
    report.total_transitions()
}

/// The new way: one pass, three observers.
fn one_pass_session(netlist: &Netlist, buses: &[Bus]) -> u64 {
    let report = SimSession::new(netlist)
        .stimulus(stimulus(buses))
        .probe(ActivityProbe::new())
        .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
        .probe(VcdProbe::default())
        .run()
        .expect("settles");
    report.total_transitions()
}

/// The seed's way: one full simulation per artefact (activity+power pass,
/// then a separate waveform pass).
fn two_pass_seed_style(netlist: &Netlist, buses: &[Bus]) -> u64 {
    let analysis_pass = SimSession::new(netlist)
        .stimulus(stimulus(buses))
        .probe(ActivityProbe::new())
        .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
        .run()
        .expect("settles");
    let vcd_pass = SimSession::new(netlist)
        .stimulus(stimulus(buses))
        .probe(VcdProbe::default())
        .run()
        .expect("settles");
    analysis_pass.total_transitions() + vcd_pass.total_transitions()
}

fn bench_session(c: &mut Criterion) {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];

    let mut group = c.benchmark_group("session_vs_seed");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("bare_simulation", |b| {
        b.iter(|| bare(&mult.netlist, &buses))
    });
    group.bench_function("one_pass_session_3_probes", |b| {
        b.iter(|| one_pass_session(&mult.netlist, &buses))
    });
    group.bench_function("two_pass_seed_style", |b| {
        b.iter(|| two_pass_seed_style(&mult.netlist, &buses))
    });
    group.finish();
}

const SWEEP_SEEDS: usize = 8;
const SWEEP_CYCLES: u64 = 150;

/// An 8-seed multiplier sweep reduced to its aggregate, on `workers`
/// worker threads. Serial (1) vs parallel (4) is the speedup headline.
fn multi_seed_sweep(netlist: &Netlist, buses: &[Bus], workers: usize) -> u64 {
    let jobs: Vec<SimJob<'_>> = RandomStimulus::shard_seeds(SEED, SWEEP_SEEDS)
        .into_iter()
        .map(|seed| SimJob::new(netlist, buses.to_vec(), SWEEP_CYCLES, seed))
        .collect();
    let mut reports = ParallelRunner::new(workers)
        .run_sessions(&jobs)
        .expect("settles");
    let aggregate = AggregateReport::reduce(netlist, &jobs, &mut reports);
    aggregate.merged_totals().transitions
}

fn bench_parallel(c: &mut Criterion) {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];

    let mut group = c.benchmark_group("parallel_multi_seed");
    group.throughput(Throughput::Elements(SWEEP_SEEDS as u64 * SWEEP_CYCLES));
    group.bench_function("serial_1_worker", |b| {
        b.iter(|| multi_seed_sweep(&mult.netlist, &buses, 1))
    });
    group.bench_function("parallel_4_workers", |b| {
        b.iter(|| multi_seed_sweep(&mult.netlist, &buses, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_session, bench_parallel);
criterion_main!(benches);
