//! The compiled bit-parallel kernel against the event-driven queue on
//! the workload the hybrid engine targets: functional (end-of-cycle)
//! evaluation of a 64-seed batch on the paper's 8-bit array multiplier.
//!
//! The kernel packs all 64 seeds into the lanes of one `u64` word per
//! net, so one straight-line pass over the levelized program evaluates
//! the whole batch; the queue side runs the same 64 stimuli through the
//! reference event-driven simulator one session at a time. The
//! `kernel_gate` test enforces the minimum ratio in CI; this group
//! records both sides (plus the one-off compile cost) in
//! `BENCH_summary.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::sim::{kernel_prepass, RandomStimulus, SimJob, SimSession, StatsProbe};
use glitch_core::KernelProgram;

const CYCLES: u64 = 200;
const SEEDS: u64 = 64;
const SEED0: u64 = 0xA5A5;

fn bench_kernel(c: &mut Criterion) {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];
    let program = KernelProgram::compile(&mult.netlist).expect("acyclic");
    let jobs: Vec<SimJob> = (0..SEEDS)
        .map(|s| SimJob::new(&mult.netlist, buses.clone(), CYCLES, SEED0 + s))
        .collect();

    let mut group = c.benchmark_group("kernel_vs_queue");
    group.throughput(Throughput::Elements(SEEDS * CYCLES));
    group.bench_function("kernel_64_seeds", |b| {
        b.iter(|| {
            kernel_prepass(&mult.netlist, &program, &jobs)
                .expect("inputs only")
                .functional_transitions()
        })
    });
    group.bench_function("queue_64_seeds", |b| {
        b.iter(|| {
            (0..SEEDS)
                .map(|s| {
                    SimSession::new(&mult.netlist)
                        .stimulus(RandomStimulus::new(buses.clone(), CYCLES, SEED0 + s))
                        .probe(StatsProbe::new())
                        .run()
                        .expect("settles")
                        .total_transitions()
                })
                .sum::<u64>()
        })
    });
    group.bench_function("compile", |b| {
        b.iter(|| {
            KernelProgram::compile(&mult.netlist)
                .expect("acyclic")
                .op_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
