//! Criterion benchmarks of the transition-accounting and power-estimation
//! layers (independent of simulation time).

use criterion::{criterion_group, criterion_main, Criterion};
use glitch_core::activity::{split_by_parity, ActivityReport, ActivityTrace};
use glitch_core::arith::{AdderStyle, WallaceTreeMultiplier};
use glitch_core::power::{estimate_power, Technology};
use glitch_core::sim::{ActivityProbe, RandomStimulus, SimSession};

fn bench_analysis(c: &mut Criterion) {
    // Pre-simulate once; the benchmarks measure the pure analysis cost.
    let mult = WallaceTreeMultiplier::new(16, AdderStyle::CompoundCell);
    let mut report = SimSession::new(&mult.netlist)
        .stimulus(RandomStimulus::new(
            vec![mult.x.clone(), mult.y.clone()],
            100,
            3,
        ))
        .probe(ActivityProbe::new())
        .run()
        .expect("settles");
    let trace = report
        .take_probe::<ActivityProbe>()
        .expect("probe attached")
        .into_trace();

    c.bench_function("parity_classification_1M", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for count in 0..1_000_000u64 {
                acc += split_by_parity(count % 7).useless;
            }
            acc
        })
    });

    c.bench_function("activity_report_wallace16", |b| {
        b.iter(|| ActivityReport::from_trace(&mult.netlist, &trace).totals())
    });

    c.bench_function("power_estimate_wallace16", |b| {
        let tech = Technology::cmos_0p8um_5v();
        b.iter(|| {
            estimate_power(&mult.netlist, &trace, &tech, 5e6)
                .breakdown
                .total()
        })
    });

    c.bench_function("trace_recording_1k_cycles", |b| {
        let counts = vec![2u32; 2000];
        b.iter(|| {
            let mut t = ActivityTrace::new(2000);
            for _ in 0..1000 {
                t.record_cycle(&counts);
            }
            t.totals().transitions
        })
    });
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
