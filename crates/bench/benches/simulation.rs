//! Criterion benchmarks of the event-driven simulator: cycles per second on
//! the paper's circuits under the unit-delay model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glitch_core::arith::{
    AdderStyle, ArrayMultiplier, DirectionDetector, RippleCarryAdder, WallaceTreeMultiplier,
};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::sim::{ClockedSimulator, RandomStimulus, UnitDelay};

const CYCLES: u64 = 50;

fn run(netlist: &Netlist, buses: Vec<Bus>) -> u64 {
    let mut sim = ClockedSimulator::new(netlist, UnitDelay).expect("valid netlist");
    let stim = RandomStimulus::new(buses, CYCLES, 1);
    let stats = sim.run(stim).expect("settles");
    stats.iter().map(|s| s.transitions).sum()
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_delay_simulation");
    group.throughput(Throughput::Elements(CYCLES));

    let adder = RippleCarryAdder::new(16, AdderStyle::CompoundCell);
    group.bench_function(BenchmarkId::new("rca", 16), |b| {
        b.iter(|| run(&adder.netlist, vec![adder.a.clone(), adder.b.clone()]))
    });

    for bits in [8usize, 16] {
        let array = ArrayMultiplier::new(bits, AdderStyle::CompoundCell);
        group.bench_function(BenchmarkId::new("array_multiplier", bits), |b| {
            b.iter(|| run(&array.netlist, vec![array.x.clone(), array.y.clone()]))
        });
        let wallace = WallaceTreeMultiplier::new(bits, AdderStyle::CompoundCell);
        group.bench_function(BenchmarkId::new("wallace_multiplier", bits), |b| {
            b.iter(|| run(&wallace.netlist, vec![wallace.x.clone(), wallace.y.clone()]))
        });
    }

    let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let mut det_buses: Vec<Bus> = det.a.to_vec();
    det_buses.extend(det.b.iter().cloned());
    det_buses.push(det.threshold.clone());
    group.bench_function("direction_detector", |b| {
        b.iter(|| run(&det.netlist, det_buses.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
