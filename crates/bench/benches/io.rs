//! Criterion benchmarks of the netlist interchange layer: BLIF emission
//! and parsing throughput (both readers run on interned identifiers —
//! these groups pin that win), and event-driven simulation of a circuit
//! that went through the parse round trip (the end-to-end
//! `glitch-cli analyze` hot path).

use std::fmt::Write;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};
use glitch_core::sim::{ActivityProbe, RandomStimulus, SimSession};
use glitch_io::{emit_blif, parse_blif, parse_verilog, GateLibrary};

const SIM_CYCLES: u64 = 200;

/// A synthetic structural-Verilog module: a `stages`-deep xor/and chain
/// whose `a` and `b` inputs are re-referenced by every gate, the
/// identifier-heavy shape that exercises the parser's interning path.
fn synthetic_verilog(stages: usize) -> String {
    let mut text = String::from("module chain (a, b, y);\n  input a, b;\n  output y;\n");
    let wires: Vec<String> = (0..stages).map(|i| format!("t{i}")).collect();
    let _ = writeln!(text, "  wire {};", wires.join(", "));
    let _ = writeln!(text, "  xor g0 (t0, a, b);");
    for i in 1..stages {
        let gate = if i % 2 == 0 { "xor" } else { "and" };
        let other = if i % 3 == 0 { "a" } else { "b" };
        let _ = writeln!(text, "  {gate} g{i} (t{i}, t{}, {other});", i - 1);
    }
    let _ = writeln!(text, "  buf gy (y, t{});", stages - 1);
    text.push_str("endmodule\n");
    text
}

fn bench_io(c: &mut Criterion) {
    let library = GateLibrary::standard();

    // A mid-size circuit: a 16-bit Wallace multiplier is a few hundred
    // cells and a few kilobytes of BLIF.
    let mult = WallaceTreeMultiplier::new(16, AdderStyle::CompoundCell);
    let blif = emit_blif(&mult.netlist);

    let mut group = c.benchmark_group("blif");
    group.throughput(Throughput::Bytes(blif.len() as u64));
    group.bench_function("emit_wallace16", |b| {
        b.iter(|| emit_blif(&mult.netlist).len())
    });
    group.bench_function("parse_wallace16", |b| {
        b.iter(|| {
            parse_blif(&blif, &library)
                .expect("benchmark input parses")
                .cell_count()
        })
    });
    group.bench_function("round_trip_wallace16", |b| {
        b.iter(|| {
            let parsed = parse_blif(&blif, &library).expect("benchmark input parses");
            emit_blif(&parsed).len()
        })
    });
    group.finish();

    let verilog = synthetic_verilog(512);
    let mut group = c.benchmark_group("verilog");
    group.throughput(Throughput::Bytes(verilog.len() as u64));
    group.bench_function("parse_chain512", |b| {
        b.iter(|| {
            parse_verilog(&verilog, &library)
                .expect("benchmark input parses")
                .cell_count()
        })
    });
    group.finish();

    // Simulating a parsed circuit: the tail of the analyze pipeline.
    let adder_blif = emit_blif(&RippleCarryAdder::new(16, AdderStyle::CompoundCell).netlist);
    let parsed = parse_blif(&adder_blif, &library).expect("benchmark input parses");
    let buses: Vec<glitch_core::netlist::Bus> = parsed
        .inputs()
        .chunks(32)
        .map(|chunk| glitch_core::netlist::Bus::new(chunk.to_vec()))
        .collect();
    let mut group = c.benchmark_group("parsed_simulation");
    group.throughput(Throughput::Elements(SIM_CYCLES));
    group.bench_function("rca16_200_cycles", |b| {
        b.iter(|| {
            let report = SimSession::new(&parsed)
                .stimulus(RandomStimulus::new(buses.clone(), SIM_CYCLES, 42))
                .probe(ActivityProbe::new())
                .run()
                .expect("simulates");
            report
                .probe::<ActivityProbe>()
                .expect("probe attached")
                .trace()
                .totals()
                .transitions
        })
    });
    group.finish();
}

criterion_group!(benches, bench_io);
criterion_main!(benches);
