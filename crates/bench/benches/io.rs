//! Criterion benchmarks of the netlist interchange layer: BLIF emission
//! and parsing throughput, and event-driven simulation of a circuit that
//! went through the parse round trip (the end-to-end `glitch-cli analyze`
//! hot path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};
use glitch_core::sim::{ActivityProbe, RandomStimulus, SimSession};
use glitch_io::{emit_blif, parse_blif, GateLibrary};

const SIM_CYCLES: u64 = 200;

fn bench_io(c: &mut Criterion) {
    let library = GateLibrary::standard();

    // A mid-size circuit: a 16-bit Wallace multiplier is a few hundred
    // cells and a few kilobytes of BLIF.
    let mult = WallaceTreeMultiplier::new(16, AdderStyle::CompoundCell);
    let blif = emit_blif(&mult.netlist);

    let mut group = c.benchmark_group("blif");
    group.throughput(Throughput::Bytes(blif.len() as u64));
    group.bench_function("emit_wallace16", |b| {
        b.iter(|| emit_blif(&mult.netlist).len())
    });
    group.bench_function("parse_wallace16", |b| {
        b.iter(|| {
            parse_blif(&blif, &library)
                .expect("benchmark input parses")
                .cell_count()
        })
    });
    group.bench_function("round_trip_wallace16", |b| {
        b.iter(|| {
            let parsed = parse_blif(&blif, &library).expect("benchmark input parses");
            emit_blif(&parsed).len()
        })
    });
    group.finish();

    // Simulating a parsed circuit: the tail of the analyze pipeline.
    let adder_blif = emit_blif(&RippleCarryAdder::new(16, AdderStyle::CompoundCell).netlist);
    let parsed = parse_blif(&adder_blif, &library).expect("benchmark input parses");
    let buses: Vec<glitch_core::netlist::Bus> = parsed
        .inputs()
        .chunks(32)
        .map(|chunk| glitch_core::netlist::Bus::new(chunk.to_vec()))
        .collect();
    let mut group = c.benchmark_group("parsed_simulation");
    group.throughput(Throughput::Elements(SIM_CYCLES));
    group.bench_function("rca16_200_cycles", |b| {
        b.iter(|| {
            let report = SimSession::new(&parsed)
                .stimulus(RandomStimulus::new(buses.clone(), SIM_CYCLES, 42))
                .probe(ActivityProbe::new())
                .run()
                .expect("simulates");
            report
                .probe::<ActivityProbe>()
                .expect("probe attached")
                .trace()
                .totals()
                .transitions
        })
    });
    group.finish();
}

criterion_group!(benches, bench_io);
criterion_main!(benches);
