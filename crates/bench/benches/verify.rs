//! Criterion benchmarks of checker overhead — the `verify_overhead`
//! regression group.
//!
//! The verification subsystem attaches its checkers to the *same* one-pass
//! session the analyzer runs, so the cost of checking is the per-event
//! work of the checker hooks, not an extra simulation. This group
//! measures that margin on the 8-bit array multiplier: a bare analysis
//! session (activity + power + stats probes) against the same session
//! with the full checker suite (X-propagation, settle budgets on every
//! net, hazard classification) attached, and prints the observed
//! overhead ratio. The ROADMAP target is to *report* the ratio; there is
//! no hard gate yet.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::netlist::Netlist;
use glitch_core::power::Technology;
use glitch_core::sim::{
    ActivityProbe, InputAssignment, PowerProbe, RandomStimulus, SimSession, StatsProbe,
};
use glitch_core::verify::{BudgetSpec, CheckSuite};

const CYCLES: u64 = 300;
const SEED: u64 = 0x5EED;

struct Workload {
    netlist: Netlist,
    stimulus: Vec<InputAssignment>,
    suite: CheckSuite,
}

fn workload() -> Workload {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];
    let stimulus: Vec<InputAssignment> = RandomStimulus::new(buses, CYCLES, SEED).collect();
    let budgets = BudgetSpec::parse_list("*=cycle")
        .unwrap()
        .resolve(&mult.netlist)
        .unwrap();
    let suite = CheckSuite::new()
        .with_x_propagation()
        .with_budgets(budgets)
        .with_hazards();
    Workload {
        netlist: mult.netlist,
        stimulus,
        suite,
    }
}

fn bare_session(w: &Workload) -> u64 {
    let report = SimSession::new(&w.netlist)
        .stimulus(w.stimulus.clone())
        .probe(ActivityProbe::new())
        .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
        .probe(StatsProbe::new())
        .run()
        .expect("settles");
    report.total_transitions()
}

fn checked_session(w: &Workload) -> u64 {
    let report = SimSession::new(&w.netlist)
        .stimulus(w.stimulus.clone())
        .probe(ActivityProbe::new())
        .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
        .probe(StatsProbe::new())
        .probe(w.suite.build())
        .run()
        .expect("settles");
    report.total_transitions()
}

/// Wall-clock of `n` runs of `f`, in seconds.
fn time_runs(n: u32, mut f: impl FnMut() -> u64) -> f64 {
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64()
}

fn bench_verify_overhead(c: &mut Criterion) {
    let w = workload();
    // Checking must not perturb the analysis itself.
    assert_eq!(bare_session(&w), checked_session(&w));

    // The reported figure: checker overhead as a ratio over the bare
    // session (ROADMAP asks for the ratio, not a gate).
    let bare = time_runs(5, || bare_session(&w));
    let checked = time_runs(5, || checked_session(&w));
    println!(
        "verify_overhead: bare {:.3}s, checked {:.3}s -> {:.2}x \
         (full suite: x-propagation + budgets on every net + hazards)",
        bare,
        checked,
        checked / bare
    );

    let mut group = c.benchmark_group("verify_overhead");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("bare_analysis_session", |b| b.iter(|| bare_session(&w)));
    group.bench_function("checked_analysis_session", |b| {
        b.iter(|| checked_session(&w))
    });
    group.finish();
}

criterion_group!(benches, bench_verify_overhead);
criterion_main!(benches);
