//! Overhead of the observability layer on the simulation hot loop.
//!
//! Three rungs on the same multiplier workload:
//!
//! - `bare`: no probe at all — the untouched engine path, and what the
//!   CLI runs when no telemetry flag is given.
//! - `disabled_registry`: a [`MetricsProbe`] over a *disabled* registry —
//!   the hook plumbing fires every cycle but each record call is a flag
//!   check. This is the no-op mode whose cost the `metrics_gate` test
//!   pins below 5%.
//! - `enabled_registry`: full metrics collection (counters, gauges and
//!   per-cycle histograms).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::sim::{MetricsProbe, RandomStimulus, SimSession};
use glitch_obs::MetricsRegistry;

const CYCLES: u64 = 50;
const SEED: u64 = 7;

fn stimulus(buses: &[Bus]) -> RandomStimulus {
    RandomStimulus::new(buses.to_vec(), CYCLES, SEED)
}

fn bare(netlist: &Netlist, buses: &[Bus]) -> u64 {
    SimSession::new(netlist)
        .stimulus(stimulus(buses))
        .run()
        .expect("settles")
        .total_transitions()
}

fn with_probe(netlist: &Netlist, buses: &[Bus], probe: MetricsProbe) -> u64 {
    SimSession::new(netlist)
        .stimulus(stimulus(buses))
        .probe(probe)
        .run()
        .expect("settles")
        .total_transitions()
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];

    let mut group = c.benchmark_group("metrics_overhead");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("bare", |b| b.iter(|| bare(&mult.netlist, &buses)));
    group.bench_function("disabled_registry", |b| {
        b.iter(|| {
            with_probe(
                &mult.netlist,
                &buses,
                MetricsProbe::with_registry(MetricsRegistry::disabled()),
            )
        })
    });
    group.bench_function("enabled_registry", |b| {
        b.iter(|| with_probe(&mult.netlist, &buses, MetricsProbe::new()))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
