//! Criterion benchmarks of incremental dirty-region re-simulation against
//! full re-simulation — the `incremental_resim` regression group.
//!
//! The workload is the ROADMAP's single-input-flip re-run on the
//! multiplier corpus: a recorded baseline of random vectors, re-simulated
//! with one input bit flipped in one cycle. The incremental session
//! replays every clean cycle and re-settles only the dirty cone, so it
//! must be comfortably faster than simulating the merged stimulus from
//! scratch; CI enforces >= 2x via `tests/speedup_gate.rs` (the results
//! themselves are bit-identical, pinned by the differential oracle in
//! `crates/sim/tests/incremental.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::netlist::{ConeIndex, Netlist};
use glitch_core::power::Technology;
use glitch_core::sim::{
    ActivityProbe, DeltaStimulus, IncrementalSession, InputAssignment, PowerProbe, RandomStimulus,
    SimBaseline, SimSession, StatsProbe,
};

const CYCLES: u64 = 300;
const SEED: u64 = 0xF11;
const FLIP_CYCLE: u64 = 150;

struct Workload {
    netlist: Netlist,
    stimulus: Vec<InputAssignment>,
    baseline: SimBaseline,
    index: ConeIndex,
    delta: DeltaStimulus,
}

fn workload() -> Workload {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];
    let stimulus: Vec<InputAssignment> = RandomStimulus::new(buses, CYCLES, SEED).collect();
    let (_, baseline) = SimSession::new(&mult.netlist)
        .stimulus(stimulus.clone())
        .record_baseline()
        .expect("baseline settles");
    let index = mult.netlist.cone_index().expect("acyclic");
    let flip_net = mult.x.bit(3);
    let flipped_to = baseline.input_value(FLIP_CYCLE, flip_net) != glitch_core::sim::Value::One;
    let delta = DeltaStimulus::new().set(FLIP_CYCLE, flip_net, flipped_to);
    Workload {
        netlist: mult.netlist,
        stimulus,
        baseline,
        index,
        delta,
    }
}

fn probes<'a>(session: SimSession<'a>) -> SimSession<'a> {
    session
        .probe(ActivityProbe::new())
        .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
        .probe(StatsProbe::new())
}

/// Full re-simulation of the flipped stimulus: the cost the incremental
/// path is measured against.
fn full_resimulation(w: &Workload) -> u64 {
    let merged: Vec<InputAssignment> = w
        .stimulus
        .iter()
        .enumerate()
        .map(|(cycle, base)| w.delta.apply_to(cycle as u64, base))
        .collect();
    let report = probes(SimSession::new(&w.netlist))
        .stimulus(merged)
        .run()
        .expect("settles");
    report.total_transitions()
}

/// Incremental re-simulation of the same flip against the shared baseline.
fn incremental_resimulation(w: &Workload) -> u64 {
    let report = IncrementalSession::new(&w.netlist, &w.baseline)
        .cone_index(&w.index)
        .probe(ActivityProbe::new())
        .probe(PowerProbe::new(Technology::cmos_0p8um_5v(), 5e6))
        .probe(StatsProbe::new())
        .delta(w.delta.clone())
        .run()
        .expect("settles");
    report.session().total_transitions()
}

fn bench_incremental(c: &mut Criterion) {
    let w = workload();
    // Both sides observe identical activity — the flip changes behaviour,
    // not the instrumentation.
    assert_eq!(full_resimulation(&w), incremental_resimulation(&w));

    let mut group = c.benchmark_group("incremental_resim");
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("full_resimulation_single_flip", |b| {
        b.iter(|| full_resimulation(&w))
    });
    group.bench_function("incremental_single_flip", |b| {
        b.iter(|| incremental_resimulation(&w))
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
