//! Daemon round-trip latency and throughput over the JSON-lines
//! protocol, against a real `glitch-serve` instance on a loopback port.
//!
//! - `flip_cold` vs `flip_warm`: the same `flip` request with a fresh
//!   baseline key each time (cold: parse hit, baseline recorded) against
//!   a pinned key (warm: baseline served from the cache, only the dirty
//!   cone re-simulates). Warm must come in below cold — that gap is the
//!   cache's whole reason to exist.
//! - `replay_N_clients`: N concurrent clients each replaying the same
//!   short request trace (analyze, flip, check), measuring how the
//!   worker pool absorbs parallel load.

use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use glitch_serve::{run_server, Client, ServeConfig};

const WORKERS: usize = 8;

fn counter4() -> String {
    format!(
        "{}/../../tests/data/counter4.blif",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Starts a daemon on an ephemeral port and blocks until it answers a
/// ping. The port is picked by binding and releasing a listener — the
/// tiny reuse race is acceptable in a benchmark harness.
fn spawn_daemon() -> u16 {
    let port = TcpListener::bind(("127.0.0.1", 0))
        .expect("probe bind")
        .local_addr()
        .expect("probe addr")
        .port();
    let config = ServeConfig::new(port, WORKERS, 256 * 1024 * 1024);
    std::thread::spawn(move || run_server(&config).expect("daemon"));
    for _ in 0..200 {
        if let Ok(mut client) = Client::connect(port) {
            if client.request(r#"{"op":"ping"}"#).is_ok() {
                return port;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on port {port}");
}

fn must_succeed(response: &str) {
    assert!(
        !response.starts_with(r#"{"error""#),
        "request failed: {response}"
    );
}

fn bench_serve_throughput(c: &mut Criterion) {
    let port = spawn_daemon();
    let file = counter4();
    let mut group = c.benchmark_group("serve_throughput");

    // Cold: a fresh stimulus seed per iteration gives every request its
    // own baseline key, so each one pays the full recording pass.
    let cold_seed = AtomicU64::new(1);
    let mut cold_client = Client::connect(port).expect("connect");
    group.bench_function("flip_cold", |b| {
        b.iter(|| {
            let seed = cold_seed.fetch_add(1, Ordering::Relaxed);
            let request = format!(
                r#"{{"op":"flip","file":"{file}","cycles":100,"seed":{seed},"flips":"1:en"}}"#
            );
            must_succeed(&cold_client.request(&request).expect("request"));
        })
    });

    // Warm: one pinned key — after the priming request every iteration
    // is a baseline hit plus the incremental dirty-cone replay.
    let warm = format!(r#"{{"op":"flip","file":"{file}","cycles":100,"flips":"1:en"}}"#);
    let mut warm_client = Client::connect(port).expect("connect");
    must_succeed(&warm_client.request(&warm).expect("prime"));
    group.bench_function("flip_warm", |b| {
        b.iter(|| must_succeed(&warm_client.request(&warm).expect("request")))
    });

    // Concurrent replay: every client runs the same mixed trace.
    let trace = vec![
        format!(r#"{{"op":"analyze","file":"{file}","cycles":60}}"#),
        format!(r#"{{"op":"flip","file":"{file}","cycles":60,"flips":"2:en"}}"#),
        format!(r#"{{"op":"check","file":"{file}","cycles":60}}"#),
    ];
    {
        // Prime the caches so replay measures steady-state throughput.
        let mut primer = Client::connect(port).expect("connect");
        for request in &trace {
            must_succeed(&primer.request(request).expect("prime"));
        }
    }
    for clients in [1usize, 4, 8] {
        group.bench_function(format!("replay_{clients}_clients"), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let trace = trace.clone();
                        std::thread::spawn(move || {
                            let mut client = Client::connect(port).expect("connect");
                            for request in &trace {
                                must_succeed(&client.request(request).expect("request"));
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("client thread");
                }
            })
        });
    }
    group.finish();

    let mut closer = Client::connect(port).expect("connect");
    assert_eq!(
        closer.request(r#"{"op":"shutdown"}"#).expect("shutdown"),
        r#"{"ok":true}"#
    );
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
