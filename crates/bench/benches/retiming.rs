//! Criterion benchmarks of the retiming and pipelining engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glitch_core::arith::{AdderStyle, ArrayMultiplier, DirectionDetector};
use glitch_core::retime::{delay_imbalance, pipeline_netlist, PipelineOptions, RetimingGraph};

fn bench_retiming(c: &mut Criterion) {
    let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);

    let mut group = c.benchmark_group("pipelining");
    for ranks in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("direction_detector", ranks),
            &ranks,
            |b, &r| {
                b.iter(|| {
                    pipeline_netlist(&det.netlist, r, PipelineOptions::default())
                        .expect("pipelines")
                        .flipflop_count
                })
            },
        );
    }
    group.finish();

    c.bench_function("delay_imbalance_array8", |b| {
        b.iter(|| delay_imbalance(&mult.netlist).expect("valid"))
    });

    c.bench_function("retiming_graph_extraction_detector", |b| {
        b.iter(|| {
            RetimingGraph::from_netlist(&det.netlist, |_| 1)
                .expect("valid")
                .0
                .clock_period()
        })
    });

    c.bench_function("minimum_period_retiming_detector", |b| {
        let (graph, _) = RetimingGraph::from_netlist(&det.netlist, |_| 1).expect("valid");
        b.iter(|| graph.retime_minimum_period().expect("feasible").period)
    });
}

criterion_group!(benches, bench_retiming);
criterion_main!(benches);
