//! Criterion benchmarks of the reduction loop: the full greedy descent
//! (measure → propose → screen → confirm → verify) and the candidate
//! screen on its own, through both backends.

use criterion::{criterion_group, criterion_main, Criterion};
use glitch_core::arith::{AdderStyle, ArrayMultiplier, RippleCarryAdder};
use glitch_core::retime::{insert_buffer, PipelineOptions};
use glitch_core::{AnalysisConfig, EngineKind, ReduceSession};
use glitch_reduce::{screen_candidate, ReduceOptions, Reducer, ScreenBackend};

fn bench_reduce(c: &mut Criterion) {
    let rca = RippleCarryAdder::new(6, AdderStyle::Gates);
    let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);

    let mut group = c.benchmark_group("reduce_loop");
    group.sample_size(10);

    // The full descent on the paper's multiplier: analysis passes
    // dominate, so this tracks the cost of one accepted move end to end.
    group.bench_function("mult4_full_descent", |b| {
        let buses = vec![mult.x.clone(), mult.y.clone()];
        b.iter(|| {
            let session = ReduceSession::new(
                AnalysisConfig {
                    cycles: 64,
                    ..AnalysisConfig::default()
                },
                vec![1],
                1,
            );
            let options = ReduceOptions {
                max_iters: 1,
                equivalence_cycles: 64,
                pipeline: PipelineOptions::default(),
                ..ReduceOptions::default()
            };
            Reducer::new(session, options)
                .run(&mult.netlist, &buses, &[])
                .expect("reduction runs")
                .moves
                .len()
        })
    });

    // Hybrid screening through the compiled kernel must stay well ahead
    // of per-lane queue screening — the batch screen is the reason the
    // hybrid engine exists in the loop.
    let hot = rca
        .netlist
        .nets()
        .find(|(_, net)| !net.loads().is_empty())
        .map(|(id, _)| id)
        .expect("the adder has loaded nets");
    let rewrite = insert_buffer(&rca.netlist, hot).expect("buffer applies");
    for (label, backend) in [
        ("screen_kernel", ScreenBackend::Kernel),
        ("screen_queue", ScreenBackend::Queue),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                screen_candidate(&rca.netlist, &rewrite, backend, 48, 64, 7)
                    .expect("screen runs")
                    .accepted
            })
        });
    }

    // One confirm-grade scoring pass (the descent's inner-loop cost).
    group.bench_function("score_pass", |b| {
        let session = ReduceSession::new(
            AnalysisConfig {
                cycles: 64,
                engine: EngineKind::Queue,
                ..AnalysisConfig::default()
            },
            vec![1],
            1,
        );
        let buses = vec![rca.a.clone(), rca.b.clone()];
        let held = [(rca.cin, false)];
        b.iter(|| {
            session
                .score(&rca.netlist, &buses, &held)
                .expect("scoring runs")
                .glitch_power
        })
    });

    group.finish();
}

criterion_group!(benches, bench_reduce);
criterion_main!(benches);
