//! The serving-telemetry gate from the live-observability PR: a daemon
//! with the access log enabled (windowed latency histograms are always
//! on) must answer warm `flip` requests within 5% of a daemon running
//! without it — the guarantee that switching the observability surface
//! on does not tax the serving path.
//!
//! Ignored by default so plain `cargo test` stays timing-free; run with
//!
//! ```text
//! cargo test --release -p glitch-bench --test obs_gate -- --ignored
//! ```

use std::net::TcpListener;
use std::time::{Duration, Instant};

use glitch_serve::{run_server, Client, ServeConfig};

const RUNS: usize = 9;
const REQUESTS_PER_RUN: usize = 40;
const MAX_OVERHEAD: f64 = 1.05;

fn counter4() -> String {
    format!(
        "{}/../../tests/data/counter4.blif",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Starts a daemon on an ephemeral port (optionally with an access log)
/// and blocks until it answers a ping.
fn spawn_daemon(access_log: Option<String>) -> u16 {
    let port = TcpListener::bind(("127.0.0.1", 0))
        .expect("probe bind")
        .local_addr()
        .expect("probe addr")
        .port();
    let mut config = ServeConfig::new(port, 2, 256 * 1024 * 1024);
    config.access_log = access_log;
    std::thread::spawn(move || run_server(&config).expect("daemon"));
    for _ in 0..200 {
        if let Ok(mut client) = Client::connect(port) {
            if client.request(r#"{"op":"ping"}"#).is_ok() {
                return port;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on port {port}");
}

fn time_warm_flips(client: &mut Client, request: &str) -> Duration {
    let start = Instant::now();
    for _ in 0..REQUESTS_PER_RUN {
        let response = client.request(request).expect("request");
        assert!(
            !response.starts_with(r#"{"error""#),
            "request failed: {response}"
        );
    }
    start.elapsed()
}

/// Median wall times of `RUNS` interleaved bare/logged batches —
/// interleaving decorrelates clock-frequency drift from the comparison.
fn measure(bare: &mut Client, logged: &mut Client, request: &str) -> (Duration, Duration) {
    let mut bare_times = Vec::with_capacity(RUNS);
    let mut logged_times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        bare_times.push(time_warm_flips(bare, request));
        logged_times.push(time_warm_flips(logged, request));
    }
    bare_times.sort_unstable();
    logged_times.sort_unstable();
    (bare_times[RUNS / 2], logged_times[RUNS / 2])
}

#[test]
#[ignore = "timing gate; run explicitly in CI with --release"]
fn access_log_and_windowed_histograms_cost_less_than_five_percent() {
    let dir = std::env::temp_dir().join(format!("glitch-obs-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("access.jsonl").to_string_lossy().into_owned();
    let file = counter4();
    let request = format!(r#"{{"op":"flip","file":"{file}","cycles":100,"flips":"1:en"}}"#);

    let bare_port = spawn_daemon(None);
    let logged_port = spawn_daemon(Some(log));
    let mut bare = Client::connect(bare_port).expect("connect");
    let mut logged = Client::connect(logged_port).expect("connect");

    // Prime both caches so every timed request is a warm baseline hit.
    time_warm_flips(&mut bare, &request);
    time_warm_flips(&mut logged, &request);

    // Timing gates are noisy; allow one re-measurement before failing.
    let mut verdict = (Duration::ZERO, Duration::ZERO, f64::MAX);
    for attempt in 0..2 {
        let (bare_time, logged_time) = measure(&mut bare, &mut logged, &request);
        let ratio = logged_time.as_secs_f64() / bare_time.as_secs_f64().max(1e-9);
        println!(
            "obs gate (attempt {attempt}): bare {bare_time:?}, access-logged {logged_time:?}, \
             ratio {ratio:.3} (maximum {MAX_OVERHEAD})"
        );
        verdict = (bare_time, logged_time, ratio);
        if ratio < MAX_OVERHEAD {
            break;
        }
    }

    for port in [bare_port, logged_port] {
        let mut closer = Client::connect(port).expect("connect");
        assert_eq!(
            closer.request(r#"{"op":"shutdown"}"#).expect("shutdown"),
            r#"{"ok":true}"#
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    let (bare_time, logged_time, ratio) = verdict;
    assert!(
        ratio < MAX_OVERHEAD,
        "serving-telemetry overhead regressed: {ratio:.3} >= {MAX_OVERHEAD} \
         (bare {bare_time:?} vs access-logged {logged_time:?})"
    );
}
