//! The criterion regression gate from the ROADMAP, in enforceable form:
//! CI runs this (release, `--ignored`) after the `parallel_multi_seed` and
//! `incremental_resim` bench groups and fails the build if incremental
//! re-simulation of a single-input-flip delta is less than 2x faster than
//! full re-simulation on the multiplier corpus.
//!
//! Ignored by default so plain `cargo test` stays timing-free; run with
//!
//! ```text
//! cargo test --release -p glitch-bench --test speedup_gate -- --ignored
//! ```

use std::time::{Duration, Instant};

use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::sim::{
    DeltaStimulus, IncrementalSession, InputAssignment, RandomStimulus, SimSession, StatsProbe,
    Value,
};

const CYCLES: u64 = 400;
const SEED: u64 = 0xF11;
const MIN_SPEEDUP: f64 = 2.0;

/// Median wall time of `runs` executions of `f`.
fn median_time(runs: usize, mut f: impl FnMut() -> u64) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
#[ignore = "timing gate; run explicitly in CI with --release"]
fn incremental_resim_is_at_least_twice_as_fast_on_single_flips() {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];
    let stimulus: Vec<InputAssignment> = RandomStimulus::new(buses, CYCLES, SEED).collect();
    let (_, baseline) = SimSession::new(&mult.netlist)
        .stimulus(stimulus.clone())
        .record_baseline()
        .expect("baseline settles");
    let index = mult.netlist.cone_index().expect("acyclic");
    let flip_net = mult.x.bit(5);
    let flipped_to = baseline.input_value(CYCLES / 2, flip_net) != Value::One;
    let delta = DeltaStimulus::new().set(CYCLES / 2, flip_net, flipped_to);
    let merged: Vec<InputAssignment> = stimulus
        .iter()
        .enumerate()
        .map(|(cycle, base)| delta.apply_to(cycle as u64, base))
        .collect();

    let full = median_time(5, || {
        SimSession::new(&mult.netlist)
            .stimulus(merged.clone())
            .probe(StatsProbe::new())
            .run()
            .expect("settles")
            .total_transitions()
    });
    let incremental = median_time(5, || {
        IncrementalSession::new(&mult.netlist, &baseline)
            .cone_index(&index)
            .probe(StatsProbe::new())
            .delta(delta.clone())
            .run()
            .expect("settles")
            .session()
            .total_transitions()
    });

    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    println!(
        "incremental_resim gate: full {full:?}, incremental {incremental:?}, \
         speedup {speedup:.1}x (minimum {MIN_SPEEDUP}x)"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "incremental re-simulation regressed: {speedup:.2}x < {MIN_SPEEDUP}x \
         (full {full:?} vs incremental {incremental:?})"
    );
}
