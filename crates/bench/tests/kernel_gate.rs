//! The compiled-kernel regression gate: CI runs this (release,
//! `--ignored`) after the `kernel_vs_queue` bench group and fails the
//! build if bit-parallel functional evaluation of a 64-seed batch on the
//! 8-bit array multiplier is less than 10x faster than running the same
//! batch through the event-driven queue — the margin that makes the
//! hybrid engine's prepass-then-prune strategy worthwhile.
//!
//! Ignored by default so plain `cargo test` stays timing-free; run with
//!
//! ```text
//! cargo test --release -p glitch-bench --test kernel_gate -- --ignored
//! ```

use std::time::{Duration, Instant};

use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::sim::{kernel_prepass, RandomStimulus, SimJob, SimSession, StatsProbe};
use glitch_core::KernelProgram;

const CYCLES: u64 = 200;
const SEEDS: u64 = 64;
const SEED0: u64 = 0xA5A5;
const MIN_SPEEDUP: f64 = 10.0;

/// Median wall time of `runs` executions of `f`.
fn median_time(runs: usize, mut f: impl FnMut() -> u64) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
#[ignore = "timing gate; run explicitly in CI with --release"]
fn kernel_functional_eval_is_at_least_ten_times_faster_than_queue() {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];
    let program = KernelProgram::compile(&mult.netlist).expect("acyclic");
    let jobs: Vec<SimJob> = (0..SEEDS)
        .map(|s| SimJob::new(&mult.netlist, buses.clone(), CYCLES, SEED0 + s))
        .collect();

    let kernel = median_time(5, || {
        kernel_prepass(&mult.netlist, &program, &jobs)
            .expect("inputs only")
            .functional_transitions()
    });
    let queue = median_time(5, || {
        (0..SEEDS)
            .map(|s| {
                SimSession::new(&mult.netlist)
                    .stimulus(RandomStimulus::new(buses.clone(), CYCLES, SEED0 + s))
                    .probe(StatsProbe::new())
                    .run()
                    .expect("settles")
                    .total_transitions()
            })
            .sum::<u64>()
    });

    let speedup = queue.as_secs_f64() / kernel.as_secs_f64().max(1e-9);
    println!(
        "kernel gate: queue {queue:?}, kernel {kernel:?}, \
         speedup {speedup:.1}x (minimum {MIN_SPEEDUP}x)"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "compiled kernel regressed: {speedup:.2}x < {MIN_SPEEDUP}x \
         (queue {queue:?} vs kernel {kernel:?})"
    );
}
