//! The metrics-overhead gate from the observability PR: a
//! [`glitch_core::sim::MetricsProbe`] over a *disabled* registry must cost
//! less than 5% over the bare engine path — the guarantee that leaving
//! telemetry compiled in (but switched off) is free in practice.
//!
//! Ignored by default so plain `cargo test` stays timing-free; run with
//!
//! ```text
//! cargo test --release -p glitch-bench --test metrics_gate -- --ignored
//! ```

use std::time::{Duration, Instant};

use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::sim::{MetricsProbe, RandomStimulus, SimSession};
use glitch_obs::MetricsRegistry;

const CYCLES: u64 = 300;
const SEED: u64 = 0x0B5;
const RUNS: usize = 9;
const MAX_OVERHEAD: f64 = 1.05;

fn run(netlist: &Netlist, buses: &[Bus], probed: bool) -> u64 {
    let mut session =
        SimSession::new(netlist).stimulus(RandomStimulus::new(buses.to_vec(), CYCLES, SEED));
    if probed {
        session = session.probe(MetricsProbe::with_registry(MetricsRegistry::disabled()));
    }
    session.run().expect("settles").total_transitions()
}

/// Median wall times of `RUNS` interleaved bare/probed executions —
/// interleaving decorrelates clock-frequency drift from the comparison.
fn measure(netlist: &Netlist, buses: &[Bus]) -> (Duration, Duration) {
    let time = |probed: bool| {
        let start = Instant::now();
        std::hint::black_box(run(netlist, buses, probed));
        start.elapsed()
    };
    let mut bare_times = Vec::with_capacity(RUNS);
    let mut probed_times = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        bare_times.push(time(false));
        probed_times.push(time(true));
    }
    bare_times.sort_unstable();
    probed_times.sort_unstable();
    (bare_times[RUNS / 2], probed_times[RUNS / 2])
}

#[test]
#[ignore = "timing gate; run explicitly in CI with --release"]
fn disabled_metrics_probe_costs_less_than_five_percent() {
    let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];

    // Warm caches and the allocator before timing anything.
    std::hint::black_box(run(&mult.netlist, &buses, true));

    // Timing gates are noisy; allow one re-measurement before failing.
    let mut verdict = (Duration::ZERO, Duration::ZERO, f64::MAX);
    for attempt in 0..2 {
        let (bare, probed) = measure(&mult.netlist, &buses);
        let ratio = probed.as_secs_f64() / bare.as_secs_f64().max(1e-9);
        println!(
            "metrics_overhead gate (attempt {attempt}): bare {bare:?}, \
             disabled-probe {probed:?}, ratio {ratio:.3} (maximum {MAX_OVERHEAD})"
        );
        verdict = (bare, probed, ratio);
        if ratio < MAX_OVERHEAD {
            break;
        }
    }
    let (bare, probed, ratio) = verdict;
    assert!(
        ratio < MAX_OVERHEAD,
        "disabled metrics probe overhead regressed: {ratio:.3} >= {MAX_OVERHEAD} \
         (bare {bare:?} vs disabled-probe {probed:?})"
    );
}
