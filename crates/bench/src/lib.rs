//! # glitch-bench
//!
//! The experiment harness of the reproduction: one function per table or
//! figure of the paper, shared by the `exp_*` command-line binaries (which
//! print paper-style tables) and the Criterion benchmarks (which time the
//! underlying engines).
//!
//! | Paper reference | Function | Binary |
//! |---|---|---|
//! | Figure 3 / §3.1 (worst case) | [`experiments::worst_case`] | `exp_worst_case` |
//! | Equations 2–7 / §3.2–3.3 | [`experiments::rca_ratio_table`] | `exp_rca_ratios` |
//! | Figure 5 | [`experiments::figure5`] | `exp_fig5_rca_histogram` |
//! | Table 1 | [`experiments::table1`] | `exp_table1_multipliers` |
//! | Table 2 | [`experiments::table2`] | `exp_table2_sum_delay` |
//! | §4.2 (direction detector) | [`experiments::direction_detector_activity`] | `exp_direction_detector` |
//! | Table 3 / Figure 10 | [`experiments::table3_power_sweep`] | `exp_table3_power_retiming` |
//! | Figure 9 (retiming removes glitches) | [`experiments::figure9`] | `exp_fig9_retiming_glitches` |

pub mod experiments;
