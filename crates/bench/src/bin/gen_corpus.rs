//! Regenerates the generated part of the BLIF corpus under `tests/data/`.
//!
//! Hand-written fixtures (counter4, xinit_ok, xinit_bug, …) are authored
//! directly; the arithmetic circuits are emitted from the generators in
//! `glitch-arith` so they stay in sync with the cell library. Run from
//! the workspace root:
//!
//! ```text
//! cargo run -p glitch-bench --bin gen_corpus > tests/data/mult4.blif
//! ```

use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_io::emit_blif;

fn main() {
    let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);
    print!("{}", emit_blif(&mult.netlist));
}
