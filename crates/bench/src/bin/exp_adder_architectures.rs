//! Ablation A1 — "choosing different architectures": glitch behaviour of
//! ripple-carry, carry-lookahead and carry-select adders of the same width.
//!
//! The paper reduces glitches either by inserting flipflops or by choosing a
//! better-balanced architecture; this ablation quantifies the second lever
//! for adders, complementing the multiplier comparison of Table 1.

use glitch_core::arith::{AdderStyle, CarryLookaheadAdder, CarrySelectAdder, RippleCarryAdder};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::retime::delay_imbalance;
use glitch_core::{AnalysisConfig, GlitchAnalyzer, TextTable};

struct Candidate {
    name: String,
    netlist: Netlist,
    a: Bus,
    b: Bus,
    cin: glitch_core::netlist::NetId,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const BITS: usize = 16;
    const CYCLES: u64 = 2000;

    let mut candidates = Vec::new();
    let rca = RippleCarryAdder::new(BITS, AdderStyle::CompoundCell);
    candidates.push(Candidate {
        name: "ripple-carry".into(),
        a: rca.a.clone(),
        b: rca.b.clone(),
        cin: rca.cin,
        netlist: rca.netlist,
    });
    let cla = CarryLookaheadAdder::new(BITS);
    candidates.push(Candidate {
        name: "carry-lookahead (4-bit blocks)".into(),
        a: cla.a.clone(),
        b: cla.b.clone(),
        cin: cla.cin,
        netlist: cla.netlist,
    });
    for block in [2usize, 4, 8] {
        let csla = CarrySelectAdder::new(BITS, block, AdderStyle::CompoundCell);
        candidates.push(Candidate {
            name: format!("carry-select (blocks of {block})"),
            a: csla.a.clone(),
            b: csla.b.clone(),
            cin: csla.cin,
            netlist: csla.netlist,
        });
    }

    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: CYCLES,
        ..Default::default()
    });
    let mut table = TextTable::new(vec![
        "architecture",
        "cells",
        "depth",
        "imbalance",
        "total",
        "useful F",
        "useless L",
        "L/F",
    ]);
    for c in &candidates {
        let analysis =
            analyzer.analyze(&c.netlist, &[c.a.clone(), c.b.clone()], &[(c.cin, false)])?;
        let totals = analysis.activity.totals();
        table.add_row(vec![
            c.name.clone(),
            c.netlist.cell_count().to_string(),
            c.netlist.combinational_depth()?.to_string(),
            delay_imbalance(&c.netlist)?.to_string(),
            totals.transitions.to_string(),
            totals.useful.to_string(),
            totals.useless.to_string(),
            format!("{:.2}", totals.useless_to_useful()),
        ]);
    }
    println!("A1: adder architecture ablation — {BITS}-bit adders, {CYCLES} random vectors, unit delay\n");
    println!("{table}");
    println!("Shorter, better-balanced carry paths (lookahead, select) trade extra gates for");
    println!("fewer useless transitions, the architectural lever of the paper's conclusions.");
    Ok(())
}
