//! Experiment E1 — Figure 3 / §3.1: worst-case transition count of a
//! ripple-carry adder and how (un)likely random inputs are to hit it.

use glitch_bench::experiments::worst_case;

fn main() {
    println!("E1: worst-case transitions of an N-bit ripple-carry adder (Figure 3, section 3.1)\n");
    for bits in [3usize, 4, 5, 8, 12] {
        let result = worst_case(bits, 20_000);
        println!(
            "N = {:>2}: observed max {} transitions on S{} (paper bound N = {}), \
             hit by {:.4}% of tried input pairs (paper estimate 3*(1/8)^N = {:.2e})",
            result.bits,
            result.observed_max,
            result.bits - 1,
            result.bound,
            result.hit_fraction * 100.0,
            result.predicted_probability
        );
    }
    println!("\nThe worst case is reachable but already vanishingly rare at modest word sizes,");
    println!("which is why the paper switches to average-case analysis (section 3.2).");
}
