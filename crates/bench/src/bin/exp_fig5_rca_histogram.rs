//! Experiment E3 — Figure 5: per-bit useful/useless transition histogram of
//! a 16-bit ripple-carry adder over 4000 random inputs, plus the totals
//! quoted in section 3.3 of the paper (119002 / 63334 / 55668, L/F = 0.88).

use glitch_bench::experiments::figure5;

fn main() {
    let fig = figure5(16, 4000);
    println!("E3: Figure 5 — 16-bit ripple-carry adder, 4000 random inputs\n");
    println!("{}", fig.to_table());
    println!(
        "simulated totals : {} transitions, {} useful, {} useless, L/F = {:.2}",
        fig.totals.transitions,
        fig.totals.useful,
        fig.totals.useless,
        fig.totals.useless_to_useful()
    );
    println!(
        "analytic totals  : {:.0} transitions, {:.0} useful, {:.0} useless, L/F = {:.2}",
        fig.expectation.total_transitions(),
        fig.expectation.total_useful(),
        fig.expectation.total_useless(),
        fig.expectation.useless_to_useful()
    );
    println!("paper (sect. 3.3): 119002 transitions, 63334 useful, 55668 useless, L/F = 0.88");
}
