//! Experiment E8 — Figure 9: an operation node with unbalanced input paths
//! glitches; retiming flipflops onto its inputs aligns the arrivals and the
//! glitches disappear.

use glitch_bench::experiments::figure9;

fn main() {
    println!(
        "E8: Figure 9 — glitches and retiming (operation fed by one slow and one fast operand)\n"
    );
    let fig = figure9(500);
    println!(
        "useful transitions on the operation outputs     : {}",
        fig.useful
    );
    println!(
        "useless transitions, unbalanced input paths     : {}",
        fig.unbalanced_useless
    );
    println!(
        "useless transitions, after retiming the inputs  : {}",
        fig.balanced_useless
    );
    println!();
    println!("Inserting flipflops in the input lines just before the operation makes both");
    println!("operands arrive simultaneously, so no glitches appear at the output (Figure 9).");
}
