//! Experiment E6 — §4.2: transition activity of the Phideo direction
//! detector over 4320 random inputs.

use glitch_bench::experiments::direction_detector_activity;

fn main() {
    println!("E6: direction detector, 4320 random inputs, unit delay\n");
    let result = direction_detector_activity(4320);
    println!("combinational cells                 : {}", result.cells);
    println!(
        "number of useful transitions        : {}",
        result.totals.useful
    );
    println!(
        "number of useless transitions       : {}",
        result.totals.useless
    );
    println!(
        "ratio useless/useful                : {:.2}",
        result.totals.useless_to_useful()
    );
    println!(
        "activity reduction from balancing   : {:.1}x (paper: 1 + 3.8 = 4.8x)",
        result.balance_reduction_factor
    );
    println!();
    println!("paper (section 4.2): 272842 useful, 1033970 useless, L/F = 3.79");
}
