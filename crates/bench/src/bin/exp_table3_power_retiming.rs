//! Experiment E7 — Table 3 / Figure 10: power versus pipelining depth of the
//! direction detector, decomposed into logic, flipflop and clock power.

use glitch_bench::experiments::table3_power_sweep;

fn main() {
    println!("E7: Table 3 / Figure 10 — direction detector power vs number of flipflops");
    println!("    (5 MHz, 0.8 um / 5 V technology model, 500 random vectors per variant)\n");
    let sweep = table3_power_sweep(500, &[1, 2, 3, 4, 6, 8, 12, 16]);
    println!("{sweep}");
    let best = sweep.optimum_point();
    println!(
        "optimum retiming for power: {} ranks, {} flipflops, {:.2} mW total",
        best.ranks,
        best.flipflops,
        best.power.total() * 1e3
    );
    println!(
        "interior minimum: {}",
        if sweep.has_interior_minimum() {
            "yes (matches Figure 10)"
        } else {
            "no"
        }
    );
    let first = &sweep.points()[0];
    let last = &sweep.points()[sweep.points().len() - 1];
    println!(
        "logic power reduction from deepest pipelining: {:.1}x (paper: 21.8/6.1 = 3.6x)",
        first.power.logic / last.power.logic
    );
    println!();
    println!("paper Table 3 (for reference):");
    println!("  circuit 1:  48 FF, clock  3.2 pF, logic 21.8, ff 0.9, clock 0.5, total 23.2 mW");
    println!("  circuit 2: 174 FF, clock 10.5 pF, logic  9.7, ff 3.3, clock 1.5, total 14.5 mW");
    println!("  circuit 3: 218 FF, clock 12.8 pF, logic  7.5, ff 4.1, clock 1.8, total 13.4 mW");
    println!("  circuit 4: 350 FF, clock 19.9 pF, logic  6.1, ff 6.6, clock 2.8, total 15.5 mW");
}
