//! Experiment E4 — Table 1: transition activity of 8x8 and 16x16 array
//! versus Wallace-tree multipliers for 500 random inputs (unit delay).

use glitch_bench::experiments::{multiplier_table, table1};

fn main() {
    println!("E4: Table 1 — transition activity for 500 random inputs (unit delay)\n");
    println!("{}", multiplier_table(&table1(500)));
    println!("paper Table 1 (for reference):");
    println!("  array   8x8 : total  58858, useful  23418, useless  35440, L/F = 1.51");
    println!("  wallace 8x8 : total  50824, useful  39608, useless  11216, L/F = 0.28");
    println!("  array 16x16 : total 438575, useful 102845, useless 335730, L/F = 3.26");
    println!("  wallace16x16: total 200380, useful 173330, useless  27050, L/F = 0.16");
}
