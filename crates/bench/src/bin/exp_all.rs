//! Runs every experiment at reduced vector counts — a quick end-to-end
//! regeneration of all tables and figures. Use the individual `exp_*`
//! binaries for the paper-sized runs.

use glitch_bench::experiments::{
    direction_detector_activity, figure5, figure9, multiplier_table, table1, table2,
    table3_power_sweep, worst_case,
};

fn main() {
    println!("== E1: worst case (Figure 3) ==");
    let wc = worst_case(4, 0);
    println!(
        "4-bit adder: observed max {} transitions, bound {}\n",
        wc.observed_max, wc.bound
    );

    println!("== E3: Figure 5 (1000 vectors) ==");
    let fig = figure5(16, 1000);
    println!(
        "totals: {} transitions, L/F = {:.2} (analytic {:.2})\n",
        fig.totals.transitions,
        fig.totals.useless_to_useful(),
        fig.expectation.useless_to_useful()
    );

    println!("== E4: Table 1 (200 vectors) ==");
    println!("{}", multiplier_table(&table1(200)));

    println!("== E5: Table 2 (200 vectors) ==");
    println!("{}", multiplier_table(&table2(200)));

    println!("== E6: direction detector (500 vectors) ==");
    let det = direction_detector_activity(500);
    println!(
        "L/F = {:.2}, balance factor {:.1}x\n",
        det.totals.useless_to_useful(),
        det.balance_reduction_factor
    );

    println!("== E7: Table 3 / Figure 10 (200 vectors) ==");
    let sweep = table3_power_sweep(200, &[1, 2, 4, 8, 16]);
    println!("{sweep}");
    println!("interior minimum: {}\n", sweep.has_interior_minimum());

    println!("== E8: Figure 9 ==");
    let fig9 = figure9(200);
    println!(
        "unbalanced useless {} -> balanced useless {}",
        fig9.unbalanced_useless, fig9.balanced_useless
    );
}
