//! Experiment E5 — Table 2: the 8x8 multipliers with equal cell delays
//! versus the more realistic `d_sum = 2 · d_carry` model.

use glitch_bench::experiments::{multiplier_table, table2};

fn main() {
    println!("E5: Table 2 — 8x8 multipliers, 500 random inputs, sum delay vs carry delay\n");
    println!("{}", multiplier_table(&table2(500)));
    println!("paper Table 2 (for reference):");
    println!("  array   8x8, d_sum=d_carry   : useful 23552, useless 34346, L/F = 1.46");
    println!("  array   8x8, d_sum=2*d_carry : useful 23552, useless 47340, L/F = 2.01");
    println!("  wallace 8x8, d_sum=d_carry   : useful 38786, useless 11274, L/F = 0.29");
    println!("  wallace 8x8, d_sum=2*d_carry : useful 38786, useless 24762, L/F = 0.64");
}
