//! Experiment E2 — equations 2–7: simulated versus closed-form transition
//! ratios of every sum and carry bit of a ripple-carry adder.

use glitch_bench::experiments::rca_ratio_table;

fn main() {
    println!("E2: average transition ratios of a 16-bit ripple-carry adder, 4000 random vectors");
    println!("    (simulated unit-delay model versus equations 2-7 of the paper)\n");
    println!("{}", rca_ratio_table(16, 4000));
}
