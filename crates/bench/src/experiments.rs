//! One function per table or figure of the paper.

use glitch_core::activity::{ActivityTotals, GroupedActivity};
use glitch_core::analytic::{worst_case_probability, worst_case_transitions, AdderExpectation};
use glitch_core::arith::{
    AdderStyle, ArrayMultiplier, DirectionDetector, RippleCarryAdder, WallaceTreeMultiplier,
};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::sim::{ActivityProbe, ClockedSimulator, InputAssignment, UnitDelay};
use glitch_core::{
    AnalysisConfig, DelayKind, ExplorationResult, GlitchAnalyzer, PowerExplorer, TextTable,
};

/// Default random seed shared by all experiments so every run is
/// reproducible.
pub const SEED: u64 = 0x1995_0306;

fn analyzer(cycles: u64, delay: DelayKind) -> GlitchAnalyzer {
    GlitchAnalyzer::new(AnalysisConfig {
        cycles,
        seed: SEED,
        delay,
        ..AnalysisConfig::default()
    })
}

/// One row of a multiplier activity table (Tables 1 and 2).
#[derive(Debug, Clone)]
pub struct MultiplierRow {
    /// Architecture and configuration label.
    pub name: String,
    /// Combinational-node activity totals.
    pub totals: ActivityTotals,
}

fn analyze_multiplier(
    name: &str,
    netlist: &Netlist,
    operands: &[Bus],
    cycles: u64,
    delay: DelayKind,
) -> MultiplierRow {
    let analysis = analyzer(cycles, delay)
        .analyze(netlist, operands, &[])
        .expect("multiplier netlists are valid and settle");
    MultiplierRow {
        name: name.to_string(),
        totals: analysis.activity.totals(),
    }
}

/// Renders a list of multiplier rows in the layout of Table 1/2.
#[must_use]
pub fn multiplier_table(rows: &[MultiplierRow]) -> TextTable {
    let mut table = TextTable::new(vec![
        "architecture",
        "total",
        "useful F",
        "useless L",
        "L/F",
    ]);
    for row in rows {
        table.add_row(vec![
            row.name.clone(),
            row.totals.transitions.to_string(),
            row.totals.useful.to_string(),
            row.totals.useless.to_string(),
            format!("{:.2}", row.totals.useless_to_useful()),
        ]);
    }
    table
}

/// Table 1: transition activity of 8x8 and 16x16 array versus Wallace-tree
/// multipliers under a unit-delay model.
#[must_use]
pub fn table1(cycles: u64) -> Vec<MultiplierRow> {
    let mut rows = Vec::new();
    for bits in [8usize, 16] {
        let array = ArrayMultiplier::new(bits, AdderStyle::CompoundCell);
        rows.push(analyze_multiplier(
            &format!("array {bits}x{bits}"),
            &array.netlist,
            &[array.x.clone(), array.y.clone()],
            cycles,
            DelayKind::Unit,
        ));
        let wallace = WallaceTreeMultiplier::new(bits, AdderStyle::CompoundCell);
        rows.push(analyze_multiplier(
            &format!("wallace {bits}x{bits}"),
            &wallace.netlist,
            &[wallace.x.clone(), wallace.y.clone()],
            cycles,
            DelayKind::Unit,
        ));
    }
    rows
}

/// Table 2: the 8x8 architectures with equal cell delays versus
/// `d_sum = 2 · d_carry`.
#[must_use]
pub fn table2(cycles: u64) -> Vec<MultiplierRow> {
    let mut rows = Vec::new();
    let array = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let wallace = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
    for (delay, tag) in [
        (DelayKind::Unit, "d_sum = d_carry"),
        (DelayKind::RealisticAdderCells, "d_sum = 2*d_carry"),
    ] {
        rows.push(analyze_multiplier(
            &format!("array 8x8, {tag}"),
            &array.netlist,
            &[array.x.clone(), array.y.clone()],
            cycles,
            delay.clone(),
        ));
        rows.push(analyze_multiplier(
            &format!("wallace 8x8, {tag}"),
            &wallace.netlist,
            &[wallace.x.clone(), wallace.y.clone()],
            cycles,
            delay,
        ));
    }
    rows
}

/// Result of the Figure 5 experiment: per-bit useful/useless histograms of a
/// ripple-carry adder, simulated and analytic.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// Per-bit activity of the sum outputs (simulated).
    pub sums: GroupedActivity,
    /// Per-bit activity of the carry outputs (simulated).
    pub carries: GroupedActivity,
    /// Closed-form expectation (equations 2–7).
    pub expectation: AdderExpectation,
    /// Simulated combinational totals.
    pub totals: ActivityTotals,
}

impl Figure5 {
    /// Renders the per-bit histogram as a table.
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "bit",
            "sum useful",
            "sum useless",
            "carry useful",
            "carry useless",
            "sum useful (analytic)",
            "sum useless (analytic)",
            "carry useful (analytic)",
            "carry useless (analytic)",
        ]);
        for (bit, expect) in self.expectation.bits().iter().enumerate() {
            table.add_row(vec![
                bit.to_string(),
                self.sums.bits()[bit].activity.useful().to_string(),
                self.sums.bits()[bit].activity.useless().to_string(),
                self.carries.bits()[bit].activity.useful().to_string(),
                self.carries.bits()[bit].activity.useless().to_string(),
                format!("{:.0}", expect.sum_useful),
                format!("{:.0}", expect.sum_useless),
                format!("{:.0}", expect.carry_useful),
                format!("{:.0}", expect.carry_useless),
            ]);
        }
        table
    }
}

/// Figure 5: per-bit useful/useless transition histogram of an N-bit
/// ripple-carry adder under random inputs.
#[must_use]
pub fn figure5(bits: usize, vectors: u64) -> Figure5 {
    let adder = RippleCarryAdder::new(bits, AdderStyle::CompoundCell);
    let analysis = analyzer(vectors, DelayKind::Unit)
        .analyze(
            &adder.netlist,
            &[adder.a.clone(), adder.b.clone()],
            &[(adder.cin, false)],
        )
        .expect("adder simulates");
    let sums = GroupedActivity::from_nets("sum", &adder.netlist, &analysis.trace, adder.sum.bits());
    let carries = GroupedActivity::from_nets(
        "carry",
        &adder.netlist,
        &analysis.trace,
        adder.carries.bits(),
    );
    Figure5 {
        sums,
        carries,
        expectation: AdderExpectation::ripple_carry(bits as u32, vectors),
        totals: analysis.activity.totals(),
    }
}

/// Equations 2–7: per-bit simulated versus analytic transition ratios.
#[must_use]
pub fn rca_ratio_table(bits: usize, vectors: u64) -> TextTable {
    let fig = figure5(bits, vectors);
    let mut table = TextTable::new(vec![
        "bit",
        "TR(S) sim",
        "TR(S) eq.3",
        "TR(C) sim",
        "TR(C) eq.2",
        "ULTR(S) sim",
        "ULTR(S) eq.5",
        "ULTR(C) sim",
        "ULTR(C) eq.7",
    ]);
    let v = vectors as f64;
    for (bit, expect) in fig.expectation.bits().iter().enumerate() {
        let sum = &fig.sums.bits()[bit].activity;
        let carry = &fig.carries.bits()[bit].activity;
        table.add_row(vec![
            bit.to_string(),
            format!("{:.3}", sum.transitions() as f64 / v),
            format!("{:.3}", expect.sum_transitions / v),
            format!("{:.3}", carry.transitions() as f64 / v),
            format!("{:.3}", expect.carry_transitions / v),
            format!("{:.3}", sum.useless() as f64 / v),
            format!("{:.3}", expect.sum_useless / v),
            format!("{:.3}", carry.useless() as f64 / v),
            format!("{:.3}", expect.carry_useless / v),
        ]);
    }
    table
}

/// Result of the worst-case experiment (Figure 3 / section 3.1).
#[derive(Debug, Clone, Copy)]
pub struct WorstCase {
    /// Adder width.
    pub bits: usize,
    /// Largest number of transitions observed on the most significant sum
    /// output in a single cycle, over all input pairs tried.
    pub observed_max: u32,
    /// The paper's bound (`N`).
    pub bound: u32,
    /// Fraction of tried input pairs that hit the bound.
    pub hit_fraction: f64,
    /// The paper's probability estimate `3 · (1/8)^N`.
    pub predicted_probability: f64,
}

/// Figure 3 / §3.1: search for the worst-case transition count of an N-bit
/// ripple-carry adder by simulating consecutive input pairs.
///
/// For `bits <= 5` the search is exhaustive over all `16^bits` pairs of
/// operand vectors; for wider adders a pseudo-random sample of
/// `sample_pairs` pairs is used.
#[must_use]
pub fn worst_case(bits: usize, sample_pairs: u64) -> WorstCase {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let adder = RippleCarryAdder::new(bits, AdderStyle::CompoundCell);
    let msb_sum = adder.sum.bit(bits - 1);
    let mut observed_max = 0u32;
    let mut hits = 0u64;
    let mut tried = 0u64;

    let exhaustive = bits <= 5;
    let total_pairs: u64 = if exhaustive {
        1u64 << (4 * bits)
    } else {
        sample_pairs
    };
    let mut rng = StdRng::seed_from_u64(SEED);

    for index in 0..total_pairs {
        let (a0, b0, a1, b1) = if exhaustive {
            let mask = (1u64 << bits) - 1;
            (
                index & mask,
                (index >> bits) & mask,
                (index >> (2 * bits)) & mask,
                (index >> (3 * bits)) & mask,
            )
        } else {
            let mask = (1u64 << bits) - 1;
            (
                rng.gen::<u64>() & mask,
                rng.gen::<u64>() & mask,
                rng.gen::<u64>() & mask,
                rng.gen::<u64>() & mask,
            )
        };
        let mut sim = ClockedSimulator::new(&adder.netlist, UnitDelay).expect("valid adder");
        sim.attach_probe(Box::new(ActivityProbe::new()));
        let msb_transitions = |sim: &ClockedSimulator<'_>| {
            sim.probe_ref::<ActivityProbe>()
                .expect("probe attached")
                .trace()
                .node(msb_sum.index())
                .transitions()
        };
        sim.step(
            InputAssignment::new()
                .with_bus(&adder.a, a0)
                .with_bus(&adder.b, b0)
                .with(adder.cin, false),
        )
        .expect("settles");
        let after_first = msb_transitions(&sim);
        sim.step(
            InputAssignment::new()
                .with_bus(&adder.a, a1)
                .with_bus(&adder.b, b1)
                .with(adder.cin, false),
        )
        .expect("settles");
        // Transitions of the MSB sum during the second cycle only.
        let second_cycle = (msb_transitions(&sim) - after_first) as u32;
        observed_max = observed_max.max(second_cycle);
        if second_cycle >= bits as u32 {
            hits += 1;
        }
        tried += 1;
    }

    WorstCase {
        bits,
        observed_max,
        bound: worst_case_transitions(bits as u32),
        hit_fraction: hits as f64 / tried as f64,
        predicted_probability: worst_case_probability(bits as u32),
    }
}

/// Result of the section 4.2 direction-detector experiment.
#[derive(Debug, Clone)]
pub struct DirectionDetectorActivity {
    /// Combinational activity totals.
    pub totals: ActivityTotals,
    /// Achievable activity reduction `1 + L/F` from perfect balancing.
    pub balance_reduction_factor: f64,
    /// Number of combinational cells in the detector.
    pub cells: usize,
}

/// §4.2: transition activity of the direction detector under random inputs.
#[must_use]
pub fn direction_detector_activity(cycles: u64) -> DirectionDetectorActivity {
    let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let mut buses: Vec<Bus> = det.a.to_vec();
    buses.extend(det.b.iter().cloned());
    buses.push(det.threshold.clone());
    let analysis = analyzer(cycles, DelayKind::Unit)
        .analyze(&det.netlist, &buses, &[])
        .expect("settles");
    DirectionDetectorActivity {
        totals: analysis.activity.totals(),
        balance_reduction_factor: analysis.balance_reduction_factor(),
        cells: det.netlist.cell_count(),
    }
}

/// Table 3 / Figure 10: the pipelining-depth power sweep of the direction
/// detector.
#[must_use]
pub fn table3_power_sweep(cycles: u64, ranks: &[usize]) -> ExplorationResult {
    let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let buses: Vec<Bus> = det.a.iter().chain(det.b.iter()).cloned().collect();
    // Hold the match threshold at a constant mid-range value of 8.
    let held: Vec<_> = det
        .threshold
        .bits()
        .iter()
        .enumerate()
        .map(|(i, &b)| (b, (8 >> i) & 1 == 1))
        .collect();
    let config = AnalysisConfig {
        cycles,
        seed: SEED,
        frequency: 5e6,
        ..AnalysisConfig::default()
    };
    PowerExplorer::new(GlitchAnalyzer::new(config))
        .explore(&det.netlist, ranks, &buses, &held)
        .expect("sweep succeeds")
}

/// Result of the Figure 9 demonstration.
#[derive(Debug, Clone, Copy)]
pub struct Figure9 {
    /// Useless transitions on the operation output with unbalanced inputs.
    pub unbalanced_useless: u64,
    /// Useless transitions after retiming flipflops onto the inputs.
    pub balanced_useless: u64,
    /// Useful transitions (identical in both variants).
    pub useful: u64,
}

/// Figure 9: an operation node fed by paths of unequal delay glitches; after
/// inserting input-aligning flipflops (retiming) it does not.
#[must_use]
pub fn figure9(cycles: u64) -> Figure9 {
    // The "operation" is a bitwise XOR of two 8-bit operands (one gate per
    // bit, so the operation itself is free of internal imbalance); one
    // operand arrives directly, the other through a long buffer chain — the
    // unbalanced delay paths of Figure 9.
    fn build(balanced: bool) -> (Netlist, Bus, Bus, Bus) {
        let mut nl = Netlist::new(if balanced {
            "fig9_balanced"
        } else {
            "fig9_unbalanced"
        });
        let a = nl.add_input_bus("a", 8);
        let b = nl.add_input_bus("b", 8);
        let slow_b = Bus::new(
            b.bits()
                .iter()
                .enumerate()
                .map(|(i, &bit)| {
                    let mut cur = bit;
                    for stage in 0..6 {
                        cur = nl.buf(cur, &format!("slow{i}_{stage}"));
                    }
                    cur
                })
                .collect(),
        );
        let (left, right) = if balanced {
            // Retiming: align both operands with flipflops just before the
            // operation node.
            let left = Bus::new(
                a.bits()
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| nl.dff(x, &format!("a_q{i}")))
                    .collect(),
            );
            let right = Bus::new(
                slow_b
                    .bits()
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| nl.dff(x, &format!("b_q{i}")))
                    .collect(),
            );
            (left, right)
        } else {
            (a.clone(), slow_b)
        };
        let outputs = Bus::new(
            (0..8)
                .map(|i| nl.xor2(left.bit(i), right.bit(i), &format!("op[{i}]")))
                .collect(),
        );
        nl.mark_output_bus(&outputs);
        (nl, a, b, outputs)
    }

    let measure = |balanced: bool| -> (u64, u64) {
        let (nl, a, b, outputs) = build(balanced);
        let analysis = analyzer(cycles, DelayKind::Unit)
            .analyze(&nl, &[a, b], &[])
            .expect("fig9 circuit settles");
        let useless: u64 = outputs
            .bits()
            .iter()
            .map(|&n| analysis.trace.node(n.index()).useless())
            .sum();
        let useful: u64 = outputs
            .bits()
            .iter()
            .map(|&n| analysis.trace.node(n.index()).useful())
            .sum();
        (useless, useful)
    };
    let (unbalanced_useless, useful) = measure(false);
    let (balanced_useless, _) = measure(true);
    Figure9 {
        unbalanced_useless,
        balanced_useless,
        useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_run_has_the_right_ordering() {
        let rows = table1(60);
        assert_eq!(rows.len(), 4);
        let lf = |name: &str| {
            rows.iter()
                .find(|r| r.name.starts_with(name))
                .unwrap()
                .totals
                .useless_to_useful()
        };
        assert!(lf("array 8x8") > lf("wallace 8x8"));
        assert!(lf("array 16x16") > lf("wallace 16x16"));
        let table = multiplier_table(&rows).to_string();
        assert!(table.contains("useless L"));
    }

    #[test]
    fn table2_delay_imbalance_increases_useless() {
        let rows = table2(60);
        assert_eq!(rows.len(), 4);
        let find = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            find("array 8x8, d_sum = 2*d_carry").totals.useless
                > find("array 8x8, d_sum = d_carry").totals.useless
        );
        assert!(
            find("wallace 8x8, d_sum = 2*d_carry").totals.useless
                > find("wallace 8x8, d_sum = d_carry").totals.useless
        );
    }

    #[test]
    fn figure5_small_run_matches_expectation_roughly() {
        let fig = figure5(8, 400);
        let sim = fig.totals.transitions as f64;
        let expect = fig.expectation.total_transitions();
        assert!(
            (sim - expect).abs() / expect < 0.1,
            "sim {sim} vs expected {expect}"
        );
        assert!(fig.to_table().row_count() == 8);
        assert!(rca_ratio_table(8, 200).row_count() == 8);
    }

    #[test]
    fn worst_case_is_reached_exhaustively_for_small_adders() {
        let result = worst_case(3, 0);
        assert_eq!(result.observed_max, 3);
        assert_eq!(result.bound, 3);
        assert!(result.hit_fraction > 0.0);
        assert!(result.predicted_probability > 0.0);
    }

    #[test]
    fn figure9_retiming_removes_all_glitches() {
        let fig = figure9(80);
        assert!(fig.unbalanced_useless > 0);
        assert_eq!(fig.balanced_useless, 0);
        assert!(fig.useful > 0);
    }

    #[test]
    fn direction_detector_small_run() {
        let result = direction_detector_activity(80);
        assert!(result.totals.useless_to_useful() > 1.0);
        assert!(result.cells > 100);
        assert!(result.balance_reduction_factor > 2.0);
    }

    #[test]
    fn power_sweep_small_run_has_falling_logic_power() {
        let sweep = table3_power_sweep(60, &[1, 4, 8]);
        let points = sweep.points();
        assert_eq!(points.len(), 3);
        assert!(points[2].power.logic < points[0].power.logic);
        assert!(points[2].power.flipflop > points[0].power.flipflop);
    }
}
