//! Round-trip properties of the BLIF writer/reader pair:
//! `parse(emit(n))` preserves net, cell and flipflop counts and the
//! per-kind cell histogram, for both randomly grown netlists and the
//! workspace's arithmetic generators.

use glitch_arith::{AdderStyle, DirectionDetector, RippleCarryAdder, WallaceTreeMultiplier};
use glitch_io::{emit_blif, parse_blif, GateLibrary};
use glitch_netlist::{CellKind, NetId, Netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grows a random, structurally valid netlist: every cell's inputs are
/// drawn from already-existing nets, so the circuit is a DAG by
/// construction; every driverless net is a primary input; every sink is
/// marked as a primary output.
fn random_netlist(seed: u64, inputs: usize, cells: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("random_{seed}"));
    let mut nets: Vec<NetId> = (0..inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();

    for c in 0..cells {
        let pick = |rng: &mut StdRng, nets: &[NetId]| nets[rng.gen_range(0..nets.len())];
        let choice = rng.gen_range(0..100u32);
        let new_nets: Vec<NetId> = match choice {
            0..=9 => {
                let a = pick(&mut rng, &nets);
                vec![nl.inv(a, &format!("n{c}"))]
            }
            10..=14 => {
                let a = pick(&mut rng, &nets);
                vec![nl.buf(a, &format!("n{c}"))]
            }
            15..=54 => {
                let kind = match rng.gen_range(0..6u32) {
                    0 => CellKind::And,
                    1 => CellKind::Or,
                    2 => CellKind::Nand,
                    3 => CellKind::Nor,
                    4 => CellKind::Xor,
                    _ => CellKind::Xnor,
                };
                let arity = rng.gen_range(2..5usize);
                let ins: Vec<NetId> = (0..arity).map(|_| pick(&mut rng, &nets)).collect();
                vec![nl.gate(kind, &ins, &format!("n{c}"))]
            }
            55..=64 => {
                let (s, a, b) = (
                    pick(&mut rng, &nets),
                    pick(&mut rng, &nets),
                    pick(&mut rng, &nets),
                );
                vec![nl.mux2(s, a, b, &format!("n{c}"))]
            }
            65..=69 => {
                let (a, b, d) = (
                    pick(&mut rng, &nets),
                    pick(&mut rng, &nets),
                    pick(&mut rng, &nets),
                );
                vec![nl.maj3(a, b, d, &format!("n{c}"))]
            }
            70..=79 => {
                let (a, b) = (pick(&mut rng, &nets), pick(&mut rng, &nets));
                let (s, carry) = nl.half_adder(a, b, &format!("n{c}"));
                vec![s, carry]
            }
            80..=89 => {
                let (a, b, cin) = (
                    pick(&mut rng, &nets),
                    pick(&mut rng, &nets),
                    pick(&mut rng, &nets),
                );
                let (s, carry) = nl.full_adder(a, b, cin, &format!("n{c}"));
                vec![s, carry]
            }
            90..=96 => {
                let d = pick(&mut rng, &nets);
                vec![nl.dff(d, &format!("n{c}"))]
            }
            _ => {
                vec![nl.constant(rng.gen(), &format!("n{c}"))]
            }
        };
        nets.extend(new_nets);
    }

    // Every sink (net without loads) becomes a primary output so nothing
    // dangles from the BLIF reader's point of view.
    let sinks: Vec<NetId> = nl
        .nets()
        .filter(|(_, net)| net.loads().is_empty())
        .map(|(id, _)| id)
        .collect();
    for id in sinks {
        nl.mark_output(id);
    }
    nl
}

fn assert_preserved(original: &Netlist, round_tripped: &Netlist) {
    assert_eq!(round_tripped.net_count(), original.net_count(), "net count");
    assert_eq!(
        round_tripped.cell_count(),
        original.cell_count(),
        "cell count"
    );
    assert_eq!(
        round_tripped.dff_count(),
        original.dff_count(),
        "flipflop count"
    );
    assert_eq!(
        round_tripped.inputs().len(),
        original.inputs().len(),
        "input count"
    );
    assert_eq!(
        round_tripped.outputs().len(),
        original.outputs().len(),
        "output count"
    );
    assert_eq!(
        round_tripped.stats().cells_by_kind(),
        original.stats().cells_by_kind(),
        "per-kind cell histogram"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: emit → parse preserves all structural counts
    /// and the per-kind histogram, and a second round trip is a fixed
    /// point of the emitted text.
    #[test]
    fn blif_round_trip_preserves_structure(
        seed in 0u64..100_000,
        inputs in 1usize..12,
        cells in 1usize..60,
    ) {
        let library = GateLibrary::standard();
        let original = random_netlist(seed, inputs, cells);
        original.validate().expect("random netlists are valid by construction");

        let text = emit_blif(&original);
        let parsed = parse_blif(&text, &library).expect("emitted BLIF must parse");
        assert_preserved(&original, &parsed);

        let text_again = emit_blif(&parsed);
        prop_assert_eq!(&text_again, &text, "second emission must be a fixed point");
        let parsed_again = parse_blif(&text_again, &library).expect("re-emitted BLIF must parse");
        assert_preserved(&parsed, &parsed_again);
    }
}

#[test]
fn arithmetic_generators_round_trip() {
    let library = GateLibrary::standard();
    let circuits: Vec<Netlist> = vec![
        RippleCarryAdder::new(8, AdderStyle::CompoundCell).netlist,
        RippleCarryAdder::new(6, AdderStyle::Gates).netlist,
        WallaceTreeMultiplier::new(6, AdderStyle::CompoundCell).netlist,
        DirectionDetector::with_options(4, false, AdderStyle::CompoundCell).netlist,
    ];
    for original in circuits {
        let text = emit_blif(&original);
        let parsed = parse_blif(&text, &library)
            .unwrap_or_else(|e| panic!("{}: emitted BLIF must parse: {e}", original.name()));
        assert_preserved(&original, &parsed);
    }
}

#[test]
fn bundled_corpus_parses_and_round_trips() {
    let library = GateLibrary::standard();
    let data = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(data).expect("tests/data must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("blif") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed =
            parse_blif(&text, &library).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let round = parse_blif(&emit_blif(&parsed), &library).unwrap();
        assert_preserved(&parsed, &round);
    }
    assert!(
        seen >= 3,
        "the bundled corpus must keep at least 3 BLIF circuits, found {seen}"
    );
}
