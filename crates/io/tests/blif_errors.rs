//! Golden-file error tests: each malformed BLIF under `tests/data/bad/`
//! must fail with the expected diagnostic — the exact error class, the
//! offending name, and (for located errors) the right source line.

use glitch_io::{parse_blif, GateLibrary, IoError};

fn parse_bad(file: &str) -> IoError {
    let path = format!("{}/tests/data/bad/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_blif(&text, &GateLibrary::standard()).expect_err("malformed input must not parse")
}

#[test]
fn unknown_cell_names_the_model_and_line() {
    let err = parse_bad("unknown_cell.blif");
    match &err {
        IoError::UnknownCell { loc, name } => {
            assert_eq!(name, "frobnicator");
            assert_eq!(loc.line, 4);
        }
        other => panic!("expected UnknownCell, got {other}"),
    }
    assert_eq!(
        err.to_string(),
        "line 4, column 9: unknown cell `frobnicator` (not in the gate library)"
    );
}

#[test]
fn dangling_net_names_the_floating_net() {
    let err = parse_bad("dangling_net.blif");
    assert_eq!(
        err,
        IoError::DanglingNet {
            net: "phantom".into()
        }
    );
    assert_eq!(
        err.to_string(),
        "net `phantom` is used but never driven (dangling)"
    );
}

#[test]
fn duplicate_driver_names_the_overdriven_net_and_second_site() {
    let err = parse_bad("duplicate_driver.blif");
    match &err {
        IoError::DuplicateDriver { loc, net } => {
            assert_eq!(net, "y");
            assert_eq!(loc.line, 6, "the *second* driver is the error site");
        }
        other => panic!("expected DuplicateDriver, got {other}"),
    }
}

#[test]
fn cover_width_mismatch_reports_both_widths() {
    let err = parse_bad("bad_cover_width.blif");
    match &err {
        IoError::WidthMismatch {
            loc, expected, got, ..
        } => {
            assert_eq!((*expected, *got), (2, 3));
            assert_eq!(loc.line, 5);
        }
        other => panic!("expected WidthMismatch, got {other}"),
    }
}

#[test]
fn combinational_loop_is_caught_by_validation() {
    let err = parse_bad("combinational_loop.blif");
    assert!(
        matches!(err, IoError::InvalidNetlist { .. }),
        "expected InvalidNetlist, got {err}"
    );
    assert!(err.to_string().contains("combinational loop"), "{err}");
}
