//! A structural-Verilog subset reader.
//!
//! Supported: one `module` with a port list, `input` / `output` / `wire`
//! declarations (scalar or vectored `[msb:lsb]`), the gate primitives
//! `and or nand nor xor xnor not buf` (output first, as in the standard),
//! and instances of [`GateLibrary`] cells with named (`.pin(net)`) or
//! positional (outputs first, then inputs) connections. Bit-selects
//! (`a[3]`) address vector nets; `1'b0` / `1'b1` literals instantiate
//! constant drivers. Everything must be declared before use — synthesised
//! netlists declare their wires, and strict resolution gives much better
//! diagnostics than implicit-net creation.
//!
//! Not supported (rejected with a located diagnostic): `assign`, behavioural
//! blocks (`always`, `initial`), parameters, part-selects and multi-module
//! files.

use glitch_netlist::{CellKind, NetId, Netlist, NetlistError};

use crate::error::{IoError, Loc};
use crate::intern::{Atom, FxHashMap, StringInterner};
use crate::library::GateLibrary;

/// Identifiers are interned: a net referenced by fifty instances costs
/// one allocation, and every later mention is a 4-byte [`Atom`] copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Ident(Atom),
    Number(u64),
    /// `1'b0` / `1'b1` style constant.
    Constant(bool),
    Punct(char),
}

#[derive(Debug, Clone, Copy)]
struct Token {
    tok: Tok,
    loc: Loc,
}

fn tokenize(text: &str, interner: &mut StringInterner) -> Result<Vec<Token>, IoError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut line = 1usize;
    let mut line_start = 0usize;
    let col = |at: usize, line_start: usize| at - line_start + 1;

    while let Some(&(at, c)) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                line_start = at + 1;
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                let loc = Loc::new(line, col(at, line_start));
                chars.next();
                match chars.peek() {
                    Some(&(_, '/')) => {
                        for (_, c2) in chars.by_ref() {
                            if c2 == '\n' {
                                line += 1;
                                break;
                            }
                        }
                        // `line_start` is only used for columns on the next
                        // token's line; recompute lazily via the next '\n'.
                        line_start = text[..text.len()]
                            .char_indices()
                            .find(|&(i, ch)| i > at && ch == '\n')
                            .map_or(text.len(), |(i, _)| i + 1);
                    }
                    Some(&(_, '*')) => {
                        chars.next();
                        let mut prev = ' ';
                        let mut closed = false;
                        for (i, c2) in chars.by_ref() {
                            if c2 == '\n' {
                                line += 1;
                                line_start = i + 1;
                            }
                            if prev == '*' && c2 == '/' {
                                closed = true;
                                break;
                            }
                            prev = c2;
                        }
                        if !closed {
                            return Err(IoError::syntax(loc, "unterminated block comment"));
                        }
                    }
                    _ => {
                        return Err(IoError::syntax(loc, "unexpected `/`"));
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let loc = Loc::new(line, col(at, line_start));
                let mut number = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() || d == '_' {
                        if d != '_' {
                            number.push(d);
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                // Sized binary constant: 1'b0 / 1'b1.
                if let Some(&(_, '\'')) = chars.peek() {
                    chars.next();
                    let base = chars.next().map(|(_, b)| b);
                    let digit = chars.next().map(|(_, d)| d);
                    match (base, digit) {
                        (Some('b' | 'B'), Some('0')) => {
                            tokens.push(Token {
                                tok: Tok::Constant(false),
                                loc,
                            });
                        }
                        (Some('b' | 'B'), Some('1')) => {
                            tokens.push(Token {
                                tok: Tok::Constant(true),
                                loc,
                            });
                        }
                        _ => {
                            return Err(IoError::Unsupported {
                                loc,
                                construct: "sized constants other than 1'b0 / 1'b1".into(),
                            });
                        }
                    }
                } else {
                    let value: u64 = number.parse().map_err(|_| {
                        IoError::syntax(loc, format!("number `{number}` out of range"))
                    })?;
                    tokens.push(Token {
                        tok: Tok::Number(value),
                        loc,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let loc = Loc::new(line, col(at, line_start));
                let mut end = text.len();
                while let Some(&(i, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '$' {
                        chars.next();
                    } else {
                        end = i;
                        break;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Ident(interner.intern(&text[at..end])),
                    loc,
                });
            }
            '(' | ')' | '[' | ']' | ',' | ';' | ':' | '.' | '=' => {
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    loc: Loc::new(line, col(at, line_start)),
                });
                chars.next();
            }
            other => {
                return Err(IoError::syntax(
                    Loc::new(line, col(at, line_start)),
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

/// Sanity bound on one vector declaration: a malformed `[msb:lsb]` range
/// must become a diagnostic, not a four-billion-net allocation.
const MAX_VECTOR_WIDTH: u64 = 1 << 16;

/// A declared signal: a scalar net or a vector of nets (LSB first).
#[derive(Debug, Clone)]
enum Signal {
    Scalar(NetId),
    Vector { lsb: u64, nets: Vec<NetId> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Input,
    Output,
    Wire,
}

struct Parser<'t, 'l> {
    tokens: &'t [Token],
    pos: usize,
    library: &'l GateLibrary,
    interner: StringInterner,
    netlist: Netlist,
    signals: FxHashMap<Atom, Signal>,
    output_names: Vec<Atom>,
    const_nets: [Option<NetId>; 2],
}

impl Parser<'_, '_> {
    fn peek(&self) -> Option<Token> {
        self.tokens.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The source text behind an interned identifier.
    fn text(&self, atom: Atom) -> &str {
        self.interner.resolve(atom)
    }

    fn eof_loc(&self) -> Loc {
        self.tokens.last().map_or(Loc::new(1, 1), |t| t.loc)
    }

    fn expect_punct(&mut self, c: char) -> Result<Loc, IoError> {
        match self.next() {
            Some(Token {
                tok: Tok::Punct(p),
                loc,
            }) if p == c => Ok(loc),
            Some(t) => Err(IoError::syntax(t.loc, format!("expected `{c}`"))),
            None => Err(IoError::syntax(
                self.eof_loc(),
                format!("expected `{c}`, found end of file"),
            )),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(Atom, Loc), IoError> {
        match self.next() {
            Some(Token {
                tok: Tok::Ident(name),
                loc,
            }) => Ok((name, loc)),
            Some(t) => Err(IoError::syntax(t.loc, format!("expected {what}"))),
            None => Err(IoError::syntax(
                self.eof_loc(),
                format!("expected {what}, found end of file"),
            )),
        }
    }

    fn expect_number(&mut self) -> Result<(u64, Loc), IoError> {
        match self.next() {
            Some(Token {
                tok: Tok::Number(n),
                loc,
            }) => Ok((n, loc)),
            Some(t) => Err(IoError::syntax(t.loc, "expected a number".to_string())),
            None => Err(IoError::syntax(
                self.eof_loc(),
                "expected a number, found end of file",
            )),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Punct(p), .. }) if p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn build_err(&self, err: NetlistError, loc: Loc) -> IoError {
        match err {
            NetlistError::MultipleDrivers { net, .. } | NetlistError::DrivenInput(net) => {
                IoError::DuplicateDriver {
                    loc,
                    net: self.netlist.net(net).name().to_string(),
                }
            }
            other => IoError::from_netlist(&other, |i| {
                self.netlist
                    .net(glitch_netlist::NetId::from_index(i))
                    .name()
                    .to_string()
            }),
        }
    }

    /// `module name (ports?) ; item* endmodule`
    fn module(&mut self) -> Result<(), IoError> {
        let (kw, loc) = self.expect_ident("`module`")?;
        if self.text(kw) != "module" {
            return Err(IoError::syntax(
                loc,
                format!("expected `module`, found `{}`", self.text(kw)),
            ));
        }
        let (name, _) = self.expect_ident("a module name")?;
        self.netlist = Netlist::new(self.interner.resolve(name));
        if self.eat_punct('(') {
            // The port list is redundant with the input/output declarations;
            // skip identifiers and commas until `)`.
            loop {
                match self.next() {
                    Some(Token {
                        tok: Tok::Punct(')'),
                        ..
                    }) => break,
                    Some(Token {
                        tok: Tok::Ident(_) | Tok::Punct(','),
                        ..
                    }) => {}
                    Some(t) => {
                        return Err(IoError::syntax(t.loc, "unexpected token in port list"));
                    }
                    None => {
                        return Err(IoError::syntax(self.eof_loc(), "unterminated port list"));
                    }
                }
            }
        }
        self.expect_punct(';')?;

        loop {
            let Some(token) = self.peek() else {
                return Err(IoError::syntax(self.eof_loc(), "missing `endmodule`"));
            };
            let loc = token.loc;
            let Tok::Ident(atom) = token.tok else {
                return Err(IoError::syntax(
                    loc,
                    "expected a declaration or an instantiation",
                ));
            };
            if let Some(kind) = primitive_kind(self.text(atom)) {
                self.pos += 1;
                self.primitive_instance(kind, loc)?;
                continue;
            }
            match self.text(atom) {
                "endmodule" => {
                    self.pos += 1;
                    break;
                }
                "input" => self.declaration(Direction::Input)?,
                "output" => self.declaration(Direction::Output)?,
                "wire" => self.declaration(Direction::Wire)?,
                "assign" | "always" | "initial" | "reg" | "parameter" | "generate" => {
                    return Err(IoError::Unsupported {
                        loc,
                        construct: format!(
                            "`{}` (only structural netlists are supported)",
                            self.text(atom)
                        ),
                    });
                }
                _ => {
                    self.pos += 1;
                    self.library_instance(atom, loc)?;
                }
            }
        }

        if let Some(extra) = self.peek() {
            if matches!(extra.tok, Tok::Ident(kw) if self.text(kw) == "module") {
                return Err(IoError::Unsupported {
                    loc: extra.loc,
                    construct: "multiple modules in one file".into(),
                });
            }
            return Err(IoError::syntax(
                extra.loc,
                "unexpected tokens after endmodule",
            ));
        }
        Ok(())
    }

    /// `input|output|wire [msb:lsb]? name (, name)* ;` — `output wire` and
    /// `input wire` are accepted.
    fn declaration(&mut self, direction: Direction) -> Result<(), IoError> {
        self.pos += 1; // the direction keyword
        if matches!(self.peek(), Some(Token { tok: Tok::Ident(kw), .. }) if self.text(kw) == "wire")
        {
            self.pos += 1;
        }
        let range = if self.eat_punct('[') {
            let (msb, _) = self.expect_number()?;
            self.expect_punct(':')?;
            let (lsb, loc) = self.expect_number()?;
            self.expect_punct(']')?;
            if msb < lsb {
                return Err(IoError::Unsupported {
                    loc,
                    construct: "descending vector ranges ([lsb:msb])".into(),
                });
            }
            let width = msb - lsb + 1;
            if width > MAX_VECTOR_WIDTH {
                return Err(IoError::WidthMismatch {
                    loc,
                    subject: "vector declaration".into(),
                    expected: MAX_VECTOR_WIDTH as usize,
                    got: usize::try_from(width).unwrap_or(usize::MAX),
                });
            }
            Some((msb, lsb))
        } else {
            None
        };
        loop {
            let (name, loc) = self.expect_ident("a signal name")?;
            if self.signals.contains_key(&name) {
                return Err(IoError::syntax(
                    loc,
                    format!("`{}` is declared twice", self.text(name)),
                ));
            }
            let signal = match range {
                None => {
                    let id = match direction {
                        Direction::Input => self.netlist.add_input(self.interner.resolve(name)),
                        _ => self.netlist.add_net(self.interner.resolve(name)),
                    };
                    Signal::Scalar(id)
                }
                Some((msb, lsb)) => {
                    let nets = (lsb..=msb)
                        .map(|i| {
                            let bit = format!("{}[{i}]", self.interner.resolve(name));
                            match direction {
                                Direction::Input => self.netlist.add_input(&bit),
                                _ => self.netlist.add_net(&bit),
                            }
                        })
                        .collect();
                    Signal::Vector { lsb, nets }
                }
            };
            if direction == Direction::Output {
                self.output_names.push(name);
            }
            self.signals.insert(name, signal);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(';')?;
        Ok(())
    }

    /// One scalar operand: `ident`, `ident[index]`, `1'b0` or `1'b1`.
    fn operand(&mut self) -> Result<(NetId, Loc), IoError> {
        match self.next() {
            Some(Token {
                tok: Tok::Constant(value),
                loc,
            }) => {
                let id = self.constant_net(value);
                Ok((id, loc))
            }
            Some(Token {
                tok: Tok::Ident(name),
                loc,
            }) => {
                let Some(signal) = self.signals.get(&name).cloned() else {
                    return Err(IoError::Undeclared {
                        loc,
                        name: self.text(name).to_string(),
                    });
                };
                if self.eat_punct('[') {
                    let (index, index_loc) = self.expect_number()?;
                    self.expect_punct(']')?;
                    match signal {
                        Signal::Scalar(_) => Err(IoError::WidthMismatch {
                            loc: index_loc,
                            subject: format!("`{}` (a scalar net, indexed)", self.text(name)),
                            expected: 1,
                            got: 2,
                        }),
                        Signal::Vector { lsb, nets } => {
                            let offset = index.checked_sub(lsb).map(|o| o as usize);
                            match offset.and_then(|o| nets.get(o)) {
                                Some(&id) => Ok((id, loc)),
                                None => Err(IoError::WidthMismatch {
                                    loc: index_loc,
                                    subject: format!("index {index} of `{}`", self.text(name)),
                                    expected: nets.len(),
                                    got: index as usize,
                                }),
                            }
                        }
                    }
                } else {
                    match signal {
                        Signal::Scalar(id) => Ok((id, loc)),
                        Signal::Vector { nets, .. } => Err(IoError::WidthMismatch {
                            loc,
                            subject: format!(
                                "`{}` (a vector net used as a scalar)",
                                self.text(name)
                            ),
                            expected: 1,
                            got: nets.len(),
                        }),
                    }
                }
            }
            Some(t) => Err(IoError::syntax(t.loc, "expected a net reference")),
            None => Err(IoError::syntax(
                self.eof_loc(),
                "expected a net reference, found end of file",
            )),
        }
    }

    fn constant_net(&mut self, value: bool) -> NetId {
        let slot = usize::from(value);
        if let Some(id) = self.const_nets[slot] {
            return id;
        }
        let id = self
            .netlist
            .constant(value, if value { "const1" } else { "const0" });
        self.const_nets[slot] = Some(id);
        id
    }

    /// `and g1 (y, a, b);` — output first, optional instance name.
    fn primitive_instance(&mut self, kind: CellKind, loc: Loc) -> Result<(), IoError> {
        let name = match self.peek() {
            Some(Token {
                tok: Tok::Ident(n), ..
            }) => {
                self.pos += 1;
                self.text(n).to_string()
            }
            _ => format!("g{}", self.netlist.cell_count()),
        };
        self.expect_punct('(')?;
        let mut nets = Vec::new();
        loop {
            nets.push(self.operand()?.0);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        self.expect_punct(';')?;
        if nets.len() < 2 {
            return Err(IoError::WidthMismatch {
                loc,
                subject: format!("terminals of `{name}`"),
                expected: 2,
                got: nets.len(),
            });
        }
        let output = nets[0];
        let inputs = nets[1..].to_vec();
        if !kind.accepts_arity(inputs.len()) {
            return Err(IoError::WidthMismatch {
                loc,
                subject: format!("inputs of `{name}`"),
                expected: kind.fixed_input_arity().unwrap_or(2),
                got: inputs.len(),
            });
        }
        self.netlist
            .add_cell(kind, name, inputs, vec![output])
            .map_err(|e| self.build_err(e, loc))?;
        Ok(())
    }

    /// `DFF ff0 (.d(x), .q(y));` or `DFF ff0 (y, x);` (outputs first).
    fn library_instance(&mut self, cell_atom: Atom, loc: Loc) -> Result<(), IoError> {
        let Some(cell) = self.library.lookup(self.text(cell_atom)).cloned() else {
            return Err(IoError::UnknownCell {
                loc,
                name: self.text(cell_atom).to_string(),
            });
        };
        let (instance, _) = self.expect_ident("an instance name")?;
        let instance = self.text(instance).to_string();
        self.expect_punct('(')?;

        let mut input_nets: Vec<Option<NetId>> = vec![None; cell.inputs.len()];
        let mut output_nets: Vec<Option<NetId>> = vec![None; cell.outputs.len()];
        if matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Punct('.'),
                ..
            })
        ) {
            // Named connections.
            loop {
                self.expect_punct('.')?;
                let (pin, pin_loc) = self.expect_ident("a pin name")?;
                self.expect_punct('(')?;
                let connection = if matches!(
                    self.peek(),
                    Some(Token {
                        tok: Tok::Punct(')'),
                        ..
                    })
                ) {
                    None // unconnected: .pin()
                } else {
                    Some(self.operand()?.0)
                };
                self.expect_punct(')')?;
                match cell.resolve_pin(self.text(pin)) {
                    Ok(Some((true, index))) => output_nets[index] = connection,
                    Ok(Some((false, index))) => input_nets[index] = connection,
                    Ok(None) => {}
                    Err(()) => {
                        return Err(IoError::syntax(
                            pin_loc,
                            format!(
                                "cell `{}` has no pin `{}`",
                                self.text(cell_atom),
                                self.text(pin)
                            ),
                        ));
                    }
                }
                if !self.eat_punct(',') {
                    break;
                }
            }
        } else {
            // Positional: outputs first, then inputs.
            let mut nets = Vec::new();
            loop {
                nets.push(self.operand()?.0);
                if !self.eat_punct(',') {
                    break;
                }
            }
            let out_count = cell.outputs.len();
            if nets.len() < out_count + cell.kind.min_input_arity() {
                return Err(IoError::WidthMismatch {
                    loc,
                    subject: format!("terminals of `{instance}`"),
                    expected: out_count + cell.kind.min_input_arity(),
                    got: nets.len(),
                });
            }
            for (i, &net) in nets[..out_count].iter().enumerate() {
                output_nets[i] = Some(net);
            }
            for (i, &net) in nets[out_count..].iter().enumerate() {
                match input_nets.get_mut(i) {
                    Some(slot) => *slot = Some(net),
                    None => {
                        return Err(IoError::WidthMismatch {
                            loc,
                            subject: format!("terminals of `{instance}`"),
                            expected: out_count + cell.inputs.len(),
                            got: nets.len(),
                        });
                    }
                }
            }
        }
        self.expect_punct(')')?;
        self.expect_punct(';')?;

        let inputs: Vec<NetId> = input_nets
            .iter()
            .take_while(|n| n.is_some())
            .flatten()
            .copied()
            .collect();
        let connected = input_nets.iter().filter(|n| n.is_some()).count();
        if inputs.len() != connected || !cell.kind.accepts_arity(inputs.len()) {
            return Err(IoError::WidthMismatch {
                loc,
                subject: format!("inputs of `{instance}`"),
                expected: cell.kind.fixed_input_arity().unwrap_or(2),
                got: connected,
            });
        }
        let outputs: Vec<NetId> = match output_nets
            .iter()
            .enumerate()
            .map(|(k, n)| n.ok_or(k))
            .collect::<Result<Vec<_>, usize>>()
        {
            Ok(outs) => outs,
            Err(missing) => {
                return Err(IoError::syntax(
                    loc,
                    format!(
                        "cell `{}` output pin `{}` is not connected",
                        self.text(cell_atom),
                        cell.outputs[missing].canonical()
                    ),
                ));
            }
        };
        self.netlist
            .add_cell(cell.kind, instance, inputs, outputs)
            .map_err(|e| self.build_err(e, loc))?;
        Ok(())
    }
}

fn primitive_kind(keyword: &str) -> Option<CellKind> {
    Some(match keyword {
        "and" => CellKind::And,
        "or" => CellKind::Or,
        "nand" => CellKind::Nand,
        "nor" => CellKind::Nor,
        "xor" => CellKind::Xor,
        "xnor" => CellKind::Xnor,
        "not" => CellKind::Inv,
        "buf" => CellKind::Buf,
        _ => return None,
    })
}

/// Parses a structural-Verilog module into a validated [`Netlist`],
/// resolving non-primitive instances through `library`.
///
/// # Errors
///
/// Returns an [`IoError`] with a source location for grammar, declaration
/// and mapping problems, and a name-resolved [`IoError`] for structural
/// problems found by post-parse validation.
pub fn parse_verilog(text: &str, library: &GateLibrary) -> Result<Netlist, IoError> {
    let mut interner = StringInterner::new();
    let tokens = tokenize(text, &mut interner)?;
    if tokens.is_empty() {
        return Err(IoError::syntax(Loc::new(1, 1), "empty file"));
    }
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
        library,
        interner,
        netlist: Netlist::new("top"),
        signals: FxHashMap::default(),
        output_names: Vec::new(),
        const_nets: [None, None],
    };
    parser.module()?;

    for name in std::mem::take(&mut parser.output_names) {
        let nets: Vec<NetId> = match &parser.signals[&name] {
            Signal::Scalar(id) => vec![*id],
            Signal::Vector { nets, .. } => nets.clone(),
        };
        for id in nets {
            if parser.netlist.net(id).is_floating() {
                return Err(IoError::DanglingNet {
                    net: parser.netlist.net(id).name().to_string(),
                });
            }
            parser.netlist.mark_output(id);
        }
    }
    parser.netlist.validate().map_err(|e| {
        IoError::from_netlist(&e, |i| {
            parser.netlist.net(NetId::from_index(i)).name().to_string()
        })
    })?;
    Ok(parser.netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> GateLibrary {
        GateLibrary::standard()
    }

    #[test]
    fn parses_a_gate_level_module() {
        let text = "\
// a full adder from primitives
module fadd (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire ab, t1, t2, t3;
  xor x0 (ab, a, b);
  xor x1 (sum, ab, cin);
  and a0 (t1, a, b);
  and a1 (t2, a, cin);
  and a2 (t3, b, cin);
  or  o0 (cout, t1, t2, t3);
endmodule
";
        let nl = parse_verilog(text, &lib()).unwrap();
        assert_eq!(nl.name(), "fadd");
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.stats().count_of(CellKind::Xor), 2);
        assert_eq!(nl.stats().count_of(CellKind::And), 3);
        assert_eq!(nl.stats().count_of(CellKind::Or), 1);
    }

    #[test]
    fn vectors_and_bit_selects() {
        let text = "\
module slice (a, y);
  input [3:0] a;
  output y;
  wire t;
  and g0 (t, a[0], a[1]);
  and g1 (y, t, a[3]);
endmodule
";
        let nl = parse_verilog(text, &lib()).unwrap();
        assert_eq!(nl.inputs().len(), 4);
        assert!(nl.find_net("a[3]").is_some());
    }

    #[test]
    fn library_cells_with_named_and_positional_pins() {
        let text = "\
module seq (d, q2);
  input d;
  output q2;
  wire q1;
  DFF ff0 (.clk(1'b0), .d(d), .q(q1));
  DFF ff1 (q2, q1);
endmodule
";
        let nl = parse_verilog(text, &lib()).unwrap();
        assert_eq!(nl.dff_count(), 2);
        // The ignored .clk(1'b0) still created a constant driver net.
        assert!(nl.stats().count_of(CellKind::Const(false)) <= 1);
    }

    #[test]
    fn undeclared_net_is_located() {
        let text = "module t (y); output y; and g (y, a, b); endmodule";
        let err = parse_verilog(text, &lib()).unwrap_err();
        assert!(
            matches!(err, IoError::Undeclared { ref name, .. } if name == "a"),
            "{err}"
        );
    }

    #[test]
    fn vector_used_as_scalar_is_a_width_mismatch() {
        let text = "\
module t (a, y);
  input [7:0] a;
  output y;
  buf g (y, a);
endmodule
";
        let err = parse_verilog(text, &lib()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::WidthMismatch {
                    expected: 1,
                    got: 8,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn assign_is_rejected_with_a_clear_message() {
        let text = "module t (a, y); input a; output y; assign y = a; endmodule";
        let err = parse_verilog(text, &lib()).unwrap_err();
        assert!(matches!(err, IoError::Unsupported { .. }), "{err}");
        assert!(err.to_string().contains("assign"));
    }

    #[test]
    fn out_of_range_index_is_a_width_mismatch() {
        let text = "\
module t (a, y);
  input [3:0] a;
  output y;
  buf g (y, a[7]);
endmodule
";
        let err = parse_verilog(text, &lib()).unwrap_err();
        assert!(matches!(err, IoError::WidthMismatch { .. }), "{err}");
    }

    #[test]
    fn absurd_vector_width_is_a_diagnostic_not_an_allocation() {
        let text = "module t (a, y);\n  input [4000000000:0] a;\n  output y;\n  buf g (y, a[0]);\nendmodule\n";
        let err = parse_verilog(text, &lib()).unwrap_err();
        assert!(matches!(err, IoError::WidthMismatch { .. }), "{err}");
        assert_eq!(err.loc().unwrap().line, 2);
    }

    #[test]
    fn unknown_module_is_an_unknown_cell() {
        let text = "module t (a, y); input a; output y; WEIRD u0 (y, a); endmodule";
        let err = parse_verilog(text, &lib()).unwrap_err();
        assert!(
            matches!(err, IoError::UnknownCell { ref name, .. } if name == "WEIRD"),
            "{err}"
        );
    }

    #[test]
    fn block_comments_and_constants() {
        let text = "\
module t (y); /* just a
   constant driver */
  output y;
  buf g (y, 1'b1);
endmodule
";
        let nl = parse_verilog(text, &lib()).unwrap();
        assert_eq!(nl.stats().count_of(CellKind::Const(true)), 1);
        assert_eq!(nl.stats().count_of(CellKind::Buf), 1);
    }
}
