//! The BLIF (Berkeley Logic Interchange Format) reader.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names` with a
//! sum-of-products cover (mapped onto a [`glitch_netlist::CellKind`] when
//! the cover's truth table matches one, decomposed into an AND–OR–INV
//! network otherwise), `.latch` (mapped onto the single-clock D-flipflop),
//! `.subckt` / `.gate` resolved through a [`GateLibrary`], `.end`, `#`
//! comments and `\` line continuations.

use glitch_netlist::{CellKind, DffInit, NetId, Netlist, NetlistError};

use crate::cover::{Lit, SopCover};
use crate::error::{IoError, Loc};
use crate::intern::FxHashMap;
use crate::library::GateLibrary;

/// One whitespace-separated token with its source location. Borrows the
/// source text — tokenizing allocates nothing per token.
#[derive(Debug, Clone, Copy)]
struct Token<'t> {
    text: &'t str,
    loc: Loc,
}

/// One logical line (continuations joined, comments stripped).
#[derive(Debug, Clone)]
struct Line<'t> {
    tokens: Vec<Token<'t>>,
}

impl<'t> Line<'t> {
    fn loc(&self) -> Loc {
        self.tokens[0].loc
    }
    fn keyword(&self) -> &'t str {
        self.tokens[0].text
    }
}

/// Splits the text into non-empty logical lines of borrowed tokens.
fn tokenize(text: &str) -> Vec<Line<'_>> {
    let mut lines: Vec<Line> = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    let mut continued = false;
    for (line_index, raw) in text.lines().enumerate() {
        let body = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let (body, continues) = match body.trim_end().strip_suffix('\\') {
            Some(stripped) => (stripped, true),
            None => (body, false),
        };
        if !continued {
            current = Vec::new();
        }
        let mut col = 0usize;
        for chunk in body.split_whitespace() {
            // Column of this occurrence (search from the previous match so
            // repeated tokens get increasing columns).
            let at = body[col..].find(chunk).map_or(col, |p| col + p);
            col = at + chunk.len();
            current.push(Token {
                text: chunk,
                loc: Loc::new(line_index + 1, at + 1),
            });
        }
        continued = continues;
        if !continued && !current.is_empty() {
            lines.push(Line {
                tokens: std::mem::take(&mut current),
            });
        }
    }
    if !current.is_empty() {
        lines.push(Line { tokens: current });
    }
    lines
}

/// Incremental builder shared by the parsing passes. Net lookup borrows
/// token text straight from the source (`'t`): resolving a reference to
/// an already-seen net costs one Fx hash and zero allocations.
struct Builder<'t, 'l> {
    netlist: Netlist,
    nets: FxHashMap<&'t str, NetId>,
    outputs: Vec<(&'t str, Loc)>,
    library: &'l GateLibrary,
    model_seen: bool,
    inputs_may_still_be_declared: bool,
}

impl<'t> Builder<'t, '_> {
    /// The net named `name`, created as an internal net on first use.
    fn net(&mut self, name: &'t str) -> NetId {
        if let Some(&id) = self.nets.get(name) {
            return id;
        }
        let id = self.netlist.add_net(name);
        self.nets.insert(name, id);
        id
    }

    fn net_name(&self, index: usize) -> String {
        self.netlist
            .net(NetId::from_index(index))
            .name()
            .to_string()
    }

    /// Maps a construction error onto a located [`IoError`].
    fn build_err(&self, err: NetlistError, loc: Loc) -> IoError {
        match err {
            NetlistError::MultipleDrivers { net, .. } => IoError::DuplicateDriver {
                loc,
                net: self.net_name(net.index()),
            },
            NetlistError::DrivenInput(net) => IoError::DuplicateDriver {
                loc,
                net: self.net_name(net.index()),
            },
            other => IoError::from_netlist(&other, |i| self.net_name(i)),
        }
    }
}

/// Parses BLIF text into a validated [`Netlist`], resolving `.subckt` and
/// `.gate` models through `library`.
///
/// # Errors
///
/// Returns an [`IoError`] with a source location for grammar and mapping
/// problems, and a name-resolved [`IoError`] for structural problems found
/// by post-parse validation (dangling nets, combinational loops, …).
pub fn parse_blif(text: &str, library: &GateLibrary) -> Result<Netlist, IoError> {
    let lines = tokenize(text);
    let mut builder = Builder {
        netlist: Netlist::new("top"),
        nets: FxHashMap::default(),
        outputs: Vec::new(),
        library,
        model_seen: false,
        inputs_may_still_be_declared: true,
    };

    let mut i = 0usize;
    let mut ended = false;
    while i < lines.len() {
        let line = &lines[i];
        let keyword = line.keyword();
        if !keyword.starts_with('.') {
            return Err(IoError::syntax(
                line.loc(),
                format!("expected a directive, found `{keyword}` (cover rows must follow a .names line)"),
            ));
        }
        if ended {
            return Err(IoError::syntax(
                line.loc(),
                format!("`{keyword}` after .end (only one model per file is supported)"),
            ));
        }
        match keyword {
            ".model" => {
                if builder.model_seen {
                    return Err(IoError::Unsupported {
                        loc: line.loc(),
                        construct: "multiple .model blocks in one file".into(),
                    });
                }
                // Replacing the netlist would orphan every NetId handed out
                // so far, silently rewiring signals — refuse instead.
                if builder.netlist.net_count() > 0 {
                    return Err(IoError::syntax(
                        line.loc(),
                        ".model must come before any .inputs/.names/.latch/.subckt",
                    ));
                }
                builder.model_seen = true;
                if let Some(name) = line.tokens.get(1) {
                    builder.netlist = Netlist::new(name.text);
                }
                i += 1;
            }
            ".inputs" => {
                if !builder.inputs_may_still_be_declared {
                    return Err(IoError::syntax(
                        line.loc(),
                        ".inputs must precede .names/.latch/.subckt/.gate",
                    ));
                }
                for token in &line.tokens[1..] {
                    if builder.nets.contains_key(token.text) {
                        return Err(IoError::Undeclared {
                            loc: token.loc,
                            name: format!("duplicate primary input `{}`", token.text),
                        });
                    }
                    let id = builder.netlist.add_input(token.text);
                    builder.nets.insert(token.text, id);
                }
                i += 1;
            }
            ".outputs" => {
                for token in &line.tokens[1..] {
                    builder.outputs.push((token.text, token.loc));
                }
                i += 1;
            }
            ".names" => {
                builder.inputs_may_still_be_declared = false;
                i = parse_names(&mut builder, &lines, i)?;
            }
            ".latch" => {
                builder.inputs_may_still_be_declared = false;
                parse_latch(&mut builder, line)?;
                i += 1;
            }
            ".subckt" | ".gate" => {
                builder.inputs_may_still_be_declared = false;
                parse_subckt(&mut builder, line)?;
                i += 1;
            }
            ".end" => {
                ended = true;
                i += 1;
            }
            ".exdc" | ".clock" | ".clock_event" | ".wire_load_slope" | ".delay" => {
                return Err(IoError::Unsupported {
                    loc: line.loc(),
                    construct: format!("the `{keyword}` directive"),
                });
            }
            other => {
                return Err(IoError::syntax(
                    line.loc(),
                    format!("unknown directive `{other}`"),
                ));
            }
        }
    }

    finish(builder)
}

/// Parses one `.names` block starting at `lines[start]`; returns the index
/// of the first line after its cover rows.
fn parse_names<'t>(
    builder: &mut Builder<'t, '_>,
    lines: &[Line<'t>],
    start: usize,
) -> Result<usize, IoError> {
    let header = &lines[start];
    if header.tokens.len() < 2 {
        return Err(IoError::syntax(
            header.loc(),
            ".names needs at least an output net",
        ));
    }
    let signal_tokens = &header.tokens[1..];
    let input_count = signal_tokens.len() - 1;
    let input_ids: Vec<NetId> = signal_tokens[..input_count]
        .iter()
        .map(|t| builder.net(t.text))
        .collect();
    let out_token = &signal_tokens[input_count];
    let out_id = builder.net(out_token.text);

    // Collect the cover rows that follow.
    let mut rows: Vec<Vec<Lit>> = Vec::new();
    let mut phase: Option<bool> = None;
    let mut next = start + 1;
    while next < lines.len() && !lines[next].keyword().starts_with('.') {
        let row_line = &lines[next];
        let (plane_text, out_text, out_loc) = match (input_count, row_line.tokens.len()) {
            (0, 1) => ("", row_line.tokens[0].text, row_line.tokens[0].loc),
            (_, 2) => (
                row_line.tokens[0].text,
                row_line.tokens[1].text,
                row_line.tokens[1].loc,
            ),
            (_, got) => {
                return Err(IoError::syntax(
                    row_line.loc(),
                    format!(
                        "cover row must have {} fields, found {got}",
                        if input_count == 0 { 1 } else { 2 }
                    ),
                ));
            }
        };
        if plane_text.len() != input_count {
            return Err(IoError::WidthMismatch {
                loc: row_line.loc(),
                subject: format!("cover row of `{}`", out_token.text),
                expected: input_count,
                got: plane_text.len(),
            });
        }
        let mut row = Vec::with_capacity(input_count);
        for (k, c) in plane_text.chars().enumerate() {
            row.push(match c {
                '0' => Lit::Zero,
                '1' => Lit::One,
                '-' => Lit::DontCare,
                other => {
                    return Err(IoError::syntax(
                        Loc::new(row_line.loc().line, row_line.tokens[0].loc.col + k),
                        format!("invalid cover literal `{other}` (expected 0, 1 or -)"),
                    ));
                }
            });
        }
        let row_phase = match out_text {
            "1" => true,
            "0" => false,
            other => {
                return Err(IoError::syntax(
                    out_loc,
                    format!("cover output must be 0 or 1, found `{other}`"),
                ));
            }
        };
        match phase {
            None => phase = Some(row_phase),
            Some(p) if p != row_phase => {
                return Err(IoError::syntax(
                    out_loc,
                    "cover mixes on-set and off-set rows",
                ));
            }
            Some(_) => {}
        }
        rows.push(row);
        next += 1;
    }

    let cover = match phase {
        None => SopCover::constant_zero(input_count),
        Some(phase) => SopCover {
            inputs: input_count,
            rows,
            phase,
        },
    };
    cover
        .instantiate(&mut builder.netlist, &input_ids, out_id)
        .map_err(|e| builder.build_err(e, header.loc()))?;
    Ok(next)
}

/// Parses one `.latch` line.
fn parse_latch<'t>(builder: &mut Builder<'t, '_>, line: &Line<'t>) -> Result<(), IoError> {
    // .latch <input> <output> [<type> <control>] [<init-val>]
    let args = &line.tokens[1..];
    let (d_tok, q_tok, init_tok) = match args.len() {
        2 => (&args[0], &args[1], None),
        3 => (&args[0], &args[1], Some(&args[2])),
        4 => (&args[0], &args[1], None),
        5 => (&args[0], &args[1], Some(&args[4])),
        got => {
            return Err(IoError::syntax(
                line.loc(),
                format!(".latch takes 2 to 5 arguments, found {got}"),
            ));
        }
    };
    let init = match init_tok {
        None => DffInit::DontCare,
        Some(init) => match init.text {
            "0" => DffInit::Zero,
            "1" => DffInit::One,
            "2" | "3" => DffInit::DontCare,
            other => {
                return Err(IoError::syntax(
                    init.loc,
                    format!("latch init value must be 0..3, found `{other}`"),
                ));
            }
        },
    };
    let d = builder.net(d_tok.text);
    let q = builder.net(q_tok.text);
    let name = format!("ff_{}_{}", q_tok.text, builder.netlist.cell_count());
    let cell = builder
        .netlist
        .add_cell(CellKind::Dff, name, vec![d], vec![q])
        .map_err(|e| builder.build_err(e, line.loc()))?;
    builder.netlist.set_dff_init(cell, init);
    Ok(())
}

/// Parses one `.subckt` / `.gate` line through the gate library.
fn parse_subckt<'t>(builder: &mut Builder<'t, '_>, line: &Line<'t>) -> Result<(), IoError> {
    let directive = line.keyword();
    let model_tok = line
        .tokens
        .get(1)
        .ok_or_else(|| IoError::syntax(line.loc(), format!("{directive} needs a model name")))?;
    let cell = builder
        .library
        .lookup(model_tok.text)
        .ok_or_else(|| IoError::UnknownCell {
            loc: model_tok.loc,
            name: model_tok.text.to_string(),
        })?
        .clone();

    let mut input_nets: Vec<Option<(NetId, Loc)>> = vec![None; cell.inputs.len()];
    let mut output_nets: Vec<Option<(NetId, Loc)>> = vec![None; cell.outputs.len()];
    for conn in &line.tokens[2..] {
        let Some((formal, actual)) = conn.text.split_once('=') else {
            return Err(IoError::syntax(
                conn.loc,
                format!("expected formal=actual, found `{}`", conn.text),
            ));
        };
        match cell.resolve_pin(formal) {
            Ok(Some((true, index))) => {
                output_nets[index] = Some((builder.net(actual), conn.loc));
            }
            Ok(Some((false, index))) => {
                input_nets[index] = Some((builder.net(actual), conn.loc));
            }
            Ok(None) => {} // ignored pin (clock and friends)
            Err(()) => {
                return Err(IoError::syntax(
                    conn.loc,
                    format!("cell `{}` has no pin `{formal}`", model_tok.text),
                ));
            }
        }
    }

    // Variable-arity kinds accept a contiguous prefix of their pin list;
    // fixed-arity kinds need every pin.
    let connected_inputs = input_nets.iter().filter(|n| n.is_some()).count();
    let inputs: Vec<NetId> = input_nets
        .iter()
        .take_while(|n| n.is_some())
        .map(|n| n.unwrap().0)
        .collect();
    if inputs.len() != connected_inputs {
        return Err(IoError::syntax(
            line.loc(),
            format!(
                "cell `{}` has a gap in its connected input pins",
                model_tok.text
            ),
        ));
    }
    if !cell.kind.accepts_arity(inputs.len()) {
        return Err(IoError::WidthMismatch {
            loc: line.loc(),
            subject: format!("inputs of `{}`", model_tok.text),
            expected: cell.kind.fixed_input_arity().unwrap_or(2),
            got: inputs.len(),
        });
    }
    let outputs: Vec<NetId> = match output_nets
        .iter()
        .enumerate()
        .map(|(k, n)| n.map(|(id, _)| id).ok_or(k))
        .collect::<Result<Vec<_>, usize>>()
    {
        Ok(outs) => outs,
        Err(missing) => {
            return Err(IoError::syntax(
                line.loc(),
                format!(
                    "cell `{}` output pin `{}` is not connected",
                    model_tok.text,
                    cell.outputs[missing].canonical()
                ),
            ));
        }
    };
    let name = format!("u_{}_{}", model_tok.text, builder.netlist.cell_count());
    builder
        .netlist
        .add_cell(cell.kind, name, inputs, outputs)
        .map_err(|e| builder.build_err(e, line.loc()))?;
    Ok(())
}

/// Marks outputs, checks drivers and runs structural validation.
fn finish(mut builder: Builder) -> Result<Netlist, IoError> {
    for (name, _loc) in std::mem::take(&mut builder.outputs) {
        let id = builder.net(name);
        if builder.netlist.net(id).is_floating() {
            return Err(IoError::DanglingNet {
                net: name.to_string(),
            });
        }
        builder.netlist.mark_output(id);
    }
    builder
        .netlist
        .validate()
        .map_err(|e| IoError::from_netlist(&e, |i| builder.net_name(i)))?;
    Ok(builder.netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> GateLibrary {
        GateLibrary::standard()
    }

    #[test]
    fn parses_a_half_adder() {
        let text = "\
# a half adder
.model ha
.inputs a b
.outputs s c
.names a b s
01 1
10 1
.names a b c
11 1
.end
";
        let nl = parse_blif(text, &lib()).unwrap();
        assert_eq!(nl.name(), "ha");
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.stats().count_of(CellKind::Xor), 1);
        assert_eq!(nl.stats().count_of(CellKind::And), 1);
    }

    #[test]
    fn parses_latches_and_subckts() {
        let text = "\
.model pipelined
.inputs a b cin
.outputs sum_q carry_q
.subckt $fa a=a b=b cin=cin sum=s carry=c
.latch s sum_q re clk 2
.latch c carry_q 2
.end
";
        let nl = parse_blif(text, &lib()).unwrap();
        assert_eq!(nl.dff_count(), 2);
        assert_eq!(nl.stats().count_of(CellKind::FullAdder), 1);
    }

    #[test]
    fn continuation_lines_are_joined() {
        let text = ".model t\n.inputs a \\\n  b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let nl = parse_blif(text, &lib()).unwrap();
        assert_eq!(nl.inputs().len(), 2);
    }

    #[test]
    fn unknown_cell_is_located() {
        let text = ".model t\n.inputs a\n.outputs y\n.subckt mystery a=a y=y\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        match err {
            IoError::UnknownCell { loc, name } => {
                assert_eq!(name, "mystery");
                assert_eq!(loc.line, 4);
            }
            other => panic!("expected UnknownCell, got {other}"),
        }
    }

    #[test]
    fn cover_width_mismatch_is_located() {
        let text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::WidthMismatch {
                    expected: 2,
                    got: 3,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(err.loc().unwrap().line, 5);
    }

    #[test]
    fn duplicate_driver_is_reported_by_name() {
        let text = ".model t\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert!(
            matches!(err, IoError::DuplicateDriver { ref net, .. } if net == "y"),
            "{err}"
        );
    }

    #[test]
    fn dangling_net_is_reported_by_name() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert_eq!(
            err,
            IoError::DanglingNet {
                net: "ghost".into()
            }
        );
    }

    #[test]
    fn undriven_output_is_rejected() {
        let text = ".model t\n.inputs a\n.outputs y nowhere\n.names a y\n1 1\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert_eq!(
            err,
            IoError::DanglingNet {
                net: "nowhere".into()
            }
        );
    }

    #[test]
    fn latch_init_values_are_honoured() {
        let text = ".model t\n.inputs d\n.outputs q0 q1 q2 q3\n\
                    .latch d q0 0\n.latch d q1 1\n.latch d q2 2\n.latch d q3\n.end\n";
        let nl = parse_blif(text, &lib()).unwrap();
        let init_of = |name: &str| {
            let q = nl.find_net(name).unwrap();
            nl.cell(nl.net(q).driver().unwrap().cell).dff_init()
        };
        assert_eq!(init_of("q0"), DffInit::Zero);
        assert_eq!(init_of("q1"), DffInit::One);
        assert_eq!(init_of("q2"), DffInit::DontCare);
        assert_eq!(init_of("q3"), DffInit::DontCare);
    }

    #[test]
    fn latch_init_out_of_range_is_rejected() {
        let text = ".model t\n.inputs d\n.outputs q\n.latch d q 7\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert!(matches!(err, IoError::Syntax { .. }), "{err}");
    }

    #[test]
    fn irregular_cover_becomes_a_network() {
        // f = a·b + c (an AND-OR structure, no single matching kind).
        let text = ".model t\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n";
        let nl = parse_blif(text, &lib()).unwrap();
        assert!(nl.cell_count() >= 2, "needs an AND and an OR");
        nl.validate().unwrap();
    }

    #[test]
    fn constant_covers_parse() {
        let text = ".model t\n.outputs one zero\n.names one\n1\n.names zero\n.end\n";
        let nl = parse_blif(text, &lib()).unwrap();
        assert_eq!(nl.stats().count_of(CellKind::Const(true)), 1);
        assert_eq!(nl.stats().count_of(CellKind::Const(false)), 1);
    }

    #[test]
    fn model_after_nets_is_rejected() {
        // A late .model would replace the netlist while stale NetIds keep
        // pointing into the old one — must be a hard error, not a rewiring.
        let text = ".inputs a\n.model t\n.inputs b\n.outputs y\n.names a y\n1 1\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert!(matches!(err, IoError::Syntax { .. }), "{err}");
        assert_eq!(err.loc().unwrap().line, 2);
    }

    #[test]
    fn input_declared_after_use_is_rejected() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.inputs b\n.end\n";
        let err = parse_blif(text, &lib()).unwrap_err();
        assert!(matches!(err, IoError::Syntax { .. }), "{err}");
    }
}
