//! The BLIF writer: the inverse of [`crate::parse_blif`].
//!
//! Every single-output combinational cell is written as a `.names` block
//! with its canonical cover, flipflops as `.latch` lines and the compound
//! adder cells as `.subckt $ha` / `.subckt $fa` instances (which the reader
//! resolves back through the standard [`crate::GateLibrary`]), so a
//! write → read round trip reproduces the cell histogram exactly.

use std::collections::HashSet;
use std::fmt::Write as _;

use glitch_netlist::{CellKind, NetId, Netlist};

use crate::cover::{canonical_cover, Lit};

/// Renders `netlist` as BLIF text.
///
/// Net names are sanitised (whitespace, `=`, `#` and `\` become `_`, empty
/// names become `_`); when sanitisation makes two names collide, a numeric
/// suffix keeps them distinct. Nets that are neither ports nor connected to
/// any cell are omitted.
#[must_use]
pub fn emit_blif(netlist: &Netlist) -> String {
    let names = NameTable::new(netlist);
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", sanitize(netlist.name()));

    if !netlist.inputs().is_empty() {
        let _ = write!(out, ".inputs");
        for &input in netlist.inputs() {
            let _ = write!(out, " {}", names.get(input));
        }
        let _ = writeln!(out);
    }
    if !netlist.outputs().is_empty() {
        let _ = write!(out, ".outputs");
        for &output in netlist.outputs() {
            let _ = write!(out, " {}", names.get(output));
        }
        let _ = writeln!(out);
    }

    for (_, cell) in netlist.cells() {
        match cell.kind() {
            CellKind::Dff => {
                let _ = writeln!(
                    out,
                    ".latch {} {} {}",
                    names.get(cell.inputs()[0]),
                    names.get(cell.outputs()[0]),
                    cell.dff_init().blif_digit()
                );
            }
            CellKind::HalfAdder => {
                let _ = writeln!(
                    out,
                    ".subckt $ha a={} b={} sum={} carry={}",
                    names.get(cell.inputs()[0]),
                    names.get(cell.inputs()[1]),
                    names.get(cell.outputs()[0]),
                    names.get(cell.outputs()[1])
                );
            }
            CellKind::FullAdder => {
                let _ = writeln!(
                    out,
                    ".subckt $fa a={} b={} cin={} sum={} carry={}",
                    names.get(cell.inputs()[0]),
                    names.get(cell.inputs()[1]),
                    names.get(cell.inputs()[2]),
                    names.get(cell.outputs()[0]),
                    names.get(cell.outputs()[1])
                );
            }
            kind => {
                let _ = write!(out, ".names");
                for &input in cell.inputs() {
                    let _ = write!(out, " {}", names.get(input));
                }
                let _ = writeln!(out, " {}", names.get(cell.outputs()[0]));
                let cover = canonical_cover(kind, cell.inputs().len());
                let output_char = if cover.phase { '1' } else { '0' };
                for row in &cover.rows {
                    if row.is_empty() {
                        let _ = writeln!(out, "{output_char}");
                        continue;
                    }
                    let plane: String = row
                        .iter()
                        .map(|lit| match lit {
                            Lit::Zero => '0',
                            Lit::One => '1',
                            Lit::DontCare => '-',
                        })
                        .collect();
                    let _ = writeln!(out, "{plane} {output_char}");
                }
            }
        }
    }
    let _ = writeln!(out, ".end");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || matches!(c, '=' | '#' | '\\') {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// Collision-free sanitised names for every net.
struct NameTable {
    by_net: Vec<String>,
}

impl NameTable {
    fn new(netlist: &Netlist) -> Self {
        let mut taken: HashSet<String> = HashSet::new();
        let mut by_net = Vec::with_capacity(netlist.net_count());
        for (_, net) in netlist.nets() {
            let base = sanitize(net.name());
            let name = if taken.contains(&base) {
                let mut k = 1usize;
                loop {
                    let candidate = format!("{base}__{k}");
                    if !taken.contains(&candidate) {
                        break candidate;
                    }
                    k += 1;
                }
            } else {
                base
            };
            taken.insert(name.clone());
            by_net.push(name);
        }
        NameTable { by_net }
    }

    fn get(&self, net: NetId) -> &str {
        &self.by_net[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blif::parse_blif;
    use crate::library::GateLibrary;

    #[test]
    fn emits_and_reparses_every_kind() {
        let mut nl = Netlist::new("all kinds");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x0 = nl.and2(a, b, "x0");
        let x1 = nl.or2(a, b, "x1");
        let x2 = nl.nand2(a, b, "x2");
        let x3 = nl.nor2(a, b, "x3");
        let x4 = nl.xor2(a, b, "x4");
        let x5 = nl.xnor2(a, b, "x5");
        let x6 = nl.inv(a, "x6");
        let x7 = nl.buf(b, "x7");
        let x8 = nl.mux2(a, b, c, "x8");
        let x9 = nl.maj3(a, b, c, "x9");
        let (s, co) = nl.half_adder(a, b, "ha");
        let (fs, fco) = nl.full_adder(a, b, c, "fa");
        let k1 = nl.constant(true, "k1");
        let k0 = nl.constant(false, "k0");
        let q = nl.dff(x0, "q");
        for net in [
            x1, x2, x3, x4, x5, x6, x7, x8, x9, s, co, fs, fco, k1, k0, q,
        ] {
            nl.mark_output(net);
        }
        nl.validate().unwrap();

        let text = emit_blif(&nl);
        let parsed = parse_blif(&text, &GateLibrary::standard()).unwrap();
        assert_eq!(parsed.name(), "all_kinds");
        assert_eq!(parsed.cell_count(), nl.cell_count());
        assert_eq!(parsed.net_count(), nl.net_count());
        assert_eq!(parsed.dff_count(), nl.dff_count());
        assert_eq!(parsed.stats().cells_by_kind(), nl.stats().cells_by_kind());
        assert_eq!(parsed.inputs().len(), nl.inputs().len());
        assert_eq!(parsed.outputs().len(), nl.outputs().len());
    }

    #[test]
    fn colliding_sanitised_names_stay_distinct() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("sig a");
        let b = nl.add_input("sig=a");
        let y = nl.and2(a, b, "y");
        nl.mark_output(y);
        let text = emit_blif(&nl);
        let parsed = parse_blif(&text, &GateLibrary::standard()).unwrap();
        assert_eq!(parsed.inputs().len(), 2);
        assert_eq!(parsed.net_count(), 3);
    }

    #[test]
    fn emitted_text_is_stable_under_round_trip() {
        let mut nl = Netlist::new("stable");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (s, c) = nl.full_adder(a, b, a, "fa");
        let q = nl.dff(s, "q");
        nl.mark_output(q);
        nl.mark_output(c);
        let once = emit_blif(&nl);
        let twice = emit_blif(&parse_blif(&once, &GateLibrary::standard()).unwrap());
        assert_eq!(once, twice);
    }
}
