//! The cell-name mapping layer: resolves external cell names (BLIF
//! `.subckt` / `.gate` models, Verilog module instances) onto the
//! workspace's [`CellKind`]s, and carries the per-kind delay and
//! capacitance defaults the downstream analyses use, drawn from
//! `glitch-power`'s [`Technology`] model.

use std::collections::HashMap;

use glitch_netlist::CellKind;
use glitch_power::Technology;
use glitch_sim::CellDelay;

/// How one library pin maps onto a cell's pin list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryPin {
    /// Accepted names for this pin; the first is canonical.
    pub names: Vec<String>,
}

impl LibraryPin {
    fn new(names: &[&str]) -> Self {
        LibraryPin {
            names: names.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// The canonical (first) name.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.names[0]
    }

    /// Whether `name` (already lower-cased) refers to this pin.
    #[must_use]
    pub fn accepts(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }
}

/// One resolvable library cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryCell {
    /// The netlist cell kind this external cell maps to.
    pub kind: CellKind,
    /// Input pins in the kind's pin order. For variable-arity kinds this is
    /// the maximum supported arity; trailing pins may be left unconnected.
    pub inputs: Vec<LibraryPin>,
    /// Output pins in the kind's pin order.
    pub outputs: Vec<LibraryPin>,
    /// Pin names that are accepted and ignored (clock and control pins of
    /// cells whose behaviour the single-clock netlist models implicitly).
    pub ignored: Vec<String>,
}

impl LibraryCell {
    /// Resolves a pin name: `Ok(Some((is_output, index)))` for a real pin,
    /// `Ok(None)` for an ignored pin, `Err(())` for an unknown one.
    #[allow(clippy::result_unit_err)]
    pub fn resolve_pin(&self, name: &str) -> Result<Option<(bool, usize)>, ()> {
        let name = name.to_ascii_lowercase();
        if let Some(i) = self.inputs.iter().position(|p| p.accepts(&name)) {
            return Ok(Some((false, i)));
        }
        if let Some(i) = self.outputs.iter().position(|p| p.accepts(&name)) {
            return Ok(Some((true, i)));
        }
        if self.ignored.contains(&name) {
            return Ok(None);
        }
        Err(())
    }
}

/// Maps external cell names onto [`CellKind`]s and provides technology
/// defaults (delays, pin capacitances) for imported circuits.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLibrary {
    cells: HashMap<String, LibraryCell>,
    tech: Technology,
}

impl Default for GateLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

/// The maximum arity registered for variable-arity gates.
const MAX_GATE_ARITY: usize = 8;

impl GateLibrary {
    /// An empty library with the paper's 0.8 µm / 5 V technology.
    #[must_use]
    pub fn empty() -> Self {
        GateLibrary {
            cells: HashMap::new(),
            tech: Technology::cmos_0p8um_5v(),
        }
    }

    /// The standard library: common names for every [`CellKind`], including
    /// the `$ha` / `$fa` / `$dff` models the BLIF writer emits.
    #[must_use]
    pub fn standard() -> Self {
        let mut lib = Self::empty();
        let var_inputs: Vec<LibraryPin> = (0..MAX_GATE_ARITY)
            .map(|i| {
                let letter = (b'a' + i as u8) as char;
                LibraryPin {
                    names: vec![
                        letter.to_string(),
                        format!("i{i}"),
                        format!("in{i}"),
                        format!("x{i}"),
                    ],
                }
            })
            .collect();
        let out = |extra: &[&str]| {
            let mut names = vec!["y", "o", "out", "z", "f"];
            names.extend_from_slice(extra);
            vec![LibraryPin::new(&names)]
        };

        for (kind, names) in [
            (CellKind::And, &["and", "and2", "and3", "and4", "and8"][..]),
            (CellKind::Or, &["or", "or2", "or3", "or4", "or8"][..]),
            (
                CellKind::Nand,
                &["nand", "nand2", "nand3", "nand4", "nand8"][..],
            ),
            (CellKind::Nor, &["nor", "nor2", "nor3", "nor4", "nor8"][..]),
            (CellKind::Xor, &["xor", "xor2", "xor3", "eo"][..]),
            (CellKind::Xnor, &["xnor", "xnor2", "xnor3", "en"][..]),
        ] {
            let cell = LibraryCell {
                kind,
                inputs: var_inputs.clone(),
                outputs: out(&[]),
                ignored: Vec::new(),
            };
            for name in names {
                lib.register(name, cell.clone());
            }
        }

        let unary = |kind: CellKind| LibraryCell {
            kind,
            inputs: vec![LibraryPin::new(&["a", "i", "in", "d", "x0"])],
            outputs: out(&[]),
            ignored: Vec::new(),
        };
        for name in ["inv", "not", "inverter", "iv"] {
            lib.register(name, unary(CellKind::Inv));
        }
        for name in ["buf", "buffer", "bf"] {
            lib.register(name, unary(CellKind::Buf));
        }

        let mux = LibraryCell {
            kind: CellKind::Mux2,
            inputs: vec![
                LibraryPin::new(&["s", "sel", "i0"]),
                LibraryPin::new(&["a", "d0", "i1"]),
                LibraryPin::new(&["b", "d1", "i2"]),
            ],
            outputs: out(&[]),
            ignored: Vec::new(),
        };
        for name in ["mux", "mux2", "mux21"] {
            lib.register(name, mux.clone());
        }

        let maj = LibraryCell {
            kind: CellKind::Maj3,
            inputs: vec![
                LibraryPin::new(&["a", "i0"]),
                LibraryPin::new(&["b", "i1"]),
                LibraryPin::new(&["c", "i2"]),
            ],
            outputs: out(&[]),
            ignored: Vec::new(),
        };
        for name in ["maj", "maj3", "majority"] {
            lib.register(name, maj.clone());
        }

        let ha = LibraryCell {
            kind: CellKind::HalfAdder,
            inputs: vec![LibraryPin::new(&["a", "i0"]), LibraryPin::new(&["b", "i1"])],
            outputs: vec![
                LibraryPin::new(&["sum", "s", "o0"]),
                LibraryPin::new(&["carry", "c", "co", "cout", "o1"]),
            ],
            ignored: Vec::new(),
        };
        for name in ["$ha", "ha", "half_adder", "halfadder"] {
            lib.register(name, ha.clone());
        }

        let fa = LibraryCell {
            kind: CellKind::FullAdder,
            inputs: vec![
                LibraryPin::new(&["a", "i0"]),
                LibraryPin::new(&["b", "i1"]),
                LibraryPin::new(&["cin", "ci", "c", "i2"]),
            ],
            outputs: vec![
                LibraryPin::new(&["sum", "s", "o0"]),
                LibraryPin::new(&["carry", "co", "cout", "o1"]),
            ],
            ignored: Vec::new(),
        };
        for name in ["$fa", "fa", "full_adder", "fulladder"] {
            lib.register(name, fa.clone());
        }

        let dff = LibraryCell {
            kind: CellKind::Dff,
            inputs: vec![LibraryPin::new(&["d", "din", "i"])],
            outputs: vec![LibraryPin::new(&["q", "qout", "o"])],
            ignored: ["clk", "ck", "cp", "clock", "phi", "c"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
        };
        for name in ["$dff", "dff", "ff", "fd", "dff_p", "dffpos"] {
            lib.register(name, dff.clone());
        }

        let constant = |value: bool| LibraryCell {
            kind: CellKind::Const(value),
            inputs: Vec::new(),
            outputs: out(&["q"]),
            ignored: Vec::new(),
        };
        for name in ["$const1", "vcc", "vdd", "one", "tie1"] {
            lib.register(name, constant(true));
        }
        for name in ["$const0", "gnd", "vss", "zero", "tie0"] {
            lib.register(name, constant(false));
        }

        lib
    }

    /// Replaces the technology the delay and capacitance defaults are drawn
    /// from.
    #[must_use]
    pub fn with_technology(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// Registers (or overrides) a cell under `name` (case-insensitive).
    pub fn register(&mut self, name: &str, cell: LibraryCell) {
        self.cells.insert(name.to_ascii_lowercase(), cell);
    }

    /// Looks a cell up by external name (case-insensitive).
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&LibraryCell> {
        self.cells.get(&name.to_ascii_lowercase())
    }

    /// Number of registered names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cell is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The technology the defaults are drawn from.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The default per-kind delay model for imported circuits: one unit for
    /// simple gates, two for the wide-XOR-style cells, and the paper's
    /// `d_sum = 2 · d_carry` split for the compound adder cells.
    #[must_use]
    pub fn cell_delay(&self) -> CellDelay {
        CellDelay::new()
            .with_kind(CellKind::Xor, 2)
            .with_kind(CellKind::Xnor, 2)
            .with_kind(CellKind::Mux2, 2)
            .with_kind(CellKind::Maj3, 2)
            .with_kind(CellKind::Const(false), 0)
            .with_kind(CellKind::Const(true), 0)
            .with_full_adder(2, 1)
    }

    /// Default input-pin capacitance of a cell of `kind`, in farads: the
    /// technology's gate-input capacitance, scaled up for the compound
    /// cells whose pins fan into several transistor gates internally.
    #[must_use]
    pub fn input_capacitance(&self, kind: CellKind) -> f64 {
        let scale = match kind {
            CellKind::HalfAdder | CellKind::FullAdder => 2.0,
            CellKind::Dff => 1.5,
            _ => 1.0,
        };
        self.tech.gate_input_cap * scale
    }

    /// Default output (drain plus local wiring) capacitance of a cell of
    /// `kind`, in farads.
    #[must_use]
    pub fn output_capacitance(&self, kind: CellKind) -> f64 {
        let scale = (kind.gate_equivalents() / 1.25).max(0.5);
        self.tech.gate_output_cap * scale.min(3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_resolves_common_names() {
        let lib = GateLibrary::standard();
        assert_eq!(lib.lookup("NAND2").unwrap().kind, CellKind::Nand);
        assert_eq!(lib.lookup("not").unwrap().kind, CellKind::Inv);
        assert_eq!(lib.lookup("$fa").unwrap().kind, CellKind::FullAdder);
        assert_eq!(lib.lookup("DFF").unwrap().kind, CellKind::Dff);
        assert_eq!(lib.lookup("vcc").unwrap().kind, CellKind::Const(true));
        assert!(lib.lookup("tristate").is_none());
        assert!(!lib.is_empty());
        assert!(lib.len() > 30);
    }

    #[test]
    fn pin_resolution_understands_aliases_and_ignores_clocks() {
        let lib = GateLibrary::standard();
        let fa = lib.lookup("fa").unwrap();
        assert_eq!(fa.resolve_pin("CIN"), Ok(Some((false, 2))));
        assert_eq!(fa.resolve_pin("ci"), Ok(Some((false, 2))));
        assert_eq!(fa.resolve_pin("sum"), Ok(Some((true, 0))));
        assert_eq!(fa.resolve_pin("cout"), Ok(Some((true, 1))));
        assert_eq!(fa.resolve_pin("nonsense"), Err(()));

        let dff = lib.lookup("dff").unwrap();
        assert_eq!(dff.resolve_pin("d"), Ok(Some((false, 0))));
        assert_eq!(dff.resolve_pin("q"), Ok(Some((true, 0))));
        assert_eq!(dff.resolve_pin("clk"), Ok(None));
    }

    #[test]
    fn variable_arity_gates_expose_positional_pins() {
        let lib = GateLibrary::standard();
        let and = lib.lookup("and4").unwrap();
        assert_eq!(and.resolve_pin("a"), Ok(Some((false, 0))));
        assert_eq!(and.resolve_pin("c"), Ok(Some((false, 2))));
        assert_eq!(and.resolve_pin("in3"), Ok(Some((false, 3))));
        assert_eq!(and.resolve_pin("y"), Ok(Some((true, 0))));
    }

    #[test]
    fn delay_defaults_follow_the_paper() {
        use glitch_sim::DelayModel;
        let model = GateLibrary::standard().cell_delay();
        assert_eq!(model.delay(CellKind::And, 0), 1);
        assert_eq!(model.delay(CellKind::FullAdder, 0), 2); // sum
        assert_eq!(model.delay(CellKind::FullAdder, 1), 1); // carry
        assert_eq!(model.delay(CellKind::Const(true), 0), 0);
    }

    #[test]
    fn capacitance_defaults_scale_with_complexity() {
        let lib = GateLibrary::standard();
        assert!(lib.input_capacitance(CellKind::FullAdder) > lib.input_capacitance(CellKind::And));
        assert!(
            lib.output_capacitance(CellKind::FullAdder) > lib.output_capacitance(CellKind::Inv)
        );
        assert!(lib.output_capacitance(CellKind::Inv) > 0.0);
    }
}
