//! Dependency-free string interning for the parsers.
//!
//! Netlist sources mention every net name many times (a fanout-`k` net
//! appears `k + 1` times), so the readers would otherwise allocate a
//! `String` per *reference*. [`StringInterner`] deduplicates names into
//! [`Atom`] handles — one allocation per *distinct* name — and
//! [`FxHashMap`] replaces SipHash with the Firefox multiply-rotate hash,
//! which is markedly faster on the short ASCII identifier keys the
//! parsers throw at it (and not exposed to untrusted-key flooding: the
//! keys come from a netlist the user chose to analyze).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// The `FxHasher` multiplier (the golden-ratio-derived constant used by
/// the Firefox and rustc hashers).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox multiply-rotate hasher: word-at-a-time, no finalizer.
/// Not DoS-resistant — use only on keys the process itself produced or
/// the user handed over knowingly (parser identifiers, net names).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; plugs into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] instead of SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A handle to an interned string: `Copy`, 4 bytes, O(1) equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom(u32);

impl Atom {
    /// The dense index of this atom (0-based, in interning order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deduplicating string storage: each distinct string is allocated once
/// and addressed by a dense [`Atom`].
///
/// Storage is `Rc<str>` shared between the lookup map and the resolve
/// table, so there is exactly one heap copy per distinct string and no
/// unsafe self-referencing.
#[derive(Default)]
pub struct StringInterner {
    map: FxHashMap<Rc<str>, Atom>,
    strings: Vec<Rc<str>>,
}

impl StringInterner {
    #[must_use]
    pub fn new() -> StringInterner {
        StringInterner::default()
    }

    /// The atom for `s`, allocating it on first sight.
    ///
    /// # Panics
    ///
    /// Panics past `u32::MAX` distinct strings (a netlist that size does
    /// not fit in memory long before the handle space runs out).
    pub fn intern(&mut self, s: &str) -> Atom {
        if let Some(&atom) = self.map.get(s) {
            return atom;
        }
        let atom = Atom(u32::try_from(self.strings.len()).expect("interner overflow"));
        let stored: Rc<str> = Rc::from(s);
        self.strings.push(Rc::clone(&stored));
        self.map.insert(stored, atom);
        atom
    }

    /// The string behind `atom`.
    ///
    /// # Panics
    ///
    /// Panics on an atom from a different interner whose index is out of
    /// range.
    #[must_use]
    pub fn resolve(&self, atom: Atom) -> &str {
        &self.strings[atom.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn interning_deduplicates() {
        let mut interner = StringInterner::new();
        let a = interner.intern("carry");
        let b = interner.intern("sum");
        let a2 = interner.intern("carry");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        // Only two distinct strings were stored.
        assert_eq!(b.index(), 1);
        assert_eq!(interner.resolve(a), "carry");
        assert_eq!(interner.resolve(b), "sum");
    }

    #[test]
    fn atoms_are_dense() {
        let mut interner = StringInterner::new();
        for i in 0..100 {
            let atom = interner.intern(&format!("net{i}"));
            assert_eq!(atom.index(), i);
        }
    }

    #[test]
    fn fx_hash_is_stable_and_spreads() {
        let build = FxBuildHasher::default();
        let hash = |s: &str| build.hash_one(s);
        assert_eq!(hash("a"), hash("a"));
        assert_ne!(hash("a"), hash("b"));
        assert_ne!(hash("ab"), hash("ba"));
        // Longer-than-a-word keys exercise the chunked path.
        assert_ne!(hash("carry_chain_17"), hash("carry_chain_18"));
    }

    #[test]
    fn fx_map_works_with_str_and_atom_keys() {
        // Both key types the parsers use.
        let mut by_name: FxHashMap<&str, u32> = FxHashMap::default();
        by_name.insert("a", 1);
        by_name.insert("b", 2);
        assert_eq!(by_name.get("a"), Some(&1));

        let mut interner = StringInterner::new();
        let mut by_atom: FxHashMap<Atom, u32> = FxHashMap::default();
        by_atom.insert(interner.intern("x"), 7);
        assert_eq!(by_atom.get(&interner.intern("x")), Some(&7));
    }
}
