//! Diagnostics for netlist interchange: every parse error carries the
//! source location it was detected at, and structural errors found by
//! [`glitch_netlist::Netlist::validate`] are reported with net names
//! resolved (a BLIF author knows their nets by name, not by dense index).

use std::error::Error;
use std::fmt;

use glitch_netlist::NetlistError;

/// A position in the source text, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl Loc {
    /// Builds a location.
    #[must_use]
    pub fn new(line: usize, col: usize) -> Self {
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// Errors reported by the BLIF and Verilog frontends and the BLIF writer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IoError {
    /// The text does not conform to the grammar.
    Syntax {
        /// Where the problem was detected.
        loc: Loc,
        /// What went wrong.
        message: String,
    },
    /// A `.subckt` / `.gate` model or a module instance names a cell the
    /// [`crate::GateLibrary`] does not know.
    UnknownCell {
        /// Where the cell is instantiated.
        loc: Loc,
        /// The unresolved cell name.
        name: String,
    },
    /// A cover row, a pin list or a net reference has the wrong width.
    WidthMismatch {
        /// Where the mismatch was detected.
        loc: Loc,
        /// What is mis-sized (a net or cell name, or `"cover row"`).
        subject: String,
        /// The width the context requires.
        expected: usize,
        /// The width that was found.
        got: usize,
    },
    /// Two constructs drive the same net.
    DuplicateDriver {
        /// Where the second driver appears.
        loc: Loc,
        /// The over-driven net's name.
        net: String,
    },
    /// An identifier is used but never declared (strict-mode Verilog) or a
    /// primary input is declared after the net was already created.
    Undeclared {
        /// Where the identifier is used.
        loc: Loc,
        /// The identifier.
        name: String,
    },
    /// A recognised but unsupported construct.
    Unsupported {
        /// Where the construct appears.
        loc: Loc,
        /// A description of the construct.
        construct: String,
    },
    /// A net ends up with loads but no driver (found by post-parse
    /// validation).
    DanglingNet {
        /// The floating net's name.
        net: String,
    },
    /// Any other structural invariant violated by the parsed netlist, with
    /// ids already resolved to names where possible.
    InvalidNetlist {
        /// The resolved description.
        message: String,
    },
}

impl IoError {
    /// Builds a syntax error.
    #[must_use]
    pub fn syntax(loc: Loc, message: impl Into<String>) -> Self {
        IoError::Syntax {
            loc,
            message: message.into(),
        }
    }

    /// Converts a [`NetlistError`] found while building or validating the
    /// parsed netlist, resolving ids to names through `resolve`.
    pub(crate) fn from_netlist(err: &NetlistError, resolve: impl Fn(usize) -> String) -> Self {
        match err {
            NetlistError::FloatingNet(net) => IoError::DanglingNet {
                net: resolve(net.index()),
            },
            other => IoError::InvalidNetlist {
                message: other.to_string(),
            },
        }
    }

    /// The source location the error points at, if it has one.
    #[must_use]
    pub fn loc(&self) -> Option<Loc> {
        match self {
            IoError::Syntax { loc, .. }
            | IoError::UnknownCell { loc, .. }
            | IoError::WidthMismatch { loc, .. }
            | IoError::DuplicateDriver { loc, .. }
            | IoError::Undeclared { loc, .. }
            | IoError::Unsupported { loc, .. } => Some(*loc),
            IoError::DanglingNet { .. } | IoError::InvalidNetlist { .. } => None,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Syntax { loc, message } => write!(f, "{loc}: {message}"),
            IoError::UnknownCell { loc, name } => {
                write!(f, "{loc}: unknown cell `{name}` (not in the gate library)")
            }
            IoError::WidthMismatch {
                loc,
                subject,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{loc}: width mismatch on {subject}: expected {expected}, got {got}"
                )
            }
            IoError::DuplicateDriver { loc, net } => {
                write!(f, "{loc}: net `{net}` already has a driver")
            }
            IoError::Undeclared { loc, name } => {
                write!(f, "{loc}: `{name}` is not declared")
            }
            IoError::Unsupported { loc, construct } => {
                write!(f, "{loc}: unsupported construct: {construct}")
            }
            IoError::DanglingNet { net } => {
                write!(f, "net `{net}` is used but never driven (dangling)")
            }
            IoError::InvalidNetlist { message } => {
                write!(f, "parsed netlist is structurally invalid: {message}")
            }
        }
    }
}

impl Error for IoError {}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_netlist::Netlist;

    #[test]
    fn display_forms_carry_location() {
        let e = IoError::syntax(Loc::new(3, 7), "bad token");
        assert_eq!(e.to_string(), "line 3, column 7: bad token");
        assert_eq!(e.loc(), Some(Loc::new(3, 7)));
        let e = IoError::UnknownCell {
            loc: Loc::new(1, 1),
            name: "weird".into(),
        };
        assert!(e.to_string().contains("`weird`"));
        let e = IoError::DanglingNet { net: "x".into() };
        assert!(e.loc().is_none());
    }

    #[test]
    fn netlist_errors_resolve_net_names() {
        // Build a netlist with a floating net that has a load.
        let mut nl = Netlist::new("t");
        let floating = nl.add_net("mystery");
        let y = nl.inv(floating, "y");
        nl.mark_output(y);
        let err = nl.validate().unwrap_err();
        let io = IoError::from_netlist(&err, |i| {
            nl.net(glitch_netlist::NetId::from_index(i))
                .name()
                .to_string()
        });
        assert_eq!(
            io,
            IoError::DanglingNet {
                net: "mystery".into()
            }
        );
        assert!(io.to_string().contains("mystery"));
    }
}
