//! Sum-of-products covers: the logic representation of a BLIF `.names`
//! block, classification of covers onto [`CellKind`]s and generic
//! AND–OR–INV decomposition for covers that match no library cell.

use glitch_netlist::{CellKind, NetId, Netlist};

/// One literal position of a product term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lit {
    /// The input must be 0 (`0` in BLIF).
    Zero,
    /// The input must be 1 (`1` in BLIF).
    One,
    /// The input does not matter (`-` in BLIF).
    DontCare,
}

impl Lit {
    fn matches(self, value: bool) -> bool {
        match self {
            Lit::Zero => !value,
            Lit::One => value,
            Lit::DontCare => true,
        }
    }
}

/// A single-output sum-of-products cover over `inputs` ordered inputs.
///
/// `phase == true` is an on-set cover (the function is 1 exactly where some
/// row matches); `phase == false` is an off-set cover (the function is 0
/// exactly where some row matches). A cover with no rows is the constant
/// `!phase`... almost: BLIF defines an empty `.names` as constant 0, which
/// is what [`SopCover::constant_zero`] builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SopCover {
    /// Number of inputs.
    pub inputs: usize,
    /// The product terms.
    pub rows: Vec<Vec<Lit>>,
    /// Output phase shared by every row.
    pub phase: bool,
}

/// Covers with more inputs than this are not truth-table classified (they
/// go straight to generic decomposition).
const MAX_CLASSIFY_INPUTS: usize = 12;

impl SopCover {
    /// The empty cover: constant 0 regardless of input count.
    #[must_use]
    pub fn constant_zero(inputs: usize) -> Self {
        SopCover {
            inputs,
            rows: Vec::new(),
            phase: true,
        }
    }

    /// Evaluates the cover for one input assignment (bit `i` of `x` is
    /// input `i`).
    #[must_use]
    pub fn evaluate(&self, x: u64) -> bool {
        let hit = self.rows.iter().any(|row| {
            row.iter()
                .enumerate()
                .all(|(i, lit)| lit.matches((x >> i) & 1 == 1))
        });
        if self.phase {
            hit
        } else {
            !hit
        }
    }

    /// The full truth table (index = input assignment), or `None` when the
    /// cover is too wide to enumerate.
    #[must_use]
    pub fn truth_table(&self) -> Option<Vec<bool>> {
        if self.inputs > MAX_CLASSIFY_INPUTS {
            return None;
        }
        Some((0..1u64 << self.inputs).map(|x| self.evaluate(x)).collect())
    }

    /// Finds the [`CellKind`] with this cover's exact truth table under the
    /// cover's input order, if one exists.
    #[must_use]
    pub fn classify(&self) -> Option<CellKind> {
        let table = self.truth_table()?;
        candidate_kinds(self.inputs)
            .into_iter()
            .find(|&kind| kind_truth_table(kind, self.inputs) == table)
    }

    /// Instantiates the cover's function in `netlist`, driving the existing
    /// net `out`. Uses a single cell when [`SopCover::classify`] finds one,
    /// and a generic AND–OR–INV network otherwise (intermediate nets are
    /// prefixed with the output net's name).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`glitch_netlist::NetlistError`] when `out`
    /// is already driven or an input id is foreign.
    pub fn instantiate(
        &self,
        netlist: &mut Netlist,
        inputs: &[NetId],
        out: NetId,
    ) -> Result<(), glitch_netlist::NetlistError> {
        assert_eq!(
            inputs.len(),
            self.inputs,
            "cover arity must match the input list"
        );
        let out_name = netlist.net(out).name().to_string();
        if let Some(kind) = self.classify() {
            // Gates with fixed arities (Buf/Inv/Const) drop unused inputs
            // is not a concern: classification only matches exact arities.
            let cell_name = format!("g_{out_name}_{}", netlist.cell_count());
            netlist.add_cell(kind, cell_name, inputs.to_vec(), vec![out])?;
            return Ok(());
        }
        self.decompose(netlist, inputs, out, &out_name)
    }

    /// Generic AND–OR–INV synthesis of the cover into `netlist`.
    fn decompose(
        &self,
        netlist: &mut Netlist,
        inputs: &[NetId],
        out: NetId,
        prefix: &str,
    ) -> Result<(), glitch_netlist::NetlistError> {
        // Cache of inverted inputs so each input is inverted at most once.
        let mut inverted: Vec<Option<NetId>> = vec![None; inputs.len()];
        let mut literal = |netlist: &mut Netlist, i: usize, lit: Lit| -> Option<NetId> {
            match lit {
                Lit::DontCare => None,
                Lit::One => Some(inputs[i]),
                Lit::Zero => Some(
                    *inverted[i]
                        .get_or_insert_with(|| netlist.inv(inputs[i], &format!("{prefix}$n{i}"))),
                ),
            }
        };

        // One conjunction per product term.
        let mut products: Vec<NetId> = Vec::with_capacity(self.rows.len());
        for (r, row) in self.rows.iter().enumerate() {
            let lits: Vec<NetId> = row
                .iter()
                .enumerate()
                .filter_map(|(i, &l)| literal(netlist, i, l))
                .collect();
            let product = match lits.len() {
                // An all-don't-care row is the constant 1 term.
                0 => netlist.constant(true, &format!("{prefix}$p{r}")),
                1 => lits[0],
                _ => netlist.and(&lits, &format!("{prefix}$p{r}")),
            };
            products.push(product);
        }

        // Disjunction of the products, in the cover's phase, driving `out`.
        let cell_name = format!("g_{prefix}_{}", netlist.cell_count());
        match (products.len(), self.phase) {
            (0, phase) => {
                // No matching row anywhere: constant !phase; BLIF's empty
                // cover is constant 0 (phase == true here).
                netlist.add_cell(CellKind::Const(!phase), cell_name, vec![], vec![out])?;
            }
            (1, true) => {
                netlist.add_cell(CellKind::Buf, cell_name, vec![products[0]], vec![out])?;
            }
            (1, false) => {
                netlist.add_cell(CellKind::Inv, cell_name, vec![products[0]], vec![out])?;
            }
            (_, true) => {
                netlist.add_cell(CellKind::Or, cell_name, products, vec![out])?;
            }
            (_, false) => {
                netlist.add_cell(CellKind::Nor, cell_name, products, vec![out])?;
            }
        }
        Ok(())
    }
}

/// The kinds a cover of the given arity could classify to, in match order.
fn candidate_kinds(inputs: usize) -> Vec<CellKind> {
    match inputs {
        0 => vec![CellKind::Const(false), CellKind::Const(true)],
        1 => vec![CellKind::Buf, CellKind::Inv],
        3 => vec![
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Mux2,
            CellKind::Maj3,
        ],
        _ => vec![
            CellKind::And,
            CellKind::Or,
            CellKind::Nand,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
        ],
    }
}

/// Truth table of a single-output kind at the given arity.
///
/// Only called with kinds from [`candidate_kinds`], all of which accept the
/// arity they are listed under.
fn kind_truth_table(kind: CellKind, inputs: usize) -> Vec<bool> {
    let mut scratch = vec![false; inputs];
    (0..1u64 << inputs)
        .map(|x| {
            for (i, slot) in scratch.iter_mut().enumerate() {
                *slot = (x >> i) & 1 == 1;
            }
            let mut out = [false];
            kind.try_evaluate_into(&scratch, &mut out)
                .expect("candidate kinds accept the arity they are listed under");
            out[0]
        })
        .collect()
}

/// The canonical cover emitted for a single-output kind — the exact inverse
/// of [`SopCover::classify`], so emission followed by parsing reproduces
/// the kind.
#[must_use]
pub fn canonical_cover(kind: CellKind, inputs: usize) -> SopCover {
    let row = |spec: &[Lit]| spec.to_vec();
    let single = |i: usize, lit: Lit| {
        let mut r = vec![Lit::DontCare; inputs];
        r[i] = lit;
        r
    };
    let (rows, phase) = match kind {
        CellKind::Const(false) => (Vec::new(), true),
        CellKind::Const(true) => (vec![Vec::new()], true),
        CellKind::Buf => (vec![row(&[Lit::One])], true),
        CellKind::Inv => (vec![row(&[Lit::Zero])], true),
        CellKind::And => (vec![vec![Lit::One; inputs]], true),
        CellKind::Nor => (vec![vec![Lit::Zero; inputs]], true),
        CellKind::Or => ((0..inputs).map(|i| single(i, Lit::One)).collect(), true),
        CellKind::Nand => ((0..inputs).map(|i| single(i, Lit::Zero)).collect(), true),
        CellKind::Xor => (parity_rows(inputs, true), true),
        CellKind::Xnor => (parity_rows(inputs, false), true),
        CellKind::Mux2 => (
            vec![
                row(&[Lit::Zero, Lit::One, Lit::DontCare]),
                row(&[Lit::One, Lit::DontCare, Lit::One]),
            ],
            true,
        ),
        CellKind::Maj3 => (
            vec![
                row(&[Lit::One, Lit::One, Lit::DontCare]),
                row(&[Lit::One, Lit::DontCare, Lit::One]),
                row(&[Lit::DontCare, Lit::One, Lit::One]),
            ],
            true,
        ),
        CellKind::HalfAdder | CellKind::FullAdder | CellKind::Dff => {
            unreachable!("{kind} is not a single-output combinational cell")
        }
    };
    SopCover {
        inputs,
        rows,
        phase,
    }
}

/// All minterm rows with odd (when `odd`) or even parity — the SOP of an
/// n-ary XOR / XNOR.
fn parity_rows(inputs: usize, odd: bool) -> Vec<Vec<Lit>> {
    (0..1u64 << inputs)
        .filter(|x| (x.count_ones() % 2 == 1) == odd)
        .map(|x| {
            (0..inputs)
                .map(|i| {
                    if (x >> i) & 1 == 1 {
                        Lit::One
                    } else {
                        Lit::Zero
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(rows: &[&str], phase: bool) -> SopCover {
        let inputs = rows.first().map_or(0, |r| r.len());
        SopCover {
            inputs,
            rows: rows
                .iter()
                .map(|r| {
                    r.chars()
                        .map(|c| match c {
                            '0' => Lit::Zero,
                            '1' => Lit::One,
                            '-' => Lit::DontCare,
                            _ => panic!("bad literal {c}"),
                        })
                        .collect()
                })
                .collect(),
            phase,
        }
    }

    #[test]
    fn classify_standard_gates() {
        assert_eq!(cover(&["11"], true).classify(), Some(CellKind::And));
        assert_eq!(cover(&["1-", "-1"], true).classify(), Some(CellKind::Or));
        assert_eq!(cover(&["00"], true).classify(), Some(CellKind::Nor));
        assert_eq!(cover(&["0-", "-0"], true).classify(), Some(CellKind::Nand));
        assert_eq!(cover(&["01", "10"], true).classify(), Some(CellKind::Xor));
        assert_eq!(cover(&["00", "11"], true).classify(), Some(CellKind::Xnor));
        assert_eq!(cover(&["1"], true).classify(), Some(CellKind::Buf));
        assert_eq!(cover(&["0"], true).classify(), Some(CellKind::Inv));
        assert_eq!(
            cover(&["01-", "1-1"], true).classify(),
            Some(CellKind::Mux2)
        );
        assert_eq!(
            cover(&["11-", "1-1", "-11"], true).classify(),
            Some(CellKind::Maj3)
        );
    }

    #[test]
    fn classify_uses_phase() {
        // NAND written as an off-set cover: output 0 exactly when both are 1.
        assert_eq!(cover(&["11"], false).classify(), Some(CellKind::Nand));
        // AND written as an off-set cover over the three zero rows.
        assert_eq!(cover(&["0-", "-0"], false).classify(), Some(CellKind::And));
    }

    #[test]
    fn classify_constants() {
        assert_eq!(
            SopCover::constant_zero(0).classify(),
            Some(CellKind::Const(false))
        );
        let one = SopCover {
            inputs: 0,
            rows: vec![Vec::new()],
            phase: true,
        };
        assert_eq!(one.classify(), Some(CellKind::Const(true)));
    }

    #[test]
    fn three_input_parity_is_xor() {
        assert_eq!(
            cover(&["001", "010", "100", "111"], true).classify(),
            Some(CellKind::Xor)
        );
    }

    #[test]
    fn canonical_covers_round_trip_through_classify() {
        let cases: Vec<(CellKind, usize)> = vec![
            (CellKind::Const(false), 0),
            (CellKind::Const(true), 0),
            (CellKind::Buf, 1),
            (CellKind::Inv, 1),
            (CellKind::And, 2),
            (CellKind::And, 4),
            (CellKind::Or, 3),
            (CellKind::Nand, 2),
            (CellKind::Nor, 5),
            (CellKind::Xor, 2),
            (CellKind::Xor, 3),
            (CellKind::Xnor, 4),
            (CellKind::Mux2, 3),
            (CellKind::Maj3, 3),
        ];
        for (kind, n) in cases {
            let c = canonical_cover(kind, n);
            assert_eq!(c.classify(), Some(kind), "{kind} at arity {n}");
        }
    }

    #[test]
    fn irregular_cover_decomposes_correctly() {
        // f(a, b, c) = a·b + !c  — matches no single kind.
        let c = cover(&["11-", "--0"], true);
        assert_eq!(c.classify(), None);
        let mut nl = Netlist::new("dec");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cc = nl.add_input("c");
        let out = nl.add_net("f");
        c.instantiate(&mut nl, &[a, b, cc], out).unwrap();
        nl.mark_output(out);
        nl.validate().unwrap();
        // Exhaustive functional check through the cover's own evaluate.
        let levels = nl.clone();
        let sim_check = |x: u64| -> bool {
            // Evaluate combinationally by topological relaxation.
            let mut values = vec![None::<bool>; levels.net_count()];
            values[a.index()] = Some(x & 1 == 1);
            values[b.index()] = Some(x >> 1 & 1 == 1);
            values[cc.index()] = Some(x >> 2 & 1 == 1);
            for _ in 0..levels.cell_count() {
                for (_, cell) in levels.cells() {
                    let ins: Option<Vec<bool>> =
                        cell.inputs().iter().map(|n| values[n.index()]).collect();
                    if let Some(ins) = ins {
                        let mut outs = vec![false; cell.kind().output_count()];
                        cell.kind().evaluate_into(&ins, &mut outs);
                        for (pin, &net) in cell.outputs().iter().enumerate() {
                            values[net.index()] = Some(outs[pin]);
                        }
                    }
                }
            }
            values[out.index()].expect("combinational circuit must settle")
        };
        for x in 0..8 {
            assert_eq!(sim_check(x), c.evaluate(x), "mismatch at input {x:03b}");
        }
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let c = SopCover::constant_zero(0);
        let mut nl = Netlist::new("k0");
        let out = nl.add_net("f");
        c.instantiate(&mut nl, &[], out).unwrap();
        nl.mark_output(out);
        assert_eq!(nl.stats().count_of(CellKind::Const(false)), 1);
    }
}
