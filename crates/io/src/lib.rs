//! # glitch-io
//!
//! Netlist interchange for the glitch-analysis workspace: external circuits
//! in and out, so the paper's pipeline (analyzer → event-driven simulation →
//! glitch classification → power estimation → retiming) runs on netlists
//! produced by other tools, not only on the generators in `glitch-arith`.
//!
//! * [`parse_blif`] — a BLIF reader (`.model` / `.inputs` / `.outputs` /
//!   `.names` covers / `.latch` / `.subckt` / `.gate`). Sum-of-products
//!   covers whose truth table matches a [`glitch_netlist::CellKind`] become
//!   a single cell; anything else is decomposed into an AND–OR–INV network.
//! * [`emit_blif`] — the inverse writer; write → read reproduces net, cell
//!   and flipflop counts and the per-kind cell histogram exactly.
//! * [`parse_verilog`] — a structural-Verilog subset reader (module, wire /
//!   input / output declarations, primitive gates, library cell instances).
//! * [`GateLibrary`] — the mapping layer resolving external cell names and
//!   pins onto [`glitch_netlist::CellKind`], with per-kind delay and
//!   capacitance defaults drawn from `glitch-power`'s [`glitch_power::Technology`].
//! * [`IoError`] — diagnostics with line/column locations; structural
//!   problems found by `netlist::validate` are reported with net names
//!   resolved.
//!
//! ## Example
//!
//! ```
//! use glitch_io::{parse_blif, emit_blif, GateLibrary};
//!
//! let text = "\
//! .model ha
//! .inputs a b
//! .outputs s c
//! .names a b s
//! 01 1
//! 10 1
//! .names a b c
//! 11 1
//! .end
//! ";
//! let lib = GateLibrary::standard();
//! let netlist = parse_blif(text, &lib)?;
//! assert_eq!(netlist.cell_count(), 2);
//! let round_tripped = parse_blif(&emit_blif(&netlist), &lib)?;
//! assert_eq!(round_tripped.stats().cells_by_kind(), netlist.stats().cells_by_kind());
//! # Ok::<(), glitch_io::IoError>(())
//! ```

mod blif;
mod cover;
mod emit;
mod error;
mod intern;
mod library;
mod verilog;

pub use blif::parse_blif;
pub use cover::{canonical_cover, Lit, SopCover};
pub use emit::emit_blif;
pub use error::{IoError, Loc};
pub use library::{GateLibrary, LibraryCell, LibraryPin};
pub use verilog::parse_verilog;

use glitch_netlist::Netlist;

/// The netlist formats this crate reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Berkeley Logic Interchange Format.
    Blif,
    /// Structural-Verilog subset.
    Verilog,
}

impl Format {
    /// Guesses the format from a file name's extension (`.blif` → BLIF,
    /// `.v` / `.sv` / `.vh` → Verilog).
    #[must_use]
    pub fn from_extension(path: &str) -> Option<Format> {
        let ext = path.rsplit('.').next()?.to_ascii_lowercase();
        match ext.as_str() {
            "blif" => Some(Format::Blif),
            "v" | "sv" | "vh" => Some(Format::Verilog),
            _ => None,
        }
    }
}

/// Parses `text` in the given format through `library`.
///
/// # Errors
///
/// Forwards the reader's [`IoError`].
pub fn parse_netlist(
    text: &str,
    format: Format,
    library: &GateLibrary,
) -> Result<Netlist, IoError> {
    match format {
        Format::Blif => parse_blif(text, library),
        Format::Verilog => parse_verilog(text, library),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_guessing() {
        assert_eq!(
            Format::from_extension("tests/data/c17.blif"),
            Some(Format::Blif)
        );
        assert_eq!(Format::from_extension("adder.V"), Some(Format::Verilog));
        assert_eq!(Format::from_extension("core.sv"), Some(Format::Verilog));
        assert_eq!(Format::from_extension("netlist.edif"), None);
    }

    #[test]
    fn parse_netlist_dispatches() {
        let lib = GateLibrary::standard();
        let blif = ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n";
        let verilog = "module t (a, y); input a; output y; not g (y, a); endmodule";
        let from_blif = parse_netlist(blif, Format::Blif, &lib).unwrap();
        let from_verilog = parse_netlist(verilog, Format::Verilog, &lib).unwrap();
        assert_eq!(
            from_blif.stats().cells_by_kind(),
            from_verilog.stats().cells_by_kind()
        );
    }
}
