//! # glitch-reduce
//!
//! The paper's reduction loop: iterative glitch-power optimization of a
//! synchronous network, pinned by an equivalence-checking differential
//! oracle.
//!
//! Section 5 of the DATE'95 paper (*Analysis and Reduction of Glitches in
//! Synchronous Networks*) reduces glitching with structural levers —
//! retiming, delay insertion, gate duplication — chosen where the
//! analysis says the glitches are. This crate closes that loop as a
//! greedy accept/reject optimizer:
//!
//! 1. **Measure** — a [`glitch_core::ReduceSession`] pass prices the
//!    netlist in glitch power (combinational power of useless transitions)
//!    and locates hazards per net.
//! 2. **Propose** — [`generate_candidates`] ranks rewrites at the
//!    hazard-hot sites: [`MoveKind::Buffer`], [`MoveKind::Duplicate`],
//!    [`MoveKind::Retime`] (all from [`glitch_retime::rewrite`], each a
//!    total-mapping `Netlist → Netlist` rebuild).
//! 3. **Screen** — [`screen_candidate`] co-simulates candidate against
//!    current functionally, batch-wide through the compiled kernel (or
//!    per-lane through the event queue — both decide identically).
//! 4. **Confirm** — survivors get a full analysis pass; the best strictly
//!    improving candidate is accepted and its mapping composed.
//! 5. **Verify** — the final netlist is checked against the *original*
//!    with [`glitch_verify::EquivalenceChecker`]: cycle-accurate output
//!    equality through the composed mapping, under the configured delay
//!    model, binary and `x_init`. Only then is the headline claimed:
//!    *glitch power −N% at equal function*.
//!
//! ## Example
//!
//! ```
//! use glitch_core::{AnalysisConfig, ReduceSession};
//! use glitch_core::arith::{AdderStyle, RippleCarryAdder};
//! use glitch_reduce::{ReduceOptions, Reducer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
//! let session = ReduceSession::new(
//!     AnalysisConfig { cycles: 80, ..AnalysisConfig::default() },
//!     vec![1, 2],
//!     1,
//! );
//! let options = ReduceOptions { max_iters: 2, ..ReduceOptions::default() };
//! let report = Reducer::new(session, options).run(
//!     &adder.netlist,
//!     &[adder.a.clone(), adder.b.clone()],
//!     &[(adder.cin, false)],
//! )?;
//! assert!(report.equivalence.passed(), "reduction preserves the function");
//! assert!(report.final_glitch_power <= report.initial_glitch_power);
//! println!("{}", report.headline());
//! # Ok(())
//! # }
//! ```

mod error;
mod moves;
mod progress;
mod reducer;
mod screen;

pub use error::ReduceError;
pub use moves::{generate_candidates, parse_moves, Candidate, MoveKind};
pub use progress::{NullProgress, ProgressEvent, ProgressSink};
pub use reducer::{AcceptedMove, ReduceOptions, ReduceReport, Reducer};
pub use screen::{screen_candidate, ScreenBackend, ScreenOutcome};
