//! Per-iteration progress reporting for long reductions.
//!
//! The descent can run for minutes on large circuits; a [`ProgressSink`]
//! observes one [`ProgressEvent`] per loop iteration — the accepted move
//! with its glitch-power delta, or the rejection that ends the descent —
//! so the serving daemon can stream interim rows while the loop runs.
//! Sinks are observers only: they cannot alter the descent, so a run with
//! a sink attached produces a byte-identical report to one without.

use crate::reducer::AcceptedMove;

/// One reduction-loop iteration, as seen by a [`ProgressSink`].
#[derive(Debug, Clone)]
pub struct ProgressEvent<'a> {
    /// 1-based loop iteration.
    pub iteration: usize,
    /// Candidates proposed this iteration.
    pub proposed: usize,
    /// Candidates that survived this iteration's functional screen.
    pub screened: usize,
    /// The accepted move, or `None` when no candidate improved (the
    /// iteration that ends the descent).
    pub accepted: Option<&'a AcceptedMove>,
    /// Glitch power after this iteration, in watts.
    pub glitch_power: f64,
    /// The run's baseline glitch power, in watts.
    pub baseline_glitch_power: f64,
}

/// Observes reduction-loop iterations; see the module docs.
pub trait ProgressSink {
    /// Called once per loop iteration, after its accept/reject decision.
    fn iteration(&mut self, event: &ProgressEvent<'_>);
}

/// The sink that drops every event — what [`crate::Reducer::run`] uses.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProgress;

impl ProgressSink for NullProgress {
    fn iteration(&mut self, _event: &ProgressEvent<'_>) {}
}
