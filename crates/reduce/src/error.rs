//! Error vocabulary of the reduction loop.

use glitch_netlist::NetlistError;
use glitch_retime::RetimeError;
use glitch_sim::SimError;
use glitch_verify::EquivalenceError;

/// Ways a reduction run can fail.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReduceError {
    /// A simulation pass (scoring or screening) failed.
    Sim(SimError),
    /// A candidate rewrite failed structurally (distinct from a rewrite
    /// that is merely inapplicable — those are silently skipped during
    /// candidate generation).
    Retime(RetimeError),
    /// The composed move mapping could not be turned into an equivalence
    /// checker — a rewrite broke the input/output mapping contract.
    Equivalence(EquivalenceError),
    /// The final equivalence verification *failed*: an accepted move
    /// sequence changed the function. The loop only accepts screened
    /// moves, so this indicates a rewrite bug; the message locates the
    /// first diverging output.
    NotEquivalent {
        /// Human-readable mismatch location.
        detail: String,
    },
    /// An enabled move kind could not be parsed.
    UnknownMove {
        /// The offending spelling.
        name: String,
    },
    /// The kernel screen could not compile a netlist.
    InvalidNetlist(NetlistError),
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::Sim(e) => write!(f, "simulation failed: {e}"),
            ReduceError::Retime(e) => write!(f, "rewrite failed: {e}"),
            ReduceError::Equivalence(e) => write!(f, "equivalence mapping rejected: {e}"),
            ReduceError::NotEquivalent { detail } => {
                write!(f, "reduced netlist is not equivalent: {detail}")
            }
            ReduceError::UnknownMove { name } => write!(
                f,
                "unknown move `{name}` (expected `buffer`, `duplicate` or `retime`)"
            ),
            ReduceError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ReduceError {}

impl From<SimError> for ReduceError {
    fn from(e: SimError) -> Self {
        ReduceError::Sim(e)
    }
}

impl From<RetimeError> for ReduceError {
    fn from(e: RetimeError) -> Self {
        ReduceError::Retime(e)
    }
}

impl From<EquivalenceError> for ReduceError {
    fn from(e: EquivalenceError) -> Self {
        ReduceError::Equivalence(e)
    }
}

impl From<NetlistError> for ReduceError {
    fn from(e: NetlistError) -> Self {
        ReduceError::InvalidNetlist(e)
    }
}
