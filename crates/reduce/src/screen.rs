//! Cheap functional screening of candidate moves.
//!
//! Before a candidate earns the expensive glitch-power confirm (a full
//! multi-seed event-driven analysis pass), it must survive a *functional*
//! co-simulation against the current netlist: same stimulus in, identical
//! settled output values out, through the rewrite's mapping and latency.
//! A rewrite with a structural bug dies here for the price of a few dozen
//! functional cycles instead of a full analysis.
//!
//! Two backends compute the same decision:
//!
//! * [`ScreenBackend::Kernel`] — both netlists compiled to bit-parallel
//!   [`KernelProgram`]s, all lanes evaluated per machine word. This is
//!   the batch path the hybrid/kernel engines use.
//! * [`ScreenBackend::Queue`] — one event-driven [`ClockedSimulator`]
//!   per lane per side. The reference path.
//!
//! Settled end-of-cycle values are delay-independent, and the kernel is
//! pinned bit-for-bit against the event-driven simulator (the kernel
//! oracle), so **both backends accept and reject exactly the same
//! candidates** — `crates/reduce/tests/screen_pin.rs` pins this.

use std::collections::VecDeque;

use glitch_kernel::KernelProgram;
use glitch_netlist::{NetId, Netlist, Tri};
use glitch_retime::Rewrite;
use glitch_sim::{kernel_eval_mode, ClockedSimulator, InputAssignment, UnitDelay, XEval};

use crate::error::ReduceError;

/// Which engine computes the screen decision; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenBackend {
    /// Compiled bit-parallel kernel, all lanes per word.
    Kernel,
    /// One event-driven simulator per lane per side.
    Queue,
}

/// The result of screening one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenOutcome {
    /// `true` when every compared output value matched.
    pub accepted: bool,
    /// Cycles co-simulated.
    pub cycles: u64,
    /// Independent stimulus lanes.
    pub lanes: usize,
    /// Location of the first divergence when rejected.
    pub mismatch: Option<String>,
}

/// `splitmix64`: the screen's stimulus generator — tiny, seedable, and
/// identical across backends by construction.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stimulus word per `(cycle, input)`: bit `lane` drives that lane.
fn stimulus_word(seed: u64, cycle: u64, input_index: usize) -> u64 {
    splitmix64(
        seed ^ cycle.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ (input_index as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB),
    )
}

/// Screens `candidate` against `current`: `cycles` of shared seeded
/// stimulus across `lanes` independent lanes, comparing every original
/// output (through the candidate's mapping, shifted by its latency)
/// against the current netlist's settled value. Flipflops start at zero
/// on both sides, matching [`glitch_sim::SimOptions::default`].
///
/// # Errors
///
/// Returns [`ReduceError::InvalidNetlist`] if a netlist cannot be
/// compiled ([`ScreenBackend::Kernel`]) and [`ReduceError::Sim`] if an
/// event-driven settle fails ([`ScreenBackend::Queue`]).
pub fn screen_candidate(
    current: &Netlist,
    candidate: &Rewrite,
    backend: ScreenBackend,
    cycles: u64,
    lanes: usize,
    seed: u64,
) -> Result<ScreenOutcome, ReduceError> {
    match backend {
        ScreenBackend::Kernel => kernel_screen(current, candidate, cycles, lanes, seed),
        ScreenBackend::Queue => queue_screen(current, candidate, cycles, lanes, seed),
    }
}

/// The comparison spine shared by both backends: feeds per-cycle values of
/// the current netlist's outputs into a latency ring and diffs the
/// candidate's values against the ring head. Returns the first mismatch.
struct LatencyDiff {
    latency: u64,
    /// Ring of output value rows, one row per pending cycle.
    ring: VecDeque<Vec<Tri>>,
    compared_cycle: u64,
}

impl LatencyDiff {
    fn new(latency: usize) -> Self {
        LatencyDiff {
            latency: latency as u64,
            ring: VecDeque::with_capacity(latency + 1),
            compared_cycle: 0,
        }
    }

    /// Pushes one cycle of reference rows and compares when the ring has
    /// aged past the latency. Rows are `outputs × lanes`, flattened.
    fn step(
        &mut self,
        cycle: u64,
        reference: Vec<Tri>,
        transformed: &[Tri],
        describe: impl Fn(usize) -> String,
    ) -> Option<String> {
        self.ring.push_back(reference);
        if cycle < self.latency {
            return None;
        }
        let expected = self.ring.pop_front().expect("ring holds latency+1 rows");
        let source_cycle = self.compared_cycle;
        self.compared_cycle += 1;
        for (flat, (&want, &got)) in expected.iter().zip(transformed).enumerate() {
            if want != got {
                return Some(format!(
                    "{} diverged at cycle {source_cycle}: {want:?} vs {got:?}",
                    describe(flat)
                ));
            }
        }
        None
    }
}

fn kernel_screen(
    current: &Netlist,
    candidate: &Rewrite,
    cycles: u64,
    lanes: usize,
    seed: u64,
) -> Result<ScreenOutcome, ReduceError> {
    let prog_a = KernelProgram::compile(current)?;
    let prog_b = KernelProgram::compile(&candidate.netlist)?;
    let mode = kernel_eval_mode(XEval::default());
    let mut state_a = prog_a.new_state(lanes, Tri::Zero);
    let mut state_b = prog_b.new_state(lanes, Tri::Zero);
    let inputs = current.inputs().to_vec();
    let outputs = current.outputs().to_vec();
    let mut diff = LatencyDiff::new(candidate.map.latency());
    for cycle in 0..cycles {
        prog_a.begin_cycle(&mut state_a);
        prog_b.begin_cycle(&mut state_b);
        for (index, &input) in inputs.iter().enumerate() {
            let word = stimulus_word(seed, cycle, index);
            let mapped = candidate.map.new_net(input);
            for lane in 0..lanes {
                let bit = (word >> (lane % 64)) & 1 == 1;
                state_a.set_bool(input, lane, bit);
                state_b.set_bool(mapped, lane, bit);
            }
        }
        prog_a.eval(&mut state_a, mode);
        prog_b.eval(&mut state_b, mode);
        let reference: Vec<Tri> = outputs
            .iter()
            .flat_map(|&out| (0..lanes).map(move |lane| (out, lane)))
            .map(|(out, lane)| state_a.get(out, lane))
            .collect();
        let transformed: Vec<Tri> = outputs
            .iter()
            .map(|&out| candidate.map.output_net(out))
            .flat_map(|out| (0..lanes).map(move |lane| (out, lane)))
            .map(|(out, lane)| state_b.get(out, lane))
            .collect();
        let mismatch = diff.step(cycle, reference, &transformed, |flat| {
            locate(current, &outputs, lanes, flat)
        });
        if let Some(mismatch) = mismatch {
            return Ok(ScreenOutcome {
                accepted: false,
                cycles: cycle + 1,
                lanes,
                mismatch: Some(mismatch),
            });
        }
        prog_a.latch(&mut state_a);
        prog_b.latch(&mut state_b);
    }
    Ok(ScreenOutcome {
        accepted: true,
        cycles,
        lanes,
        mismatch: None,
    })
}

fn queue_screen(
    current: &Netlist,
    candidate: &Rewrite,
    cycles: u64,
    lanes: usize,
    seed: u64,
) -> Result<ScreenOutcome, ReduceError> {
    let mut sims_a: Vec<ClockedSimulator<'_>> = (0..lanes)
        .map(|_| ClockedSimulator::new(current, UnitDelay))
        .collect::<Result<_, _>>()?;
    let mut sims_b: Vec<ClockedSimulator<'_>> = (0..lanes)
        .map(|_| ClockedSimulator::new(&candidate.netlist, UnitDelay))
        .collect::<Result<_, _>>()?;
    let inputs = current.inputs().to_vec();
    let outputs = current.outputs().to_vec();
    let mut diff = LatencyDiff::new(candidate.map.latency());
    for cycle in 0..cycles {
        let words: Vec<u64> = (0..inputs.len())
            .map(|index| stimulus_word(seed, cycle, index))
            .collect();
        for lane in 0..lanes {
            let mut a = InputAssignment::new();
            let mut b = InputAssignment::new();
            for (index, &input) in inputs.iter().enumerate() {
                let bit = (words[index] >> (lane % 64)) & 1 == 1;
                a = a.with(input, bit);
                b = b.with(candidate.map.new_net(input), bit);
            }
            sims_a[lane].step(a)?;
            sims_b[lane].step(b)?;
        }
        let reference: Vec<Tri> = outputs
            .iter()
            .flat_map(|&out| (0..lanes).map(move |lane| (out, lane)))
            .map(|(out, lane)| Tri::from(sims_a[lane].net_value(out)))
            .collect();
        let transformed: Vec<Tri> = outputs
            .iter()
            .map(|&out| candidate.map.output_net(out))
            .flat_map(|out| (0..lanes).map(move |lane| (out, lane)))
            .map(|(out, lane)| Tri::from(sims_b[lane].net_value(out)))
            .collect();
        let mismatch = diff.step(cycle, reference, &transformed, |flat| {
            locate(current, &outputs, lanes, flat)
        });
        if let Some(mismatch) = mismatch {
            return Ok(ScreenOutcome {
                accepted: false,
                cycles: cycle + 1,
                lanes,
                mismatch: Some(mismatch),
            });
        }
    }
    Ok(ScreenOutcome {
        accepted: true,
        cycles,
        lanes,
        mismatch: None,
    })
}

/// Maps a flattened `outputs × lanes` index back to `output `name` lane N`.
fn locate(current: &Netlist, outputs: &[NetId], lanes: usize, flat: usize) -> String {
    let output = outputs[flat / lanes];
    let lane = flat % lanes;
    format!("output `{}` lane {lane}", current.net(output).name())
}
