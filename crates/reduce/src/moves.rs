//! The move taxonomy and hazard-ranked candidate generation.
//!
//! Candidates come from the *measurement*, not from enumeration: the
//! [`ReduceScore`]'s per-net hazard counts rank where glitches actually
//! concentrate under the configured stimulus, and each enabled move kind
//! proposes rewrites at the hottest applicable sites:
//!
//! * [`MoveKind::Buffer`] — delay insertion behind a hazard-hot net; the
//!   buffered loads see a later, cleaner arrival (paper section 5's
//!   "delay insertion" lever).
//! * [`MoveKind::Duplicate`] — gate duplication splitting a hot
//!   reconvergent driver, halving the capacitance each residual glitch
//!   charges.
//! * [`MoveKind::Retime`] — register-rank insertion
//!   ([`glitch_retime::pipeline_rewrite`]): arrival times realign at the
//!   register boundary, the paper's strongest reduction (Table 3). Only
//!   proposed for flipflop-free netlists — cutset pipelining starts from
//!   a combinational network.

use std::str::FromStr;

use glitch_core::ReduceScore;
use glitch_netlist::Netlist;
use glitch_retime::rewrite::{duplicate_driver, insert_buffer, pipeline_rewrite};
use glitch_retime::{PipelineOptions, Rewrite};

use crate::error::ReduceError;

/// The reduction loop's structural move vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveKind {
    /// Delay-buffer insertion behind a hazard-hot net.
    Buffer,
    /// Duplication of a hot multi-load combinational driver.
    Duplicate,
    /// Register-rank insertion (cutset pipelining).
    Retime,
}

impl MoveKind {
    /// The command-line spelling (`buffer`, `duplicate`, `retime`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MoveKind::Buffer => "buffer",
            MoveKind::Duplicate => "duplicate",
            MoveKind::Retime => "retime",
        }
    }

    /// Every move kind, in the default generation order.
    #[must_use]
    pub fn all() -> &'static [MoveKind] {
        &[MoveKind::Buffer, MoveKind::Duplicate, MoveKind::Retime]
    }
}

impl std::fmt::Display for MoveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for MoveKind {
    type Err = ReduceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "buffer" => Ok(MoveKind::Buffer),
            "duplicate" => Ok(MoveKind::Duplicate),
            "retime" => Ok(MoveKind::Retime),
            other => Err(ReduceError::UnknownMove {
                name: other.to_string(),
            }),
        }
    }
}

/// Parses a comma-separated move list (`buffer,retime`); the empty string
/// and `all` both mean every move kind. Duplicates are dropped, first
/// spelling wins the order.
///
/// # Errors
///
/// Returns [`ReduceError::UnknownMove`] on the first unknown name.
pub fn parse_moves(list: &str) -> Result<Vec<MoveKind>, ReduceError> {
    let trimmed = list.trim();
    if trimmed.is_empty() || trimmed == "all" {
        return Ok(MoveKind::all().to_vec());
    }
    let mut kinds = Vec::new();
    for part in trimmed.split(',') {
        let kind = part.trim().parse::<MoveKind>()?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    Ok(kinds)
}

/// One proposed rewrite, tagged with the move kind that generated it.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Which lever proposed this rewrite.
    pub kind: MoveKind,
    /// The rewrite itself (netlist + total mapping + description).
    pub rewrite: Rewrite,
}

/// The register-rank depths [`MoveKind::Retime`] proposes, shallowest
/// first. Rank 1 registers only the netlist boundary (no interior
/// realignment), so proposals start at 2; 4 and 6 probe deeper cuts on
/// larger netlists.
const RETIME_RANKS: [usize; 3] = [2, 4, 6];

/// Proposes up to `per_kind` candidates per enabled move kind, ranked by
/// the score's per-net hazard counts. Inapplicable sites are skipped, so
/// the result can be shorter (or empty when the netlist offers nothing).
///
/// Generation is deterministic: the hot-net ranking is a pure function of
/// the score and ties break on net id.
#[must_use]
pub fn generate_candidates(
    netlist: &Netlist,
    score: &ReduceScore,
    kinds: &[MoveKind],
    per_kind: usize,
    pipeline: PipelineOptions,
) -> Vec<Candidate> {
    let hot = score.hot_nets();
    let mut candidates = Vec::new();
    for &kind in kinds {
        match kind {
            MoveKind::Buffer => {
                let mut taken = 0;
                for &net in &hot {
                    if taken >= per_kind {
                        break;
                    }
                    if let Ok(rewrite) = insert_buffer(netlist, net) {
                        candidates.push(Candidate { kind, rewrite });
                        taken += 1;
                    }
                }
            }
            MoveKind::Duplicate => {
                let mut taken = 0;
                for &net in &hot {
                    if taken >= per_kind {
                        break;
                    }
                    let Some(pin) = netlist.net(net).driver() else {
                        continue;
                    };
                    if let Ok(rewrite) = duplicate_driver(netlist, pin.cell) {
                        candidates.push(Candidate { kind, rewrite });
                        taken += 1;
                    }
                }
            }
            MoveKind::Retime => {
                if netlist.dff_count() > 0 {
                    continue;
                }
                for &ranks in RETIME_RANKS.iter().take(per_kind) {
                    if let Ok(rewrite) = pipeline_rewrite(netlist, ranks, pipeline) {
                        candidates.push(Candidate { kind, rewrite });
                    }
                }
            }
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_lists_parse_with_dedup_and_default() {
        assert_eq!(parse_moves("").unwrap(), MoveKind::all());
        assert_eq!(parse_moves("all").unwrap(), MoveKind::all());
        assert_eq!(
            parse_moves("retime, buffer,retime").unwrap(),
            vec![MoveKind::Retime, MoveKind::Buffer]
        );
        assert!(matches!(
            parse_moves("buffer,swizzle"),
            Err(ReduceError::UnknownMove { name }) if name == "swizzle"
        ));
    }

    #[test]
    fn kinds_round_trip_their_spelling() {
        for &kind in MoveKind::all() {
            assert_eq!(kind.as_str().parse::<MoveKind>().unwrap(), kind);
        }
    }
}
