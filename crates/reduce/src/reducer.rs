//! The greedy descent: analyze → propose → screen → confirm → accept.
//!
//! Each iteration prices the current netlist with a [`ReduceSession`]
//! pass (glitch power + per-net hazards), proposes candidates at the
//! hazard-hot sites, screens them functionally (cheap, batch), confirms
//! the survivors with full analysis passes, and accepts the single best
//! strictly-improving move. The loop stops at the `--target` reduction,
//! when no candidate improves, or at `--max-iters`.
//!
//! Every figure is deterministic: scoring is worker-count invariant,
//! screening is seeded, candidate ranking is a pure function of the
//! score. Two runs with the same inputs produce byte-identical reports.
//!
//! The headline — *glitch power −N% at equal function* — is only claimed
//! after a final differential equivalence verification of the reduced
//! netlist against the **original** through the composed move mapping,
//! under the configured delay model, both binary and `x_init`.

use glitch_core::{EngineKind, ReduceScore, ReduceSession};
use glitch_netlist::{Bus, NetId, Netlist};
use glitch_retime::{NetMap, PipelineOptions};
use glitch_verify::{EquivalenceChecker, EquivalenceReport};

use crate::error::ReduceError;
use crate::moves::{generate_candidates, Candidate, MoveKind};
use crate::progress::{NullProgress, ProgressEvent, ProgressSink};
use crate::screen::{screen_candidate, ScreenBackend};

/// Knobs of the reduction loop; see the field docs for defaults.
#[derive(Debug, Clone)]
pub struct ReduceOptions {
    /// Enabled move kinds, in generation order.
    pub moves: Vec<MoveKind>,
    /// Stop once glitch power has dropped by at least this percent of the
    /// baseline; `None` descends until no move improves.
    pub target_percent: Option<f64>,
    /// Maximum accepted moves.
    pub max_iters: usize,
    /// Candidates proposed per move kind per iteration.
    pub per_kind: usize,
    /// Cycles of the functional screen.
    pub screen_cycles: u64,
    /// Stimulus lanes of the functional screen.
    pub screen_lanes: usize,
    /// Cycles of the final equivalence verification.
    pub equivalence_cycles: u64,
    /// Pipelining options for [`MoveKind::Retime`] candidates.
    pub pipeline: PipelineOptions,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            moves: MoveKind::all().to_vec(),
            target_percent: None,
            max_iters: 8,
            per_kind: 4,
            screen_cycles: 48,
            screen_lanes: 64,
            equivalence_cycles: 256,
            pipeline: PipelineOptions::default(),
        }
    }
}

/// One accepted move, with the glitch power it bought.
#[derive(Debug, Clone)]
pub struct AcceptedMove {
    /// 1-based iteration that accepted this move.
    pub iteration: usize,
    /// The move's kind.
    pub kind: MoveKind,
    /// The rewrite's human-readable description.
    pub description: String,
    /// Glitch power before the move, in watts.
    pub glitch_power_before: f64,
    /// Glitch power after the move, in watts.
    pub glitch_power_after: f64,
    /// Clock cycles of latency the move added.
    pub latency_added: usize,
}

/// The complete result of one reduction run.
#[derive(Debug, Clone)]
pub struct ReduceReport {
    /// Name of the circuit that was reduced.
    pub circuit: String,
    /// Iterations executed (including the final no-improvement one).
    pub iterations: usize,
    /// Candidates proposed across all iterations.
    pub proposed: usize,
    /// Candidates that survived the functional screen.
    pub screened: usize,
    /// Candidates confirmed with a full analysis pass.
    pub confirmed: usize,
    /// The accepted moves, in acceptance order.
    pub moves: Vec<AcceptedMove>,
    /// Baseline glitch power, in watts.
    pub initial_glitch_power: f64,
    /// Final glitch power, in watts.
    pub final_glitch_power: f64,
    /// Baseline total dynamic power, in watts.
    pub initial_total_power: f64,
    /// Final total dynamic power, in watts.
    pub final_total_power: f64,
    /// Glitch power after the baseline and after each accepted move —
    /// non-increasing by construction (each accepted move is a strict
    /// improvement).
    pub glitch_history: Vec<f64>,
    /// Total latency the accepted moves added, in clock cycles.
    pub latency: usize,
    /// The final equivalence verification against the original netlist,
    /// through the composed mapping: configured delay model, binary and
    /// `x_init`. Always present and always passing — a failure aborts the
    /// run with [`ReduceError::NotEquivalent`] instead.
    pub equivalence: EquivalenceReport,
    /// The reduced netlist.
    pub netlist: Netlist,
    /// The composed original → reduced mapping.
    pub map: NetMap,
}

impl ReduceReport {
    /// The headline reduction, in percent of the baseline glitch power
    /// (positive = improvement). Zero when the baseline had none.
    #[must_use]
    pub fn reduction_percent(&self) -> f64 {
        if self.initial_glitch_power <= 0.0 {
            return 0.0;
        }
        (self.initial_glitch_power - self.final_glitch_power) / self.initial_glitch_power * 100.0
    }

    /// The one-line claim: `glitch power -37.4% at equal function`.
    #[must_use]
    pub fn headline(&self) -> String {
        format!(
            "glitch power -{:.1}% at equal function",
            self.reduction_percent()
        )
    }
}

/// Runs the greedy reduction loop; see the module docs.
#[derive(Debug, Clone)]
pub struct Reducer {
    session: ReduceSession,
    options: ReduceOptions,
}

impl Reducer {
    /// Builds a reducer: `session` prices netlists (cycles, seeds, delay,
    /// engine, technology), `options` shape the descent.
    #[must_use]
    pub fn new(session: ReduceSession, options: ReduceOptions) -> Self {
        Reducer { session, options }
    }

    /// The screen backend the configured engine implies: pure-queue runs
    /// screen through the event queue, kernel-assisted runs batch-screen
    /// through the compiled kernel. Both decide identically (pinned).
    #[must_use]
    pub fn screen_backend(&self) -> ScreenBackend {
        match self.session.config().engine {
            EngineKind::Queue => ScreenBackend::Queue,
            EngineKind::Kernel | EngineKind::Hybrid => ScreenBackend::Kernel,
        }
    }

    /// Reduces `netlist`: descends on glitch power with the enabled moves
    /// and returns the full report. `random_buses`/`held` describe the
    /// stimulus in **original** netlist coordinates; the reducer remaps
    /// them through each accepted rewrite.
    ///
    /// # Errors
    ///
    /// * [`ReduceError::Sim`] — a scoring or screening simulation failed;
    /// * [`ReduceError::NotEquivalent`] — the final verification found a
    ///   divergence (a rewrite bug; accepted moves are pre-screened).
    pub fn run(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
    ) -> Result<ReduceReport, ReduceError> {
        self.run_with_progress(netlist, random_buses, held, &mut NullProgress)
    }

    /// [`Reducer::run`] with a [`ProgressSink`] observing one event per
    /// loop iteration (the accepted move, or the rejection that ends the
    /// descent). The sink is an observer only: the returned report is
    /// byte-identical to a sink-less run.
    ///
    /// # Errors
    ///
    /// Exactly as [`Reducer::run`].
    pub fn run_with_progress(
        &self,
        netlist: &Netlist,
        random_buses: &[Bus],
        held: &[(NetId, bool)],
        progress: &mut dyn ProgressSink,
    ) -> Result<ReduceReport, ReduceError> {
        let baseline = self.session.score(netlist, random_buses, held)?;
        let backend = self.screen_backend();
        let screen_seed = self.session.config().seed;

        let mut current = netlist.clone();
        let mut map = NetMap::identity(netlist);
        let mut buses = random_buses.to_vec();
        let mut held = held.to_vec();
        let mut score = baseline.clone();
        let mut glitch_history = vec![baseline.glitch_power];
        let mut moves: Vec<AcceptedMove> = Vec::new();
        let (mut proposed, mut screened, mut confirmed) = (0usize, 0usize, 0usize);
        let mut iterations = 0usize;

        while moves.len() < self.options.max_iters {
            if let Some(target) = self.options.target_percent {
                let reduced = (baseline.glitch_power - score.glitch_power)
                    / baseline.glitch_power.max(f64::MIN_POSITIVE)
                    * 100.0;
                if reduced >= target {
                    break;
                }
            }
            iterations += 1;
            let candidates = generate_candidates(
                &current,
                &score,
                &self.options.moves,
                self.options.per_kind,
                self.options.pipeline,
            );
            let iter_proposed = candidates.len();
            proposed += iter_proposed;
            if candidates.is_empty() {
                progress.iteration(&ProgressEvent {
                    iteration: iterations,
                    proposed: 0,
                    screened: 0,
                    accepted: None,
                    glitch_power: score.glitch_power,
                    baseline_glitch_power: baseline.glitch_power,
                });
                break;
            }
            // Functional screen: cheap batch rejection of broken rewrites.
            let mut survivors: Vec<Candidate> = Vec::new();
            for candidate in candidates {
                let outcome = screen_candidate(
                    &current,
                    &candidate.rewrite,
                    backend,
                    self.options.screen_cycles,
                    self.options.screen_lanes,
                    screen_seed ^ iterations as u64,
                )?;
                if outcome.accepted {
                    survivors.push(candidate);
                }
            }
            let iter_screened = survivors.len();
            screened += iter_screened;
            // Confirm: full glitch-power pass per survivor; best wins.
            type Confirmed = (Candidate, ReduceScore, Vec<Bus>, Vec<(NetId, bool)>);
            let mut best: Option<Confirmed> = None;
            for candidate in survivors {
                let next_buses: Vec<Bus> = buses
                    .iter()
                    .map(|bus| {
                        Bus::new(
                            bus.iter()
                                .map(|&net| candidate.rewrite.map.new_net(net))
                                .collect(),
                        )
                    })
                    .collect();
                let next_held: Vec<(NetId, bool)> = held
                    .iter()
                    .map(|&(net, value)| (candidate.rewrite.map.new_net(net), value))
                    .collect();
                let next_score =
                    self.session
                        .score(&candidate.rewrite.netlist, &next_buses, &next_held)?;
                confirmed += 1;
                let improves = next_score.glitch_power < score.glitch_power;
                let beats_best = best
                    .as_ref()
                    .is_none_or(|(_, s, _, _)| next_score.glitch_power < s.glitch_power);
                if improves && beats_best {
                    best = Some((candidate, next_score, next_buses, next_held));
                }
            }
            let Some((winner, winner_score, winner_buses, winner_held)) = best else {
                progress.iteration(&ProgressEvent {
                    iteration: iterations,
                    proposed: iter_proposed,
                    screened: iter_screened,
                    accepted: None,
                    glitch_power: score.glitch_power,
                    baseline_glitch_power: baseline.glitch_power,
                });
                break;
            };
            moves.push(AcceptedMove {
                iteration: iterations,
                kind: winner.kind,
                description: winner.rewrite.description.clone(),
                glitch_power_before: score.glitch_power,
                glitch_power_after: winner_score.glitch_power,
                latency_added: winner.rewrite.map.latency(),
            });
            progress.iteration(&ProgressEvent {
                iteration: iterations,
                proposed: iter_proposed,
                screened: iter_screened,
                accepted: moves.last(),
                glitch_power: winner_score.glitch_power,
                baseline_glitch_power: baseline.glitch_power,
            });
            map = map.compose(&winner.rewrite.map);
            current = winner.rewrite.netlist;
            buses = winner_buses;
            held = winner_held;
            score = winner_score;
            glitch_history.push(score.glitch_power);
        }

        // The headline's "at equal function": verify the reduced netlist
        // against the ORIGINAL through the composed mapping.
        let equivalence = self.verify_equivalence(netlist, &current, &map)?;

        Ok(ReduceReport {
            circuit: netlist.name().to_string(),
            iterations,
            proposed,
            screened,
            confirmed,
            moves,
            initial_glitch_power: baseline.glitch_power,
            final_glitch_power: score.glitch_power,
            initial_total_power: baseline.total_power,
            final_total_power: score.total_power,
            glitch_history,
            latency: map.latency(),
            equivalence,
            netlist: current,
            map,
        })
    }

    /// The final differential verification: configured delay model, both
    /// binary and `x_init`, through the composed mapping.
    fn verify_equivalence(
        &self,
        original: &Netlist,
        reduced: &Netlist,
        map: &NetMap,
    ) -> Result<EquivalenceReport, ReduceError> {
        let inputs: Vec<(NetId, NetId)> = original
            .inputs()
            .iter()
            .map(|&net| (net, map.new_net(net)))
            .collect();
        let outputs: Vec<(NetId, NetId)> = original
            .outputs()
            .iter()
            .map(|&net| (net, map.output_net(net)))
            .collect();
        let checker = EquivalenceChecker::new(original, reduced, inputs, outputs, map.latency())?;
        let config = self.session.config();
        let report = checker.verify(
            std::slice::from_ref(&config.delay),
            self.options.equivalence_cycles,
            config.seed,
        )?;
        if let Some(check) = report.first_failure() {
            let mismatch = check
                .outcome
                .mismatch
                .as_ref()
                .expect("failing checks carry a mismatch");
            return Err(ReduceError::NotEquivalent {
                detail: format!(
                    "delay {} (x_init={}): output `{}` at cycle {}: {:?} vs {:?}",
                    check.delay,
                    check.x_init,
                    mismatch.output,
                    mismatch.cycle,
                    mismatch.original,
                    mismatch.transformed
                ),
            });
        }
        Ok(report)
    }
}
