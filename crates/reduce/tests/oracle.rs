//! The differential equivalence oracle: random sequential netlists,
//! random *accepted* move sequences, and the claim that original and
//! reduced outputs are bit-identical over random stimulus — across the
//! unit, zero, adder-cell and custom (library-style) delay models, both
//! for binary runs and for uninitialised-flipflop `x_init` runs.
//!
//! The move words are a proptest `vec` strategy, so a counterexample
//! shrinks to a **minimal move list**: proptest drops and simplifies
//! elements until the shortest sequence that still diverges remains.

#[path = "../../sim/tests/support/mod.rs"]
#[allow(dead_code)]
mod support;

use glitch_netlist::{CellId, NetId, Netlist};
use glitch_retime::rewrite::{duplicate_driver, insert_buffer, pipeline_rewrite};
use glitch_retime::{NetMap, PipelineOptions, Rewrite};
use glitch_sim::{CellDelay, DelayKind};
use glitch_verify::EquivalenceChecker;
use proptest::prelude::*;
use support::RandomNetlist;

/// The delay matrix the oracle sweeps: the built-in models plus a custom
/// table standing in for a characterised gate library.
fn oracle_delays() -> Vec<DelayKind> {
    vec![
        DelayKind::Unit,
        DelayKind::Zero,
        DelayKind::RealisticAdderCells,
        DelayKind::Custom(CellDelay::new().with_default(3)),
    ]
}

/// Applies the move encoded by `word` to `current`, or `None` when the
/// selected site is inapplicable (skipping keeps shrinking well-behaved:
/// removing earlier words never invalidates later ones).
fn apply_word(current: &Netlist, word: u64) -> Option<Rewrite> {
    match word % 3 {
        0 => {
            let nets: Vec<NetId> = current
                .nets()
                .filter(|(_, net)| !net.loads().is_empty())
                .map(|(id, _)| id)
                .collect();
            let &net = nets.get((word >> 8) as usize % nets.len().max(1))?;
            insert_buffer(current, net).ok()
        }
        1 => {
            let cells: Vec<CellId> = current
                .combinational_cells()
                .filter(|&cell| {
                    let outs = current.cell(cell).outputs();
                    outs.len() == 1 && current.net(outs[0]).loads().len() >= 2
                })
                .collect();
            let &cell = cells.get((word >> 8) as usize % cells.len().max(1))?;
            duplicate_driver(current, cell).ok()
        }
        _ => {
            if current.dff_count() > 0 {
                return None;
            }
            let ranks = 1 + ((word >> 8) % 3) as usize;
            pipeline_rewrite(current, ranks, PipelineOptions::default()).ok()
        }
    }
}

/// Applies every applicable move in sequence, composing the mappings.
fn apply_moves(original: &Netlist, move_words: &[u64]) -> (Netlist, NetMap, Vec<String>) {
    let mut current = original.clone();
    let mut map = NetMap::identity(original);
    let mut applied = Vec::new();
    for &word in move_words {
        if let Some(rewrite) = apply_word(&current, word) {
            map = map.compose(&rewrite.map);
            applied.push(rewrite.description.clone());
            current = rewrite.netlist;
        }
    }
    (current, map, applied)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any accepted move sequence preserves the function, cycle for
    /// cycle, output for output, under every delay model and init mode.
    #[test]
    fn accepted_move_sequences_preserve_the_function(
        input_count in 1usize..5,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 2..28),
        move_words in proptest::collection::vec(0u64..u64::MAX, 0..6),
        stimulus_seed in 0u64..1_000_000,
    ) {
        let RandomNetlist { netlist, .. } = support::build_netlist(input_count, &gate_words);
        let (reduced, map, applied) = apply_moves(&netlist, &move_words);
        map.validate(&netlist, &reduced).expect("composed maps stay total");

        let inputs: Vec<(NetId, NetId)> = netlist
            .inputs()
            .iter()
            .map(|&net| (net, map.new_net(net)))
            .collect();
        let outputs: Vec<(NetId, NetId)> = netlist
            .outputs()
            .iter()
            .map(|&net| (net, map.output_net(net)))
            .collect();
        let checker = EquivalenceChecker::new(&netlist, &reduced, inputs, outputs, map.latency())
            .expect("mapped inputs stay primary inputs");
        let report = checker
            .verify(&oracle_delays(), 40, stimulus_seed)
            .expect("co-simulation settles");
        prop_assert!(
            report.passed(),
            "moves {applied:?} diverged: {:?}",
            report.first_failure()
        );
        // 4 delay models × binary + x_init.
        prop_assert_eq!(report.checks.len(), 8);
        prop_assert!(report.compared() > 0);
    }
}

/// The oracle catches what it is supposed to catch: a deliberately wrong
/// "move" (an AND standing in for an XOR, identity mapping) fails the
/// same verification the real moves pass.
#[test]
fn the_oracle_rejects_a_broken_rewrite() {
    let mut original = Netlist::new("honest");
    let a = original.add_input("a");
    let b = original.add_input("b");
    let y = original.xor2(a, b, "y");
    original.mark_output(y);

    let mut broken = Netlist::new("honest");
    let a2 = broken.add_input("a");
    let b2 = broken.add_input("b");
    let y2 = broken.and2(a2, b2, "y");
    broken.mark_output(y2);

    let checker = EquivalenceChecker::by_name(&original, &broken, 0).unwrap();
    let report = checker.verify(&oracle_delays(), 40, 7).unwrap();
    assert!(!report.passed(), "an AND is not an XOR");
    let failure = report.first_failure().unwrap();
    let mismatch = failure.outcome.mismatch.as_ref().unwrap();
    assert_eq!(mismatch.output, "y");
}
