//! Pins the reducer's headline guarantees:
//!
//! * **monotonic descent** — the reported glitch power is non-increasing
//!   across accepted iterations (each acceptance requires a strict
//!   improvement);
//! * **determinism** — the same inputs produce the same report at any
//!   worker count, bit for bit in every floating-point figure;
//! * **the CI gate** — on `mult4.blif` the default configuration lowers
//!   glitch power by at least 10% with the equivalence check passing.

use glitch_core::{AnalysisConfig, EngineKind, ReduceSession};
use glitch_io::{parse_netlist, Format, GateLibrary};
use glitch_netlist::{Bus, Netlist};
use glitch_reduce::{MoveKind, ProgressEvent, ProgressSink, ReduceOptions, ReduceReport, Reducer};

fn load(file: &str) -> Netlist {
    let path = format!("{}/../../tests/data/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(path).expect("corpus file exists");
    parse_netlist(&text, Format::Blif, &GateLibrary::standard()).expect("corpus parses")
}

fn input_buses(netlist: &Netlist) -> Vec<Bus> {
    netlist
        .inputs()
        .chunks(32)
        .map(|chunk| Bus::new(chunk.to_vec()))
        .collect()
}

fn reduce(file: &str, engine: EngineKind, jobs: usize, options: ReduceOptions) -> ReduceReport {
    let netlist = load(file);
    let buses = input_buses(&netlist);
    let session = ReduceSession::new(
        AnalysisConfig {
            cycles: 192,
            engine,
            ..AnalysisConfig::default()
        },
        vec![11, 17],
        jobs,
    );
    Reducer::new(session, options)
        .run(&netlist, &buses, &[])
        .expect("reduction runs")
}

/// Everything the report derives its claims from, in a comparable form.
fn fingerprint(report: &ReduceReport) -> Vec<String> {
    let mut lines = vec![
        format!("headline {}", report.headline()),
        format!(
            "power {:x} -> {:x}",
            report.initial_glitch_power.to_bits(),
            report.final_glitch_power.to_bits()
        ),
        format!(
            "counts {} {} {} {}",
            report.iterations, report.proposed, report.screened, report.confirmed
        ),
        format!("latency {}", report.latency),
    ];
    for value in &report.glitch_history {
        lines.push(format!("history {:x}", value.to_bits()));
    }
    for m in &report.moves {
        lines.push(format!(
            "move {} {} {} {:x}",
            m.iteration,
            m.kind,
            m.description,
            m.glitch_power_after.to_bits()
        ));
    }
    lines
}

#[test]
fn mult4_meets_the_ci_reduction_gate() {
    let report = reduce("mult4.blif", EngineKind::Queue, 2, ReduceOptions::default());
    assert!(
        report.reduction_percent() >= 10.0,
        "mult4 must lose at least 10% glitch power, got {:.1}%",
        report.reduction_percent()
    );
    assert!(report.equivalence.passed(), "equal function is mandatory");
    assert!(!report.moves.is_empty());
    assert!(report.headline().starts_with("glitch power -"));
}

#[test]
fn descent_is_monotonic_and_fully_accounted() {
    for file in ["mult4.blif", "rca4.blif"] {
        let report = reduce(file, EngineKind::Queue, 1, ReduceOptions::default());
        assert!(
            report.glitch_history.windows(2).all(|w| w[1] <= w[0]),
            "{file}: glitch power must never increase across accepted moves"
        );
        assert_eq!(report.glitch_history.len(), report.moves.len() + 1);
        assert_eq!(
            report.glitch_history[0].to_bits(),
            report.initial_glitch_power.to_bits()
        );
        assert_eq!(
            report.glitch_history.last().unwrap().to_bits(),
            report.final_glitch_power.to_bits()
        );
        assert!(report.screened <= report.proposed);
        assert!(report.confirmed <= report.screened);
        // The composed mapping stays total over the original.
        let original = load(file);
        report.map.validate(&original, &report.netlist).unwrap();
    }
}

#[test]
fn reports_are_identical_at_any_worker_count() {
    let serial = reduce("mult4.blif", EngineKind::Queue, 1, ReduceOptions::default());
    let parallel = reduce("mult4.blif", EngineKind::Queue, 4, ReduceOptions::default());
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

#[test]
fn hybrid_engine_reduces_identically_to_queue() {
    // The hybrid engine screens through the kernel and scores through the
    // pruned queue — every figure must still match the pure-queue run.
    let queue = reduce("mult4.blif", EngineKind::Queue, 2, ReduceOptions::default());
    let hybrid = reduce(
        "mult4.blif",
        EngineKind::Hybrid,
        2,
        ReduceOptions::default(),
    );
    assert_eq!(fingerprint(&queue), fingerprint(&hybrid));
}

#[test]
fn the_target_stops_the_descent_early() {
    let modest = ReduceOptions {
        target_percent: Some(5.0),
        ..ReduceOptions::default()
    };
    let report = reduce("mult4.blif", EngineKind::Queue, 2, modest);
    assert!(report.reduction_percent() >= 5.0);
    // A 5% target is met by the first accepted move here; the unbounded
    // run must not have stopped earlier than the targeted one.
    let unbounded = reduce("mult4.blif", EngineKind::Queue, 2, ReduceOptions::default());
    assert!(unbounded.moves.len() >= report.moves.len());
}

#[test]
fn progress_sink_observes_every_iteration_without_changing_the_report() {
    struct Collect(Vec<(usize, bool, u64)>);
    impl ProgressSink for Collect {
        fn iteration(&mut self, event: &ProgressEvent<'_>) {
            self.0.push((
                event.iteration,
                event.accepted.is_some(),
                event.glitch_power.to_bits(),
            ));
        }
    }
    let netlist = load("rca4.blif");
    let buses = input_buses(&netlist);
    let options = ReduceOptions {
        max_iters: 2,
        ..ReduceOptions::default()
    };
    let session = || {
        ReduceSession::new(
            AnalysisConfig {
                cycles: 192,
                engine: EngineKind::Queue,
                ..AnalysisConfig::default()
            },
            vec![11, 17],
            1,
        )
    };
    let plain = Reducer::new(session(), options.clone())
        .run(&netlist, &buses, &[])
        .expect("reduction runs");
    let mut sink = Collect(Vec::new());
    let observed = Reducer::new(session(), options)
        .run_with_progress(&netlist, &buses, &[], &mut sink)
        .expect("reduction runs");

    // One event per iteration, accepted events first, in loop order.
    assert_eq!(sink.0.len(), observed.iterations);
    assert_eq!(
        sink.0.iter().filter(|(_, accepted, _)| *accepted).count(),
        observed.moves.len()
    );
    for (event, m) in sink.0.iter().zip(&observed.moves) {
        assert_eq!(event.0, m.iteration);
        assert!(event.1);
        assert_eq!(event.2, m.glitch_power_after.to_bits());
    }
    // The sink is observe-only: both reports are identical.
    assert_eq!(fingerprint(&plain), fingerprint(&observed));
}

#[test]
fn restricted_move_sets_are_honoured() {
    let buffers_only = ReduceOptions {
        moves: vec![MoveKind::Buffer],
        max_iters: 2,
        ..ReduceOptions::default()
    };
    let report = reduce("rca4.blif", EngineKind::Queue, 2, buffers_only);
    assert!(report.moves.iter().all(|m| m.kind == MoveKind::Buffer));
    assert_eq!(report.latency, 0, "buffer moves add no latency");
    assert!(report.equivalence.passed());
}
