//! Pins the screen-backend identity: the 64-lane compiled-kernel batch
//! screen accepts and rejects **exactly** the same candidates as the
//! event-queue screen — same decision, same first-divergence message,
//! same cycle count — on the corpus circuits and on random netlists.
//!
//! This is what lets the hybrid engine batch-screen through the kernel
//! without changing any reduction result: kernel settled values equal
//! queue settled values (the kernel oracle), and both backends share the
//! stimulus generator and comparison order.

#[path = "../../sim/tests/support/mod.rs"]
#[allow(dead_code)]
mod support;

use glitch_arith::{AdderStyle, ArrayMultiplier, RippleCarryAdder};
use glitch_netlist::{CellId, NetId, Netlist};
use glitch_reduce::{screen_candidate, ScreenBackend};
use glitch_retime::{
    duplicate_driver, insert_buffer, pipeline_rewrite, NetMap, PipelineOptions, Rewrite,
};

const CYCLES: u64 = 32;
const LANES: usize = 64;
const SEED: u64 = 0x5C12_EE4D;

/// Every applicable rewrite on `netlist`, capped per kind: buffers on the
/// first nets with loads, duplicates on the first eligible drivers, and
/// (for combinational netlists) shallow pipeline ranks.
fn candidates(netlist: &Netlist) -> Vec<Rewrite> {
    let mut rewrites = Vec::new();
    let loaded: Vec<NetId> = netlist
        .nets()
        .filter(|(_, net)| !net.loads().is_empty())
        .map(|(id, _)| id)
        .collect();
    rewrites.extend(
        loaded
            .iter()
            .filter_map(|&net| insert_buffer(netlist, net).ok())
            .take(4),
    );
    let drivers: Vec<CellId> = netlist
        .combinational_cells()
        .filter(|&cell| {
            let outs = netlist.cell(cell).outputs();
            outs.len() == 1 && netlist.net(outs[0]).loads().len() >= 2
        })
        .collect();
    rewrites.extend(
        drivers
            .iter()
            .filter_map(|&cell| duplicate_driver(netlist, cell).ok())
            .take(4),
    );
    if netlist.dff_count() == 0 {
        rewrites.extend([1usize, 2, 3].iter().filter_map(|&ranks| {
            pipeline_rewrite(netlist, ranks, PipelineOptions::default()).ok()
        }));
    }
    rewrites
}

fn assert_backends_agree(netlist: &Netlist, rewrite: &Rewrite, expect_accept: bool) {
    let kernel = screen_candidate(netlist, rewrite, ScreenBackend::Kernel, CYCLES, LANES, SEED)
        .expect("kernel screen runs");
    let queue = screen_candidate(netlist, rewrite, ScreenBackend::Queue, CYCLES, LANES, SEED)
        .expect("queue screen runs");
    assert_eq!(
        kernel,
        queue,
        "`{}` on `{}`: the backends must return identical outcomes",
        rewrite.description,
        netlist.name()
    );
    assert_eq!(
        kernel.accepted,
        expect_accept,
        "`{}` on `{}`: wrong decision ({:?})",
        rewrite.description,
        netlist.name(),
        kernel.mismatch
    );
}

#[test]
fn backends_accept_the_same_moves_on_the_corpus() {
    let corpus: Vec<Netlist> = vec![
        RippleCarryAdder::new(4, AdderStyle::Gates).netlist,
        RippleCarryAdder::new(6, AdderStyle::CompoundCell).netlist,
        ArrayMultiplier::new(3, AdderStyle::Gates).netlist,
    ];
    let mut screened = 0usize;
    for netlist in &corpus {
        for rewrite in candidates(netlist) {
            assert_backends_agree(netlist, &rewrite, true);
            screened += 1;
        }
    }
    assert!(
        screened >= 12,
        "the corpus must exercise a real move set, got {screened}"
    );
}

#[test]
fn backends_accept_the_same_moves_on_random_netlists() {
    for seed in 0u64..6 {
        let words: Vec<u64> = (0..20)
            .map(|i| {
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i * 0x0123_4567_89AB_CDEF)
            })
            .collect();
        let built = support::build_netlist(2 + (seed as usize % 3), &words);
        for rewrite in candidates(&built.netlist) {
            assert_backends_agree(&built.netlist, &rewrite, true);
        }
    }
}

/// A deliberately broken "move" — the same shape with an AND where the
/// XOR belongs — must be rejected by **both** backends, with the same
/// divergence location and the same early-exit cycle count.
#[test]
fn backends_reject_a_broken_rewrite_identically() {
    let mut original = Netlist::new("sum_bit");
    let a = original.add_input("a");
    let b = original.add_input("b");
    let y = original.xor2(a, b, "y");
    original.mark_output(y);

    // Built in the same order, so net ids line up and the identity map
    // is total over both netlists.
    let mut broken = Netlist::new("sum_bit");
    let a2 = broken.add_input("a");
    let b2 = broken.add_input("b");
    let y2 = broken.and2(a2, b2, "y");
    broken.mark_output(y2);
    assert_eq!((a, b, y), (a2, b2, y2));

    let rewrite = Rewrite {
        map: NetMap::identity(&original),
        netlist: broken,
        description: "and2 masquerading as xor2".to_string(),
    };
    let kernel = screen_candidate(
        &original,
        &rewrite,
        ScreenBackend::Kernel,
        CYCLES,
        LANES,
        SEED,
    )
    .unwrap();
    let queue = screen_candidate(
        &original,
        &rewrite,
        ScreenBackend::Queue,
        CYCLES,
        LANES,
        SEED,
    )
    .unwrap();
    assert_eq!(kernel, queue);
    assert!(!kernel.accepted);
    let mismatch = kernel.mismatch.expect("rejections carry a location");
    assert!(
        mismatch.contains("output `y`"),
        "divergence must be located: {mismatch}"
    );
    assert!(kernel.cycles < CYCLES, "rejections exit early");
}
