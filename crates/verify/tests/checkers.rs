//! Integration tests of the verification subsystem: each checker against
//! hand-built circuits with known behaviour, plus the two determinism
//! guarantees — shard merges are bit-identical at any worker count, and
//! incremental (`--flip`-style) runs produce the same report as full
//! re-simulation of the merged stimulus.

use glitch_netlist::{DffInit, NetId, Netlist};
use glitch_sim::{
    DeltaStimulus, IncrementalSession, InputAssignment, MergeableProbe, ParallelRunner, Probe,
    SimJob, SimOptions, SimSession, XEval,
};
use glitch_verify::{
    BudgetSpec, BudgetTarget, BudgetValue, CheckSuite, CheckerProbe, CycleFilter, Verdict,
    VerifyReport,
};

/// A circuit with one uninitialised flipflop feeding an XOR to output
/// `bad`, and one properly reset flipflop feeding an AND to output `good`.
fn xinit_circuit() -> (Netlist, NetId) {
    let mut nl = Netlist::new("xinit");
    let d = nl.add_input("d");
    let en = nl.add_input("en");
    let q_bad = nl.dff(d, "q_bad"); // DontCare init -> X under x-init
    let q_good = nl.dff_with_init(d, "q_good", DffInit::Zero);
    let bad = nl.xor2(en, q_bad, "bad");
    let good = nl.xor2(en, q_good, "good");
    nl.mark_output(bad);
    nl.mark_output(good);
    (nl, d)
}

fn toggling(inputs: &[NetId], cycles: u64) -> Vec<InputAssignment> {
    (0..cycles)
        .map(|c| {
            let mut a = InputAssignment::new();
            for (i, &net) in inputs.iter().enumerate() {
                a.set(net, (c + i as u64).is_multiple_of(2));
            }
            a
        })
        .collect()
}

fn check_once(nl: &Netlist, suite: &CheckSuite, options: SimOptions, cycles: u64) -> VerifyReport {
    let inputs = nl.inputs().to_vec();
    let report = SimSession::new(nl)
        .options(options)
        .stimulus(toggling(&inputs, cycles))
        .probe(suite.build())
        .run()
        .unwrap();
    report.probe::<CheckerProbe>().unwrap().report(nl)
}

#[test]
fn xprop_flags_the_uninitialised_output_and_clears_the_reset_one() {
    let (nl, _) = xinit_circuit();
    let suite = CheckSuite::new().with_x_propagation();
    let report = check_once(&nl, &suite, SimOptions::x_init(), 8);
    assert!(!report.passed());
    let xprop = report.outcome("x-propagation").unwrap();
    assert_eq!(xprop.verdict, Verdict::Fail);
    // Exactly one output (`bad`) sees X; the reset path stays clean. The
    // XOR feedback-free pipeline keeps it X every cycle of the run.
    assert_eq!(xprop.metric("outputs_ever_x"), Some(1));
    assert_eq!(xprop.total_violations, 1);
    let violation = xprop.violations[0];
    assert_eq!(nl.net(violation.net).name(), "bad");
    assert_eq!(violation.cycle, 0, "unknown from the first cycle end");
    // q_bad flushes after one sample, so `bad` clears from cycle 1 on:
    // it spends exactly one cycle end unknown.
    assert_eq!(violation.time, 1);
    assert_eq!(xprop.metric("x_cleared"), Some(1));
    assert!(xprop.summary.contains("bad"), "{}", xprop.summary);

    // Under the default reset policy (all flipflops settle to 0) the same
    // circuit is clean.
    let clean = check_once(&nl, &suite, SimOptions::default(), 8);
    assert!(clean.passed());
    let xprop = clean.outcome("x-propagation").unwrap();
    assert_eq!(xprop.metric("outputs_ever_x"), Some(0));
    assert_eq!(xprop.metric("x_clear_cycle"), Some(0));
}

#[test]
fn xprop_reports_stuck_x_when_feedback_never_flushes() {
    // q feeds itself through an XOR: q' = q ^ d. Starting X, the state can
    // never become known — the bug x-init simulation exists to find.
    let mut nl = Netlist::new("stuck");
    let d = nl.add_input("d");
    let q = nl.add_net("q");
    let fb = nl.xor2(q, d, "fb");
    nl.add_cell(glitch_netlist::CellKind::Dff, "ff", vec![fb], vec![q])
        .unwrap();
    let y = nl.xor2(q, d, "y");
    nl.mark_output(y);
    let suite = CheckSuite::new().with_x_propagation();
    let report = check_once(&nl, &suite, SimOptions::x_init(), 12);
    let xprop = report.outcome("x-propagation").unwrap();
    assert_eq!(xprop.verdict, Verdict::Fail);
    assert_eq!(xprop.metric("x_cleared"), Some(0), "X never clears");
    assert!(xprop.metric("stuck_x_nets").unwrap() > 0);
    assert!(xprop.summary.contains("saw X"), "{}", xprop.summary);
}

#[test]
fn settle_budget_locates_late_transitions() {
    // A 5-deep inverter chain: the last net settles at t=5 under unit
    // delay. A budget of 3 on everything must flag the two last stages,
    // with exact locations.
    let mut nl = Netlist::new("chain");
    let a = nl.add_input("a");
    let mut cur = a;
    for i in 0..5 {
        cur = nl.inv(cur, &format!("n{i}"));
    }
    nl.mark_output(cur);
    let budgets = BudgetSpec::new()
        .with(BudgetTarget::All, BudgetValue::Units(3))
        .resolve(&nl)
        .unwrap();
    let suite = CheckSuite::new().with_budgets(budgets);
    let report = check_once(&nl, &suite, SimOptions::default(), 4);
    let budget = report.outcome("settle-budget").unwrap();
    assert_eq!(budget.verdict, Verdict::Fail);
    // Cycles 1..3 toggle `a` (cycle 0 is X-initialisation, whose changes
    // also count as settling activity): nets n3 (t=4) and n4 (t=5) are
    // late every cycle.
    assert_eq!(budget.metric("nets_over_budget"), Some(2));
    assert_eq!(budget.metric("worst_excess"), Some(2));
    assert_eq!(budget.metric("max_settle_time"), Some(5));
    let worst = budget
        .violations
        .iter()
        .find(|v| nl.net(v.net).name() == "n4")
        .expect("the output stage is late");
    assert_eq!(worst.time, 5);
    assert_eq!(worst.budget, 3);

    // `*=cycle` resolves to the combinational depth (5), which this chain
    // exactly meets — no violation.
    let relaxed = BudgetSpec::parse_list("*=cycle")
        .unwrap()
        .resolve(&nl)
        .unwrap();
    let report = check_once(
        &nl,
        &CheckSuite::new().with_budgets(relaxed),
        SimOptions::default(),
        4,
    );
    assert!(report.passed());
}

#[test]
fn budget_checker_reports_retained_and_dropped_past_the_cap() {
    // A pathological run: budget 0 on a 5-deep chain makes every stage a
    // violation every toggling cycle, far past the retention cap. The full
    // count, the retained count and the dropped count must all be honest.
    let mut nl = Netlist::new("cap");
    let a = nl.add_input("a");
    let mut cur = a;
    for i in 0..5 {
        cur = nl.inv(cur, &format!("n{i}"));
    }
    nl.mark_output(cur);
    let budgets = BudgetSpec::new()
        .with(BudgetTarget::All, BudgetValue::Units(0))
        .resolve(&nl)
        .unwrap();
    let suite = CheckSuite::new().with_budgets(budgets).with_timing();
    let report = check_once(&nl, &suite, SimOptions::default(), 40);
    let budget = report.outcome("settle-budget").unwrap();
    assert_eq!(budget.verdict, Verdict::Fail);
    let cap = glitch_verify::VIOLATION_CAP as u64;
    assert!(
        budget.total_violations > cap,
        "the run must overflow the cap"
    );
    assert_eq!(budget.violations.len() as u64, cap);
    assert_eq!(budget.metric("violations_retained"), Some(cap));
    assert_eq!(
        budget.metric("violations_dropped"),
        Some(budget.total_violations - cap)
    );
    assert!(
        budget.summary.contains("dropped past the cap"),
        "{}",
        budget.summary
    );
    assert_eq!(report.retained_violations(), cap);
    assert_eq!(report.dropped_violations(), budget.total_violations - cap);
}

#[test]
fn timed_probes_accumulate_checker_wall_time_without_changing_verdicts() {
    let (nl, _) = xinit_circuit();
    let suite = CheckSuite::new().with_x_propagation().with_hazards();
    let inputs = nl.inputs().to_vec();
    let run = |timed: bool| {
        let suite = if timed {
            suite.clone().with_timing()
        } else {
            suite.clone()
        };
        let report = SimSession::new(&nl)
            .options(SimOptions::x_init())
            .stimulus(toggling(&inputs, 64))
            .probe(suite.build())
            .run()
            .unwrap();
        let probe = report.probe::<CheckerProbe>().unwrap();
        (probe.report(&nl), probe.checker_micros())
    };
    let (timed_report, timed_micros) = run(true);
    let (plain_report, plain_micros) = run(false);
    // Verdicts and evidence are identical; only the telemetry differs.
    assert_eq!(timed_report, plain_report);
    assert_eq!(timed_micros.len(), 2);
    assert_eq!(timed_micros[0].0, "x-propagation");
    assert_eq!(timed_micros[1].0, "hazard");
    assert!(plain_micros.iter().all(|&(_, micros)| micros == 0));
}

#[test]
fn budget_spec_parsing_resolution_and_precedence() {
    let mut nl = Netlist::new("spec");
    let a = nl.add_input("a");
    let y = nl.inv(a, "y");
    let z = nl.inv(y, "z");
    nl.mark_output(z);

    // File form with comments; CLI list appended afterwards overrides.
    let mut spec =
        BudgetSpec::parse_file("# settle budgets\n\"*\" = 9\n\ny = 4   # the mid net\n").unwrap();
    spec.extend(BudgetSpec::parse_list("outputs=7,y=5").unwrap());
    let resolved = spec.resolve(&nl).unwrap();
    assert_eq!(resolved.budget(a), Some(9), "catch-all");
    assert_eq!(resolved.budget(z), Some(7), "outputs beats *");
    assert_eq!(
        resolved.budget(y),
        Some(5),
        "named net beats both; last wins"
    );
    assert_eq!(resolved.budgeted_count(), nl.net_count());

    // Errors are located.
    assert!(BudgetSpec::parse_list("y=abc").is_err());
    assert!(BudgetSpec::parse_list("nope").is_err());
    let unknown = BudgetSpec::parse_list("ghost=3").unwrap().resolve(&nl);
    assert!(matches!(
        unknown,
        Err(glitch_verify::BudgetError::UnknownNet(name)) if name == "ghost"
    ));
}

#[test]
fn hazard_checker_classifies_static_and_counts_nothing_at_zero_delay() {
    // y = a XOR delayed(b): flipping both inputs together glitches y — a
    // static hazard (equal endpoints, two transitions).
    let mut nl = Netlist::new("hazard");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let mut cur = b;
    for i in 0..3 {
        cur = nl.inv(cur, &format!("i{i}"));
    }
    let y = nl.xor2(a, cur, "y");
    nl.mark_output(y);
    let stimulus = vec![
        InputAssignment::new().with(a, false).with(b, false),
        InputAssignment::new().with(a, true).with(b, true),
        InputAssignment::new().with(a, false).with(b, false),
    ];
    let suite = CheckSuite::new().with_hazards();
    let run = |options: SimOptions| {
        let report = SimSession::new(&nl)
            .options(options)
            .stimulus(stimulus.clone())
            .probe(suite.build())
            .run()
            .unwrap();
        report.probe::<CheckerProbe>().unwrap().report(&nl)
    };
    let report = run(SimOptions::default());
    let hazard = report.outcome("hazard").unwrap();
    assert_eq!(hazard.verdict, Verdict::Pass, "informational");
    let static_total = hazard.metric("static0").unwrap() + hazard.metric("static1").unwrap();
    assert!(
        static_total >= 2,
        "y glitches in cycles 1 and 2: {hazard:?}"
    );
    assert!(hazard.metric("hazard_cycles").unwrap() >= 2);
    assert!(hazard.summary.contains("hazards"), "{}", hazard.summary);
}

#[test]
fn stability_checker_watches_only_matching_cycles() {
    let mut nl = Netlist::new("stab");
    let a = nl.add_input("a");
    let y = nl.inv(a, "y");
    nl.mark_output(y);
    // y toggles every cycle; watching cycles 2..=3 must flag exactly 2.
    let suite = CheckSuite::new().with_stability(y, CycleFilter::Range { from: 2, to: 3 });
    let report = check_once(&nl, &suite, SimOptions::default(), 6);
    let stab = report.outcome("stability").unwrap();
    assert_eq!(stab.verdict, Verdict::Fail);
    assert_eq!(stab.total_violations, 2);
    assert_eq!(stab.metric("watched_cycles"), Some(2));
    assert!(stab.violations.iter().all(|v| (2..=3).contains(&v.cycle)));

    // A quiet net passes under CycleFilter::All.
    let mut quiet_nl = Netlist::new("quiet");
    let b = quiet_nl.add_input("b");
    let held = quiet_nl.inv(b, "held");
    quiet_nl.mark_output(held);
    let suite = CheckSuite::new().with_stability(held, CycleFilter::All);
    let inputs = vec![InputAssignment::new().with(b, true); 5];
    let report = SimSession::new(&quiet_nl)
        .stimulus(inputs)
        .probe(suite.build())
        .run()
        .unwrap();
    let report = report.probe::<CheckerProbe>().unwrap().report(&quiet_nl);
    assert!(report.passed());
}

/// The full suite on the x-init circuit, sharded across seeds.
fn sharded_report(nl: &Netlist, seeds: &[u64], workers: usize) -> VerifyReport {
    let budgets = BudgetSpec::parse_list("*=cycle")
        .unwrap()
        .resolve(nl)
        .unwrap();
    let outputs: Vec<NetId> = nl.outputs().to_vec();
    let suite = CheckSuite::new()
        .with_x_propagation()
        .with_budgets(budgets)
        .with_hazards()
        .with_stability(outputs[0], CycleFilter::Range { from: 3, to: 4 });
    let buses: Vec<glitch_netlist::Bus> = vec![glitch_netlist::Bus::new(nl.inputs().to_vec())];
    let jobs: Vec<SimJob<'_>> = seeds
        .iter()
        .map(|&seed| SimJob::new(nl, buses.clone(), 40, seed).with_options(SimOptions::x_init()))
        .collect();
    let factory = |_: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(suite.build())] };
    let mut reports = ParallelRunner::new(workers)
        .run_sessions_with(&jobs, &factory)
        .unwrap();
    let mut merged = CheckerProbe::default();
    for report in &mut reports {
        merged.merge(report.take_probe::<CheckerProbe>().unwrap());
    }
    merged.report(nl)
}

#[test]
fn sharded_verdicts_are_bit_identical_at_any_worker_count() {
    let (nl, _) = xinit_circuit();
    let seeds = [11u64, 22, 33, 44, 55];
    let serial = sharded_report(&nl, &seeds, 1);
    for workers in [2, 4, 8] {
        assert_eq!(
            sharded_report(&nl, &seeds, workers),
            serial,
            "worker count {workers} changed the report"
        );
    }
    // The merged x-propagation outcome aggregates every shard.
    let xprop = serial.outcome("x-propagation").unwrap();
    assert_eq!(xprop.metric("cycles"), Some(5 * 40));
    assert_eq!(xprop.metric("outputs_ever_x"), Some(1));
}

#[test]
fn incremental_check_is_bit_identical_to_full_resimulation() {
    let (nl, d) = xinit_circuit();
    let inputs = nl.inputs().to_vec();
    let stimulus = toggling(&inputs, 30);
    let budgets = BudgetSpec::parse_list("*=cycle")
        .unwrap()
        .resolve(&nl)
        .unwrap();
    let suite = CheckSuite::new()
        .with_x_propagation()
        .with_budgets(budgets)
        .with_hazards();
    let options = SimOptions {
        x_eval: XEval::TriTable,
        ..SimOptions::default()
    };

    let (_, baseline) = SimSession::new(&nl)
        .options(options)
        .stimulus(stimulus.clone())
        .probe(suite.build())
        .record_baseline()
        .unwrap();

    let delta = DeltaStimulus::new().set(12, d, false).set(13, d, true);
    let incremental = IncrementalSession::new(&nl, &baseline)
        .probe(suite.build())
        .delta(delta.clone())
        .run()
        .unwrap();
    assert!(
        incremental.stats().replayed_cycles >= 20,
        "most cycles replay: {:?}",
        incremental.stats()
    );
    let incremental_report = incremental
        .session()
        .probe::<CheckerProbe>()
        .unwrap()
        .report(&nl);

    let merged: Vec<InputAssignment> = stimulus
        .iter()
        .enumerate()
        .map(|(c, base)| delta.apply_to(c as u64, base))
        .collect();
    let full = SimSession::new(&nl)
        .options(options)
        .stimulus(merged)
        .probe(suite.build())
        .run()
        .unwrap();
    let full_report = full.probe::<CheckerProbe>().unwrap().report(&nl);

    assert_eq!(incremental_report, full_report);
}

#[test]
fn merging_mismatched_checker_probes_panics() {
    let (nl, _) = xinit_circuit();
    let xprop_only = CheckSuite::new().with_x_propagation();
    let hazards_only = CheckSuite::new().with_hazards();
    let run = |suite: &CheckSuite| {
        let report = SimSession::new(&nl)
            .stimulus(toggling(nl.inputs(), 2))
            .probe(suite.build())
            .run()
            .unwrap();
        let mut report = report;
        report.take_probe::<CheckerProbe>().unwrap()
    };
    let mut a = run(&xprop_only);
    let b = run(&hazards_only);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(b)));
    assert!(
        result.is_err(),
        "mismatched checker lists must not merge silently"
    );
}
