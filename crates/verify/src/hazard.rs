//! Hazard classification: static-0, static-1 and dynamic hazards per net
//! per cycle, read off the transition stream.
//!
//! The taxonomy is the classic one:
//!
//! * **static-1 hazard** — the net starts and ends the cycle at `1` but
//!   dips through `0` in between (`1 → 0 → 1`: two or more transitions,
//!   equal endpoints);
//! * **static-0 hazard** — dual (`0 → 1 → 0`);
//! * **dynamic hazard** — the net changes level but takes extra round
//!   trips doing it (`0 → 1 → 0 → 1`: three or more transitions, unequal
//!   endpoints).
//!
//! Hazards are glitches seen from the settling perspective — every static
//! hazard is a complete glitch in the paper's counting, and a dynamic
//! hazard contains one. The checker is informational (its verdict is
//! always pass): the numbers feed the same reduction arguments as the
//! activity report, but located per net per cycle rather than as run
//! totals. Cycle-0 initialisation out of `X` is excluded — a hazard needs
//! a known starting level.

use glitch_netlist::{NetId, Netlist};
use glitch_sim::{CycleStats, MergeableProbe, Probe, Transition, Value};

use crate::checker::{downcast_checker, CheckOutcome, Checker, Verdict};

/// Counts static and dynamic hazards per net per cycle; see the module
/// docs.
#[derive(Debug, Clone, Default)]
pub struct HazardChecker {
    /// Rolling current value of every net.
    values: Vec<Value>,
    /// Value the net held when its first switching transition of the
    /// cycle fired (generation-stamped).
    start: Vec<Value>,
    /// Switching transitions of the net this cycle.
    count: Vec<u32>,
    stamp: Vec<u64>,
    touched: Vec<NetId>,
    current_cycle: u64,
    static0: u64,
    static1: u64,
    dynamic: u64,
    /// Cycles with at least one hazard.
    hazard_cycles: u64,
    /// Hazards per net, for the worst-net summary.
    per_net: Vec<u64>,
    cycles: u64,
}

impl HazardChecker {
    /// Creates a hazard checker; sizing happens at run start.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Static-0, static-1 and dynamic hazard totals.
    #[must_use]
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.static0, self.static1, self.dynamic)
    }

    /// Hazards recorded on one net.
    #[must_use]
    pub fn hazards_on(&self, net: NetId) -> u64 {
        self.per_net.get(net.index()).copied().unwrap_or(0)
    }
}

impl Checker for HazardChecker {
    fn name(&self) -> &'static str {
        "hazard"
    }

    fn on_run_start(&mut self, netlist: &Netlist) {
        let n = netlist.net_count();
        self.values = vec![Value::X; n];
        self.start = vec![Value::X; n];
        self.count = vec![0; n];
        self.stamp = vec![0; n];
        self.per_net = vec![0; n];
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.current_cycle = cycle;
        self.touched.clear();
    }

    fn on_transition(&mut self, transition: &Transition) {
        let idx = transition.net.index();
        let old = self.values[idx];
        self.values[idx] = transition.value;
        if !transition.kind.is_switching() {
            return;
        }
        if self.stamp[idx] != self.current_cycle + 1 {
            self.stamp[idx] = self.current_cycle + 1;
            self.start[idx] = old;
            self.count[idx] = 0;
            self.touched.push(transition.net);
        }
        self.count[idx] += 1;
    }

    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {
        let mut any = false;
        for &net in &self.touched {
            let idx = net.index();
            let (start, end, count) = (self.start[idx], self.values[idx], self.count[idx]);
            // Switching transitions have known endpoints by definition, but
            // the pre-cycle level can still be X (first assignment).
            if !start.is_known() {
                continue;
            }
            let hazard = if start == end && count >= 2 {
                match start {
                    Value::One => {
                        self.static1 += 1;
                        true
                    }
                    Value::Zero => {
                        self.static0 += 1;
                        true
                    }
                    Value::X => unreachable!("known start checked above"),
                }
            } else if start != end && count >= 3 {
                self.dynamic += 1;
                true
            } else {
                false
            };
            if hazard {
                self.per_net[idx] += 1;
                any = true;
            }
        }
        if any {
            self.hazard_cycles += 1;
        }
        self.touched.clear();
        self.cycles += 1;
    }

    fn outcome(&self, netlist: &Netlist) -> CheckOutcome {
        let total = self.static0 + self.static1 + self.dynamic;
        let worst = self
            .per_net
            .iter()
            .enumerate()
            .max_by_key(|&(_, &h)| h)
            .filter(|&(_, &h)| h > 0);
        let summary = match worst {
            None => "no hazards observed".to_string(),
            Some((idx, &h)) => format!(
                "{total} hazards in {} of {} cycles ({} static-0, {} static-1, \
                 {} dynamic); worst net `{}` with {h}",
                self.hazard_cycles,
                self.cycles,
                self.static0,
                self.static1,
                self.dynamic,
                netlist.net(NetId::from_index(idx)).name(),
            ),
        };
        CheckOutcome {
            checker: self.name().to_string(),
            // Classification is informational: hazards are reduction
            // targets, not correctness violations.
            verdict: Verdict::Pass,
            violations: Vec::new(),
            total_violations: 0,
            metrics: vec![
                ("cycles".to_string(), self.cycles),
                ("static0".to_string(), self.static0),
                ("static1".to_string(), self.static1),
                ("dynamic".to_string(), self.dynamic),
                ("hazard_cycles".to_string(), self.hazard_cycles),
            ],
            summary,
        }
    }

    fn merge_boxed(&mut self, other: Box<dyn Checker>) {
        let other: HazardChecker = downcast_checker(other);
        if other.values.is_empty() {
            return;
        }
        if self.values.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "cannot merge hazard checkers of different netlists"
        );
        self.static0 += other.static0;
        self.static1 += other.static1;
        self.dynamic += other.dynamic;
        self.hazard_cycles += other.hazard_cycles;
        self.cycles += other.cycles;
        for (mine, theirs) in self.per_net.iter_mut().zip(&other.per_net) {
            *mine += theirs;
        }
    }
}

/// A standalone [`Probe`] adapter for one [`HazardChecker`].
///
/// [`crate::CheckerProbe`] runs whole suites but does not hand back its
/// inner checkers — the right shape for pass/fail reporting, and the wrong
/// one for consumers that want the per-net hazard *counts* as data (the
/// reduction loop ranks candidate nets by them). `HazardProbe` attaches a
/// single hazard checker to any session, merges across shards in shard
/// order exactly like the suite path, and exposes the checker directly.
#[derive(Debug, Clone, Default)]
pub struct HazardProbe {
    checker: HazardChecker,
}

impl HazardProbe {
    /// Creates a probe around a fresh [`HazardChecker`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The wrapped checker, for reading totals and per-net counts.
    #[must_use]
    pub fn checker(&self) -> &HazardChecker {
        &self.checker
    }

    /// Per-net hazard counts, index-aligned with the netlist's nets.
    #[must_use]
    pub fn per_net(&self) -> &[u64] {
        &self.checker.per_net
    }
}

impl Probe for HazardProbe {
    fn on_run_start(&mut self, netlist: &Netlist) {
        self.checker.on_run_start(netlist);
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.checker.on_cycle_start(cycle);
    }

    fn on_transition(&mut self, transition: &Transition) {
        self.checker.on_transition(transition);
    }

    fn on_cycle_end(&mut self, cycle: u64, stats: &CycleStats) {
        self.checker.on_cycle_end(cycle, stats);
    }

    fn on_run_end(&mut self, netlist: &Netlist) {
        self.checker.on_run_end(netlist);
    }
}

impl MergeableProbe for HazardProbe {
    fn merge(&mut self, other: HazardProbe) {
        self.checker.merge_boxed(Box::new(other.checker));
    }
}
