//! Differential functional equivalence: co-simulating an original netlist
//! against a transformed one through an explicit net mapping.
//!
//! This is the machine-checked half of every "glitch power −N% **at equal
//! function**" claim: the reduction loop may only accept a move if the
//! rewritten netlist, driven with the *same* stimulus through the move's
//! input mapping, produces **cycle-accurate identical output values**
//! through the output mapping — shifted by the rewrite's added latency,
//! under any delay model, and including three-valued `x_init` runs where
//! uninitialised flipflops power on `X`.
//!
//! The check is differential, not symbolic: both netlists run through the
//! event-driven [`ClockedSimulator`] on seeded random stimulus, so a
//! passing verdict is a statement about the compared cycles (like the
//! repo's other oracles), and any mismatch comes back located — output,
//! cycle, both values — ready for shrinking.

use std::collections::VecDeque;

use glitch_netlist::{Bus, NetId, Netlist};
use glitch_sim::{
    ClockedSimulator, DelayKind, InputAssignment, RandomStimulus, SimError, SimOptions, Value,
};

/// Maximum input-bus width the stimulus generator is fed — mirrors the
/// CLI's bus chunking so equivalence runs see the same shape of stimulus
/// as analysis runs.
const STIMULUS_BUS_WIDTH: usize = 32;

/// Ways an equivalence-checker construction can be rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EquivalenceError {
    /// An original primary input has no counterpart mapped.
    InputNotMapped(String),
    /// A mapped input pair does not land on a primary input of the
    /// transformed netlist.
    NotAnInput(String),
    /// An original primary output has no observation point mapped.
    OutputNotMapped(String),
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::InputNotMapped(name) => {
                write!(f, "primary input `{name}` has no mapped counterpart")
            }
            EquivalenceError::NotAnInput(name) => write!(
                f,
                "`{name}` is mapped onto a net that is not a primary input of the transformed netlist"
            ),
            EquivalenceError::OutputNotMapped(name) => {
                write!(f, "primary output `{name}` has no mapped observation point")
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// One located disagreement between the two netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceMismatch {
    /// Name of the original primary output that diverged.
    pub output: String,
    /// The (original-side) cycle whose value diverged.
    pub cycle: u64,
    /// What the original netlist produced.
    pub original: Value,
    /// What the transformed netlist produced `latency` cycles later.
    pub transformed: Value,
}

/// The result of one co-simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceOutcome {
    /// Cycles simulated on each side.
    pub cycles: u64,
    /// Output values compared (outputs × compared cycles).
    pub compared: u64,
    /// The first mismatch, if any; `None` is a pass.
    pub mismatch: Option<EquivalenceMismatch>,
}

impl EquivalenceOutcome {
    /// `true` when no mismatch was observed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// One entry of an [`EquivalenceReport`]: which configuration ran and what
/// it found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceCheck {
    /// Stable delay-model label (`unit`, `zero`, `adder`, `custom`).
    pub delay: String,
    /// Whether the run used [`SimOptions::x_init`].
    pub x_init: bool,
    /// The run's outcome.
    pub outcome: EquivalenceOutcome,
}

/// The outcome of [`EquivalenceChecker::verify`]: one check per
/// (delay model × init mode) combination, in a deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// All runs, delay-major, binary before `x_init`.
    pub checks: Vec<EquivalenceCheck>,
}

impl EquivalenceReport {
    /// `true` when every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.outcome.passed())
    }

    /// Total output values compared across all checks.
    #[must_use]
    pub fn compared(&self) -> u64 {
        self.checks.iter().map(|c| c.outcome.compared).sum()
    }

    /// The first failing check, if any.
    #[must_use]
    pub fn first_failure(&self) -> Option<&EquivalenceCheck> {
        self.checks.iter().find(|c| !c.outcome.passed())
    }
}

/// The stable label for a delay model in equivalence reports.
#[must_use]
pub fn delay_label(delay: &DelayKind) -> &'static str {
    match delay {
        DelayKind::Unit => "unit",
        DelayKind::Zero => "zero",
        DelayKind::RealisticAdderCells => "adder",
        DelayKind::Custom(_) => "custom",
    }
}

/// Co-simulates two netlists through a net mapping; see the module docs.
#[derive(Debug, Clone)]
pub struct EquivalenceChecker<'a> {
    original: &'a Netlist,
    transformed: &'a Netlist,
    inputs: Vec<(NetId, NetId)>,
    outputs: Vec<(NetId, NetId)>,
    latency: usize,
}

impl<'a> EquivalenceChecker<'a> {
    /// Builds a checker from explicit input/output pairs (original net,
    /// transformed net) and the transform's added latency in cycles.
    ///
    /// # Errors
    ///
    /// Rejects mappings that miss an original primary input or output, or
    /// that map an input onto a non-input of the transformed netlist.
    pub fn new(
        original: &'a Netlist,
        transformed: &'a Netlist,
        inputs: Vec<(NetId, NetId)>,
        outputs: Vec<(NetId, NetId)>,
        latency: usize,
    ) -> Result<Self, EquivalenceError> {
        for &input in original.inputs() {
            let Some(&(_, mapped)) = inputs.iter().find(|&&(old, _)| old == input) else {
                return Err(EquivalenceError::InputNotMapped(
                    original.net(input).name().to_string(),
                ));
            };
            if !transformed.net(mapped).is_primary_input() {
                return Err(EquivalenceError::NotAnInput(
                    original.net(input).name().to_string(),
                ));
            }
        }
        for &output in original.outputs() {
            if !outputs.iter().any(|&(old, _)| old == output) {
                return Err(EquivalenceError::OutputNotMapped(
                    original.net(output).name().to_string(),
                ));
            }
        }
        Ok(EquivalenceChecker {
            original,
            transformed,
            inputs,
            outputs,
            latency,
        })
    }

    /// Builds the identity mapping by net name — the common case of a
    /// rewrite that preserves primary input/output names (all the rebuild
    /// moves do).
    ///
    /// # Errors
    ///
    /// As for [`EquivalenceChecker::new`], with a missing name reported as
    /// an unmapped net.
    pub fn by_name(
        original: &'a Netlist,
        transformed: &'a Netlist,
        latency: usize,
    ) -> Result<Self, EquivalenceError> {
        let mut inputs = Vec::with_capacity(original.inputs().len());
        for &input in original.inputs() {
            let name = original.net(input).name();
            let mapped = transformed
                .find_net(name)
                .ok_or_else(|| EquivalenceError::InputNotMapped(name.to_string()))?;
            inputs.push((input, mapped));
        }
        let mut outputs = Vec::with_capacity(original.outputs().len());
        for &output in original.outputs() {
            let name = original.net(output).name();
            let mapped = transformed
                .find_net(name)
                .ok_or_else(|| EquivalenceError::OutputNotMapped(name.to_string()))?;
            outputs.push((output, mapped));
        }
        Self::new(original, transformed, inputs, outputs, latency)
    }

    /// The added latency the comparison compensates for.
    #[must_use]
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// The mapped input pairs, in original-input order as supplied.
    #[must_use]
    pub fn input_pairs(&self) -> &[(NetId, NetId)] {
        &self.inputs
    }

    /// The mapped output pairs.
    #[must_use]
    pub fn output_pairs(&self) -> &[(NetId, NetId)] {
        &self.outputs
    }

    /// The original's primary inputs chunked into stimulus buses.
    fn stimulus_buses(&self) -> Vec<Bus> {
        self.original
            .inputs()
            .chunks(STIMULUS_BUS_WIDTH)
            .map(|chunk| Bus::new(chunk.to_vec()))
            .collect()
    }

    /// Runs one co-simulation: `cycles` of seeded random stimulus under
    /// `delay` and `options`, comparing every mapped output every compared
    /// cycle. Stops at the first mismatch.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction/settle failures from either side.
    pub fn check(
        &self,
        delay: &DelayKind,
        cycles: u64,
        seed: u64,
        options: SimOptions,
    ) -> Result<EquivalenceOutcome, SimError> {
        let mut stimulus = RandomStimulus::new(self.stimulus_buses(), cycles, seed);
        let mut original =
            ClockedSimulator::with_options(self.original, delay.clone().into_model(), options)?;
        let mut transformed =
            ClockedSimulator::with_options(self.transformed, delay.clone().into_model(), options)?;
        let mut history: VecDeque<Vec<Value>> = VecDeque::with_capacity(self.latency + 1);
        let mut compared = 0u64;
        for cycle in 0..cycles {
            let assignment = stimulus
                .next()
                .expect("the stimulus covers the requested cycles");
            let mut mapped = InputAssignment::new();
            for &(net, value) in assignment.assignments() {
                let &(_, counterpart) = self
                    .inputs
                    .iter()
                    .find(|&&(old, _)| old == net)
                    .expect("constructor checked every input is mapped");
                mapped = mapped.with(counterpart, value);
            }
            original.step(assignment)?;
            transformed.step(mapped)?;
            history.push_back(
                self.outputs
                    .iter()
                    .map(|&(old, _)| original.net_value(old))
                    .collect(),
            );
            if cycle >= self.latency as u64 {
                let expected = history.pop_front().expect("ring holds latency+1 entries");
                for (index, &(old, new)) in self.outputs.iter().enumerate() {
                    let got = transformed.net_value(new);
                    compared += 1;
                    if got != expected[index] {
                        return Ok(EquivalenceOutcome {
                            cycles: cycle + 1,
                            compared,
                            mismatch: Some(EquivalenceMismatch {
                                output: self.original.net(old).name().to_string(),
                                cycle: cycle - self.latency as u64,
                                original: expected[index],
                                transformed: got,
                            }),
                        });
                    }
                }
            }
        }
        Ok(EquivalenceOutcome {
            cycles,
            compared,
            mismatch: None,
        })
    }

    /// The full matrix: every delay model × {binary, `x_init`}, in a
    /// deterministic order. This is the configuration the reduction loop
    /// pins its headline claim with.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation failure.
    pub fn verify(
        &self,
        delays: &[DelayKind],
        cycles: u64,
        seed: u64,
    ) -> Result<EquivalenceReport, SimError> {
        let mut checks = Vec::with_capacity(delays.len() * 2);
        for delay in delays {
            for (x_init, options) in [(false, SimOptions::default()), (true, SimOptions::x_init())]
            {
                let outcome = self.check(delay, cycles, seed, options)?;
                checks.push(EquivalenceCheck {
                    delay: delay_label(delay).to_string(),
                    x_init,
                    outcome,
                });
            }
        }
        Ok(EquivalenceReport { checks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_sim::CellDelay;

    fn xor_chain() -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.xor2(a, b, "x");
        let y = nl.xor2(x, c, "y");
        nl.mark_output(y);
        nl
    }

    #[test]
    fn a_netlist_is_equivalent_to_itself() {
        let nl = xor_chain();
        let checker = EquivalenceChecker::by_name(&nl, &nl, 0).unwrap();
        let report = checker
            .verify(
                &[
                    DelayKind::Unit,
                    DelayKind::Zero,
                    DelayKind::RealisticAdderCells,
                ],
                40,
                7,
            )
            .unwrap();
        assert!(report.passed());
        assert_eq!(report.checks.len(), 6);
        assert!(report.compared() > 0);
    }

    #[test]
    fn a_functional_difference_is_located() {
        let nl = xor_chain();
        let mut other = Netlist::new("chain");
        let a = other.add_input("a");
        let b = other.add_input("b");
        let c = other.add_input("c");
        let x = other.xor2(a, b, "x");
        // and2 instead of xor2: differs whenever x & c disagree with x ^ c.
        let y = other.and2(x, c, "y");
        other.mark_output(y);
        let checker = EquivalenceChecker::by_name(&nl, &other, 0).unwrap();
        let outcome = checker
            .check(&DelayKind::Unit, 60, 3, SimOptions::default())
            .unwrap();
        let mismatch = outcome.mismatch.expect("and is not xor");
        assert_eq!(mismatch.output, "y");
        assert_ne!(mismatch.original, mismatch.transformed);
    }

    #[test]
    fn latency_shifts_the_comparison_window() {
        let nl = xor_chain();
        // The same function behind a 2-deep register chain on the output.
        let mut piped = Netlist::new("chain_p2");
        let a = piped.add_input("a");
        let b = piped.add_input("b");
        let c = piped.add_input("c");
        let x = piped.xor2(a, b, "x");
        let y = piped.xor2(x, c, "y");
        let q = piped.dff_chain(y, 2, "y_pipe");
        piped.mark_output(q);
        let outputs = vec![(nl.find_net("y").unwrap(), q)];
        let inputs = nl
            .inputs()
            .iter()
            .map(|&i| (i, piped.find_net(nl.net(i).name()).unwrap()))
            .collect();
        let checker = EquivalenceChecker::new(&nl, &piped, inputs, outputs, 2).unwrap();
        for options in [SimOptions::default(), SimOptions::x_init()] {
            let outcome = checker.check(&DelayKind::Unit, 50, 11, options).unwrap();
            assert!(outcome.passed(), "{:?}: {:?}", options, outcome.mismatch);
        }
        // With the latency misdeclared the same pair must fail.
        let wrong = EquivalenceChecker::by_name(&nl, &nl, 0).unwrap();
        assert!(wrong
            .check(&DelayKind::Unit, 50, 11, SimOptions::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn bad_mappings_are_rejected_at_construction() {
        let nl = xor_chain();
        let mut other = Netlist::new("other");
        let p = other.add_input("p");
        let q = other.inv(p, "q");
        other.mark_output(q);
        assert!(matches!(
            EquivalenceChecker::by_name(&nl, &other, 0),
            Err(EquivalenceError::InputNotMapped(_))
        ));
        // Mapping an input onto a non-input is caught too.
        let inputs = nl.inputs().iter().map(|&i| (i, q)).collect();
        let outputs = vec![(nl.find_net("y").unwrap(), q)];
        assert!(matches!(
            EquivalenceChecker::new(&nl, &other, inputs, outputs, 0),
            Err(EquivalenceError::NotAnInput(_))
        ));
    }

    #[test]
    fn custom_delay_models_are_labelled() {
        assert_eq!(delay_label(&DelayKind::Unit), "unit");
        assert_eq!(delay_label(&DelayKind::Zero), "zero");
        assert_eq!(delay_label(&DelayKind::RealisticAdderCells), "adder");
        assert_eq!(
            delay_label(&DelayKind::Custom(CellDelay::new().with_default(2))),
            "custom"
        );
    }
}
