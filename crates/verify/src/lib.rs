//! # glitch-verify
//!
//! Three-valued (0/1/X) assertion checking over synchronous-network
//! simulations: the verification subsystem of the glitch-analysis
//! workspace.
//!
//! The paper's glitch analysis assumes every net settles cleanly within a
//! cycle and that state is initialised. Real synchronous networks violate
//! both — through uninitialised flipflops, X-propagation and nets whose
//! settle time exceeds the clock budget — and these are exactly the
//! failure modes binary circuit models silently miss (*Unfaithful Glitch
//! Propagation in Existing Binary Circuit Models*, Függer/Nowak/Schmid)
//! and that cannot be bounded away in general (*On the Glitch
//! Phenomenon*, Lamport/Palais). This crate makes the assumptions
//! checkable instead of assumed:
//!
//! * **three-valued simulation** — run sessions under
//!   [`glitch_sim::SimOptions::x_init`]: flipflops without a netlist
//!   reset value power on `X`, and cells evaluate through the monotone
//!   pessimistic tables of [`glitch_netlist::CellKind::try_evaluate_tri_into`],
//!   so uninitialised-state reachability is *simulated*;
//! * **checkers** — the object-safe [`Checker`] trait (mirroring
//!   [`glitch_sim::Probe`], mergeable across shards like
//!   [`glitch_sim::MergeableProbe`]) with built-ins:
//!   [`XPropagationChecker`] (which nets/outputs ever see `X`, first-X
//!   cycle, X-clearing depth), [`SettleBudgetChecker`] (per-net and
//!   per-cohort last-transition-time budgets with located
//!   [`Violation`] records), [`HazardChecker`] (static-0 / static-1 /
//!   dynamic hazards per net per cycle) and [`StabilityChecker`] (a net
//!   must be quiet in cycles matching a predicate);
//! * **aggregation** — [`CheckerProbe`] attaches a [`CheckSuite`]'s
//!   checkers to any session (one-pass, sharded parallel, incremental),
//!   and [`VerifyReport`] / [`Verdict`] reduce them deterministically:
//!   bit-identical at any worker count, and bit-identical between a full
//!   run and an incremental (`--flip`) run — on clean cycles the
//!   checkers replay the recorded stream verbatim, on dirty ones they
//!   re-run.
//!
//! ## Example
//!
//! ```
//! use glitch_netlist::Netlist;
//! use glitch_sim::{InputAssignment, SimOptions, SimSession};
//! use glitch_verify::CheckSuite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // q has no reset value: under x-init it powers on X, and the XOR
//! // forwards the unknown straight to the output.
//! let mut nl = Netlist::new("x_demo");
//! let d = nl.add_input("d");
//! let q = nl.dff(d, "q");
//! let y = nl.xor2(d, q, "y");
//! nl.mark_output(y);
//!
//! let suite = CheckSuite::new().with_x_propagation().with_hazards();
//! let report = SimSession::new(&nl)
//!     .options(SimOptions::x_init())
//!     .stimulus((0..4).map(|i| InputAssignment::new().with(d, i % 2 == 0)))
//!     .probe(suite.build())
//!     .run()?;
//! let verify = report
//!     .probe::<glitch_verify::CheckerProbe>()
//!     .unwrap()
//!     .report(&nl);
//! assert!(!verify.passed(), "the uninitialised state reaches the output");
//! let xprop = verify.outcome("x-propagation").unwrap();
//! assert_eq!(xprop.metric("outputs_ever_x"), Some(1));
//! # Ok(())
//! # }
//! ```

mod budget;
mod checker;
mod equivalence;
mod hazard;
mod report;
mod stability;
mod suite;
mod xprop;

pub use budget::{
    BudgetError, BudgetSpec, BudgetTarget, BudgetValue, ResolvedBudgets, SettleBudgetChecker,
};
pub use checker::{CheckOutcome, Checker, CheckerProbe, Verdict, Violation, VIOLATION_CAP};
pub use equivalence::{
    delay_label, EquivalenceCheck, EquivalenceChecker, EquivalenceError, EquivalenceMismatch,
    EquivalenceOutcome, EquivalenceReport,
};
pub use hazard::{HazardChecker, HazardProbe};
pub use report::VerifyReport;
pub use stability::{CycleFilter, StabilityChecker};
pub use suite::CheckSuite;
pub use xprop::XPropagationChecker;
