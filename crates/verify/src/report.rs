//! The [`VerifyReport`]: the deterministic aggregation of every checker's
//! outcome.

use crate::checker::{CheckOutcome, Verdict};

/// Every checker's [`CheckOutcome`], in suite order, plus the combined
/// verdict.
///
/// Reports are plain data and compare with `==`; the determinism
/// guarantees of the verification subsystem (same report at any `--jobs`
/// count, same report from full and incremental runs) are stated — and
/// tested — as report equality.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    outcomes: Vec<CheckOutcome>,
}

impl VerifyReport {
    /// Assembles a report from per-checker outcomes (in suite order).
    #[must_use]
    pub fn new(outcomes: Vec<CheckOutcome>) -> Self {
        VerifyReport { outcomes }
    }

    /// The per-checker outcomes, in suite order.
    #[must_use]
    pub fn outcomes(&self) -> &[CheckOutcome] {
        &self.outcomes
    }

    /// The combined verdict: fail if any checker failed.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        self.outcomes
            .iter()
            .fold(Verdict::Pass, |acc, o| acc.and(o.verdict))
    }

    /// `true` when every checker passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.verdict().passed()
    }

    /// Total violations across all checkers (full counts, not the
    /// retention-capped lists).
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.total_violations).sum()
    }

    /// Violations retained as located records across all checkers (at most
    /// [`crate::VIOLATION_CAP`] each).
    #[must_use]
    pub fn retained_violations(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.violations.len() as u64)
            .sum()
    }

    /// Violations counted but dropped past the retention cap — the honest
    /// "and N more" figure for pathological runs.
    #[must_use]
    pub fn dropped_violations(&self) -> u64 {
        self.total_violations() - self.retained_violations()
    }

    /// Number of checkers that failed.
    #[must_use]
    pub fn failed_checkers(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.verdict.passed()).count()
    }

    /// Looks up one checker's outcome by name.
    #[must_use]
    pub fn outcome(&self, checker: &str) -> Option<&CheckOutcome> {
        self.outcomes.iter().find(|o| o.checker == checker)
    }
}
