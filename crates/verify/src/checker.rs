//! The [`Checker`] trait, its verdict/violation vocabulary, and the
//! [`CheckerProbe`] adapter that attaches a set of checkers to any
//! simulation session.
//!
//! A checker mirrors [`glitch_sim::Probe`] hook for hook — it observes a
//! run's transition stream and cycle statistics — but where a probe
//! accumulates an *artefact* (a trace, a waveform, an energy figure), a
//! checker accumulates *evidence for a verdict*: located [`Violation`]
//! records plus summary metrics. Checkers are mergeable across shards like
//! [`glitch_sim::MergeableProbe`]s, and the fold is performed in shard
//! order, so a multi-seed parallel check is bit-identical to the serial
//! fold of its shards at any worker count.

use std::any::Any;

use glitch_netlist::{NetId, Netlist};
use glitch_sim::{CycleStats, MergeableProbe, Probe, Transition};

/// Upper bound on the located [`Violation`] records a checker *retains*
/// (the `total_violations` count keeps counting past it). A pathological
/// run — every net over budget every cycle — must not turn the report into
/// a memory hog; the retained records are the first
/// [`VIOLATION_CAP`] in observation order (shard order across a parallel
/// fold), which keeps the truncation deterministic.
pub const VIOLATION_CAP: usize = 64;

/// The outcome of a check: pass or fail.
///
/// Checkers that only *measure* (hazard classification) always pass;
/// their findings live in the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// No violation observed.
    Pass,
    /// At least one violation observed.
    Fail,
}

impl Verdict {
    /// `true` for [`Verdict::Pass`].
    #[must_use]
    pub fn passed(self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// The conjunction of two verdicts: fails if either fails.
    #[must_use]
    pub fn and(self, other: Verdict) -> Verdict {
        if self.passed() && other.passed() {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }

    /// Renders as `pass` / `fail` (the `--json` spelling).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One located check violation.
///
/// The fields are the settle-budget reading — *net `net` was still
/// switching at `time` in `cycle`, over its budget of `budget`* — and the
/// other checkers reuse the shape with documented meanings:
///
/// * X-propagation: `cycle` is the first cycle the output ended unknown,
///   `time` the number of cycle ends it spent unknown, `budget` 0;
/// * stability: `cycle`/`time` locate the forbidden transition, `budget`
///   is 0 (no switching allowed at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Violation {
    /// The offending net.
    pub net: NetId,
    /// The clock cycle of the violation.
    pub cycle: u64,
    /// The intra-cycle settle time (delay units) of the violation.
    pub time: u64,
    /// The budget that was exceeded.
    pub budget: u64,
}

/// Appends a violation under the [`VIOLATION_CAP`] retention rule.
pub(crate) fn push_capped(violations: &mut Vec<Violation>, violation: Violation) {
    if violations.len() < VIOLATION_CAP {
        violations.push(violation);
    }
}

/// Merges another shard's retained violations (shard order, capped).
pub(crate) fn merge_capped(violations: &mut Vec<Violation>, other: Vec<Violation>) {
    for violation in other {
        push_capped(violations, violation);
    }
}

/// A finished checker's structured result: the verdict, the retained
/// violations, the full violation count, and ordered summary metrics.
///
/// Outcomes are plain data with a stable field order, so two runs that
/// observed the same evidence produce equal (`==`) outcomes — this is the
/// object the determinism guarantees ("bit-identical at any `--jobs`,
/// bit-identical between full and incremental runs") are stated over.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The checker's name (e.g. `x-propagation`).
    pub checker: String,
    /// Pass or fail.
    pub verdict: Verdict,
    /// The retained violations, at most [`VIOLATION_CAP`].
    pub violations: Vec<Violation>,
    /// The full violation count (never truncated).
    pub total_violations: u64,
    /// Ordered `(name, value)` summary metrics.
    pub metrics: Vec<(String, u64)>,
    /// One human-readable summary line.
    pub summary: String,
}

impl CheckOutcome {
    /// Looks up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// An object-safe assertion checker over a simulation run.
///
/// The observation hooks mirror [`Probe`] and have empty defaults; a
/// checker implements what it watches plus [`Checker::outcome`] (distil
/// the accumulated evidence) and [`Checker::merge_boxed`] (fold another
/// shard's instance of the *same* checker into this one — the reduction
/// side of parallel checking, invoked in shard order).
pub trait Checker: Any + Send {
    /// Short stable name (`x-propagation`, `settle-budget`, `hazard`,
    /// `stability`) — used in reports, JSON output and merge assertions.
    fn name(&self) -> &'static str;

    /// Called once, before any cycle, with the netlist under simulation.
    fn on_run_start(&mut self, _netlist: &Netlist) {}

    /// Called at the beginning of clock cycle `cycle`.
    fn on_cycle_start(&mut self, _cycle: u64) {}

    /// Called once per net-value change, in settle-time order.
    fn on_transition(&mut self, _transition: &Transition) {}

    /// Called after the cycle's logic has settled.
    fn on_cycle_end(&mut self, _cycle: u64, _stats: &CycleStats) {}

    /// Called once after the last cycle.
    fn on_run_end(&mut self, _netlist: &Netlist) {}

    /// Distils the accumulated evidence into a [`CheckOutcome`].
    fn outcome(&self, netlist: &Netlist) -> CheckOutcome;

    /// Folds another shard's instance of this checker into `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is a different checker type (the suite builder
    /// guarantees positional alignment, so this indicates caller error).
    fn merge_boxed(&mut self, other: Box<dyn Checker>);
}

/// Downcasts a boxed checker to a concrete type for merging.
///
/// # Panics
///
/// Panics when the types differ.
pub(crate) fn downcast_checker<T: Checker>(other: Box<dyn Checker>) -> T {
    let name = other.name();
    let any: Box<dyn Any> = other;
    *any.downcast::<T>()
        .unwrap_or_else(|_| panic!("cannot merge checker `{name}` into a different checker type"))
}

/// The [`Probe`] adapter that runs a set of checkers inside any simulation
/// session — [`glitch_sim::SimSession`], [`glitch_sim::ParallelRunner`]
/// shards and [`glitch_sim::IncrementalSession`] alike. Because checkers
/// ride the probe hook stream, an incremental run re-checks only the dirty
/// cycles and replays the recorded stream verbatim through the checkers on
/// clean ones — bit-identity with a full run is inherited from the
/// incremental layer's headline guarantee.
#[derive(Default)]
pub struct CheckerProbe {
    checkers: Vec<Box<dyn Checker>>,
    /// When set, every hook fan-out is timed per checker. Off by default —
    /// the untimed path does not touch the clock at all, so checking
    /// without telemetry pays nothing.
    timed: bool,
    /// Cumulative wall-clock nanoseconds per checker (index-aligned with
    /// `checkers`). Non-deterministic; never part of [`CheckOutcome`] or
    /// [`crate::VerifyReport`], so the determinism guarantees stated over
    /// those objects are unaffected.
    elapsed_nanos: Vec<u64>,
}

impl CheckerProbe {
    /// Wraps a list of checkers; they observe events in list order.
    #[must_use]
    pub fn new(checkers: Vec<Box<dyn Checker>>) -> Self {
        let elapsed_nanos = vec![0; checkers.len()];
        CheckerProbe {
            checkers,
            timed: false,
            elapsed_nanos,
        }
    }

    /// Enables per-checker wall-clock timing (builder style). Retrieve the
    /// accumulated figures with [`CheckerProbe::checker_micros`].
    #[must_use]
    pub fn timed(mut self) -> Self {
        self.timed = true;
        self
    }

    /// Cumulative wall-clock time spent inside each checker's hooks, in
    /// microseconds, as `(name, micros)` pairs in checker order. All zeros
    /// unless the probe was built with [`CheckerProbe::timed`]. Display
    /// and trace export only — wall-clock figures are not deterministic.
    #[must_use]
    pub fn checker_micros(&self) -> Vec<(String, u64)> {
        self.checkers
            .iter()
            .zip(&self.elapsed_nanos)
            .map(|(c, &nanos)| (c.name().to_string(), nanos / 1_000))
            .collect()
    }

    /// Number of wrapped checkers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.checkers.len()
    }

    /// `true` when no checker is attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkers.is_empty()
    }

    /// Distils every checker into a [`crate::VerifyReport`].
    #[must_use]
    pub fn report(&self, netlist: &Netlist) -> crate::VerifyReport {
        crate::VerifyReport::new(self.checkers.iter().map(|c| c.outcome(netlist)).collect())
    }

    /// Fans one hook call across the checkers, timing each when enabled.
    fn fan_out(&mut self, mut f: impl FnMut(&mut dyn Checker)) {
        if self.timed {
            for (checker, nanos) in self.checkers.iter_mut().zip(&mut self.elapsed_nanos) {
                let start = std::time::Instant::now();
                f(checker.as_mut());
                *nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
        } else {
            for checker in &mut self.checkers {
                f(checker.as_mut());
            }
        }
    }
}

impl std::fmt::Debug for CheckerProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckerProbe")
            .field("checkers", &self.checkers.len())
            .finish()
    }
}

impl Probe for CheckerProbe {
    fn on_run_start(&mut self, netlist: &Netlist) {
        self.fan_out(|checker| checker.on_run_start(netlist));
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.fan_out(|checker| checker.on_cycle_start(cycle));
    }

    fn on_transition(&mut self, transition: &Transition) {
        self.fan_out(|checker| checker.on_transition(transition));
    }

    fn on_cycle_end(&mut self, cycle: u64, stats: &CycleStats) {
        self.fan_out(|checker| checker.on_cycle_end(cycle, stats));
    }

    fn on_run_end(&mut self, netlist: &Netlist) {
        self.fan_out(|checker| checker.on_run_end(netlist));
    }
}

impl MergeableProbe for CheckerProbe {
    /// Folds another shard's checkers into this probe, pairwise by
    /// position. Suites build shards from the same [`crate::CheckSuite`],
    /// so positions align; the fold is exact for every built-in checker
    /// (counts add, minima/maxima combine, retained violations concatenate
    /// in fold order under the cap).
    ///
    /// # Panics
    ///
    /// Panics if the two probes carry different checker lists.
    fn merge(&mut self, other: CheckerProbe) {
        if self.checkers.is_empty() {
            *self = other;
            return;
        }
        if other.checkers.is_empty() {
            return;
        }
        assert_eq!(
            self.checkers.len(),
            other.checkers.len(),
            "cannot merge checker probes with different checker lists"
        );
        for (mine, theirs) in self.checkers.iter_mut().zip(other.checkers) {
            assert_eq!(
                mine.name(),
                theirs.name(),
                "cannot merge checker probes with different checker lists"
            );
            mine.merge_boxed(theirs);
        }
        self.timed |= other.timed;
        for (mine, theirs) in self.elapsed_nanos.iter_mut().zip(&other.elapsed_nanos) {
            *mine += theirs;
        }
    }
}
