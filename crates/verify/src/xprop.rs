//! X-propagation checking: which nets and outputs ever see `X`, when, and
//! how long until the unknown region clears.
//!
//! Run under the x-init preset ([`glitch_sim::SimOptions::x_init`]) this
//! simulates uninitialised-state reachability: flipflops without a
//! netlist-specified reset value power on as `X`, the three-valued tables
//! propagate exactly the unknowns that controlling values cannot mask, and
//! this checker records where they reach. A primary output that ends any
//! cycle unknown is a violation — downstream logic could latch garbage —
//! while internal `X` that clears records the *X-clearing depth*: how many
//! cycles of stimulus it takes to drive the circuit into a fully known
//! state.

use glitch_netlist::{NetId, Netlist};
use glitch_sim::{CycleStats, Transition, Value};

use crate::checker::{downcast_checker, push_capped, CheckOutcome, Checker, Verdict, Violation};

/// Sentinel for "never".
const NEVER: u64 = u64::MAX;

/// Records per-net `X` occupancy at cycle ends; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct XPropagationChecker {
    /// Cycle ends observed.
    cycles: u64,
    /// Current value of every net (rolling, updated from transitions).
    values: Vec<Value>,
    /// Number of nets currently `X` (all nets start `X`).
    x_now: usize,
    /// First cycle whose end the net spent `X`, or [`NEVER`].
    first_x: Vec<u64>,
    /// Last cycle whose end the net spent `X`, or [`NEVER`].
    last_x: Vec<u64>,
    /// Number of cycle ends the net spent `X`.
    x_cycle_ends: Vec<u64>,
    /// Whether the net was `X` at the end of the final observed cycle.
    stuck: Vec<bool>,
    /// First cycle at whose end *no* net was `X`, if any.
    clear_cycle: Option<u64>,
    /// The primary outputs, captured at run start.
    outputs: Vec<NetId>,
}

impl XPropagationChecker {
    /// Creates an X-propagation checker; sizing happens at run start.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// First cycle at whose end no net was `X`, or `None` if the unknown
    /// region never fully cleared — the X-clearing depth of the run.
    #[must_use]
    pub fn clear_cycle(&self) -> Option<u64> {
        self.clear_cycle
    }

    /// Nets that were `X` at the end of at least one cycle.
    pub fn nets_ever_x(&self) -> impl Iterator<Item = NetId> + '_ {
        self.first_x
            .iter()
            .enumerate()
            .filter(|(_, &first)| first != NEVER)
            .map(|(i, _)| NetId::from_index(i))
    }

    /// First cycle the net ended `X`, if it ever did.
    #[must_use]
    pub fn first_x_cycle(&self, net: NetId) -> Option<u64> {
        match self.first_x.get(net.index()) {
            Some(&c) if c != NEVER => Some(c),
            _ => None,
        }
    }
}

impl Checker for XPropagationChecker {
    fn name(&self) -> &'static str {
        "x-propagation"
    }

    fn on_run_start(&mut self, netlist: &Netlist) {
        let n = netlist.net_count();
        self.values = vec![Value::X; n];
        self.x_now = n;
        self.first_x = vec![NEVER; n];
        self.last_x = vec![NEVER; n];
        self.x_cycle_ends = vec![0; n];
        self.stuck = vec![false; n];
        self.clear_cycle = None;
        self.cycles = 0;
        self.outputs = netlist.outputs().to_vec();
    }

    fn on_transition(&mut self, transition: &Transition) {
        let idx = transition.net.index();
        let old = self.values[idx];
        if old == transition.value {
            return;
        }
        match (old, transition.value) {
            (Value::X, _) => self.x_now -= 1,
            (_, Value::X) => self.x_now += 1,
            _ => {}
        }
        self.values[idx] = transition.value;
    }

    fn on_cycle_end(&mut self, cycle: u64, _stats: &CycleStats) {
        if self.x_now > 0 {
            // Only reached while unknowns persist; cost fades to O(1) as
            // soon as the region clears.
            for (idx, value) in self.values.iter().enumerate() {
                if *value == Value::X {
                    if self.first_x[idx] == NEVER {
                        self.first_x[idx] = cycle;
                    }
                    self.last_x[idx] = cycle;
                    self.x_cycle_ends[idx] += 1;
                }
            }
        } else if self.clear_cycle.is_none() {
            self.clear_cycle = Some(cycle);
        }
        self.cycles += 1;
    }

    fn on_run_end(&mut self, _netlist: &Netlist) {
        for (idx, value) in self.values.iter().enumerate() {
            self.stuck[idx] = self.cycles > 0 && *value == Value::X;
        }
    }

    fn outcome(&self, netlist: &Netlist) -> CheckOutcome {
        let nets_ever_x = self.first_x.iter().filter(|&&f| f != NEVER).count();
        let stuck_nets = self.stuck.iter().filter(|&&s| s).count();
        let mut violations = Vec::new();
        let mut total = 0u64;
        let mut outputs_ever_x = 0usize;
        let mut first_output_x = NEVER;
        for &out in &self.outputs {
            let idx = out.index();
            if self.first_x[idx] != NEVER {
                outputs_ever_x += 1;
                first_output_x = first_output_x.min(self.first_x[idx]);
                total += 1;
                push_capped(
                    &mut violations,
                    Violation {
                        net: out,
                        cycle: self.first_x[idx],
                        time: self.x_cycle_ends[idx],
                        budget: 0,
                    },
                );
            }
        }
        let verdict = if total == 0 {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        let mut metrics = vec![
            ("cycles".to_string(), self.cycles),
            ("nets_ever_x".to_string(), nets_ever_x as u64),
            ("outputs_ever_x".to_string(), outputs_ever_x as u64),
            ("stuck_x_nets".to_string(), stuck_nets as u64),
            (
                "x_cleared".to_string(),
                u64::from(self.clear_cycle.is_some()),
            ),
        ];
        if let Some(clear) = self.clear_cycle {
            metrics.push(("x_clear_cycle".to_string(), clear));
        }
        let summary = if total == 0 {
            match self.clear_cycle {
                Some(0) => "no output ever unknown; X cleared within the first cycle".to_string(),
                Some(c) => format!(
                    "no output ever unknown; X cleared by the end of cycle {c} \
                     ({nets_ever_x} nets were transiently unknown)"
                ),
                None if self.cycles == 0 => "no cycles observed".to_string(),
                None => format!(
                    "no output ever unknown, but {stuck_nets} internal nets \
                     are still X at the end of the run"
                ),
            }
        } else {
            let names: Vec<&str> = self
                .outputs
                .iter()
                .filter(|o| self.first_x[o.index()] != NEVER)
                .take(4)
                .map(|&o| netlist.net(o).name())
                .collect();
            format!(
                "{outputs_ever_x} outputs saw X (first at cycle end {first_output_x}): {}{}",
                names.join(", "),
                if outputs_ever_x > names.len() {
                    ", …"
                } else {
                    ""
                }
            )
        };
        CheckOutcome {
            checker: self.name().to_string(),
            verdict,
            violations,
            total_violations: total,
            metrics,
            summary,
        }
    }

    fn merge_boxed(&mut self, other: Box<dyn Checker>) {
        let other: XPropagationChecker = downcast_checker(other);
        if other.values.is_empty() {
            return;
        }
        if self.values.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "cannot merge X-propagation checkers of different netlists"
        );
        self.cycles += other.cycles;
        for i in 0..self.values.len() {
            self.first_x[i] = self.first_x[i].min(other.first_x[i]);
            self.last_x[i] = if self.last_x[i] == NEVER {
                other.last_x[i]
            } else if other.last_x[i] == NEVER {
                self.last_x[i]
            } else {
                self.last_x[i].max(other.last_x[i])
            };
            self.x_cycle_ends[i] += other.x_cycle_ends[i];
            self.stuck[i] |= other.stuck[i];
        }
        // Worst clearing depth across shards; unknown if any shard never
        // cleared.
        self.clear_cycle = match (self.clear_cycle, other.clear_cycle) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }
}
