//! Settle-time budgets: the spec syntax, its resolution against a
//! netlist, and the [`SettleBudgetChecker`] that enforces it.
//!
//! The paper's synchronous model assumes every net settles within the
//! clock period; Lamport/Palais's glitch result is exactly that this
//! cannot be taken for granted. A budget spec makes the assumption
//! checkable: each net gets a *last-transition-time* budget in delay
//! units, and a cycle in which the net is still switching past its budget
//! is a located [`Violation`].
//!
//! ## Spec syntax
//!
//! CLI form — a comma list of `target=value` entries
//! (`--budget 'sum=12,outputs=10,*=cycle'`); file form — one `target =
//! value` line per budget (a TOML-subset key/value file, `#` comments):
//!
//! * target `*` — every net (the per-cohort catch-all);
//! * target `outputs` — every primary output;
//! * any other target — the net with that name;
//! * value — a delay-unit integer, or the keyword `cycle` for the
//!   netlist's combinational depth (the nominal critical path, i.e. the
//!   single-cycle settling assumption under unit delay).
//!
//! Specific targets override broad ones: `net` beats `outputs` beats `*`,
//! regardless of entry order; within the same specificity the last entry
//! wins (so a CLI `--budget` appended after a `--budgets` file overrides
//! it).

use std::fmt;

use glitch_netlist::{NetId, Netlist};
use glitch_sim::{CycleStats, Transition};

use crate::checker::{
    downcast_checker, merge_capped, push_capped, CheckOutcome, Checker, Verdict, Violation,
};

/// What a budget entry applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetTarget {
    /// One net, by name.
    Net(String),
    /// Every primary output.
    Outputs,
    /// Every net.
    All,
}

/// The budget itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetValue {
    /// A fixed number of delay units.
    Units(u64),
    /// The netlist's combinational depth (`cycle` in the spec syntax).
    CriticalPath,
}

/// A parsed, not-yet-resolved budget specification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    entries: Vec<(BudgetTarget, BudgetValue)>,
}

/// Why a budget spec could not be parsed or resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// A spec entry is malformed; the message shows the entry.
    Parse(String),
    /// The spec names a net the netlist does not have.
    UnknownNet(String),
    /// `cycle` was requested but the netlist has no combinational depth
    /// (it contains no combinational cells).
    NoCriticalPath,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Parse(entry) => write!(
                f,
                "budget entries are `net=UNITS`, `outputs=UNITS` or `*=UNITS|cycle`, got `{entry}`"
            ),
            BudgetError::UnknownNet(name) => {
                write!(
                    f,
                    "budget names net `{name}`, which the netlist does not have"
                )
            }
            BudgetError::NoCriticalPath => write!(
                f,
                "budget value `cycle` needs a combinational depth, \
                 but the netlist has no combinational cells"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

impl BudgetSpec {
    /// An empty spec.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no entry was given.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Appends one entry (builder style).
    #[must_use]
    pub fn with(mut self, target: BudgetTarget, value: BudgetValue) -> Self {
        self.entries.push((target, value));
        self
    }

    /// Appends every entry of `other` (later entries win within the same
    /// specificity — the file-then-CLI layering).
    pub fn extend(&mut self, other: BudgetSpec) {
        self.entries.extend(other.entries);
    }

    /// Parses one `target=value` entry.
    fn parse_entry(entry: &str) -> Result<(BudgetTarget, BudgetValue), BudgetError> {
        let raw = entry.trim();
        let (target_text, value_text) = raw
            .split_once('=')
            .ok_or_else(|| BudgetError::Parse(raw.to_string()))?;
        let target_text = target_text.trim().trim_matches('"');
        let value_text = value_text.trim().trim_matches('"');
        if target_text.is_empty() || value_text.is_empty() {
            return Err(BudgetError::Parse(raw.to_string()));
        }
        let target = match target_text {
            "*" => BudgetTarget::All,
            "outputs" => BudgetTarget::Outputs,
            name => BudgetTarget::Net(name.to_string()),
        };
        let value = if value_text == "cycle" {
            BudgetValue::CriticalPath
        } else {
            BudgetValue::Units(
                value_text
                    .parse()
                    .map_err(|_| BudgetError::Parse(raw.to_string()))?,
            )
        };
        Ok((target, value))
    }

    /// Parses the CLI comma-list form, e.g. `sum=12,outputs=10,*=cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::Parse`] naming the malformed entry.
    pub fn parse_list(text: &str) -> Result<Self, BudgetError> {
        let mut spec = BudgetSpec::new();
        for entry in text.split(',').filter(|e| !e.trim().is_empty()) {
            let (target, value) = Self::parse_entry(entry)?;
            spec.entries.push((target, value));
        }
        Ok(spec)
    }

    /// Parses the budget-file form: one `target = value` line per entry,
    /// `#` comments, blank lines ignored (a TOML subset).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::Parse`] naming the malformed line.
    pub fn parse_file(text: &str) -> Result<Self, BudgetError> {
        let mut spec = BudgetSpec::new();
        for line in text.lines() {
            let line = match line.split_once('#') {
                Some((before, _)) => before,
                None => line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (target, value) = Self::parse_entry(line)?;
            spec.entries.push((target, value));
        }
        Ok(spec)
    }

    /// Resolves the spec against a netlist into a per-net budget table.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::UnknownNet`] for names the netlist lacks and
    /// [`BudgetError::NoCriticalPath`] if `cycle` was used on a netlist
    /// without combinational cells.
    pub fn resolve(&self, netlist: &Netlist) -> Result<ResolvedBudgets, BudgetError> {
        // The combinational depth walks the whole netlist; compute it at
        // most once per resolve, and only if some entry says `cycle`.
        let mut depth: Option<u64> = None;
        let mut critical_path = || -> Result<u64, BudgetError> {
            if let Some(d) = depth {
                return Ok(d);
            }
            let d = netlist
                .stats()
                .combinational_depth()
                .map(|d| d as u64)
                .ok_or(BudgetError::NoCriticalPath)?;
            depth = Some(d);
            Ok(d)
        };
        let mut per_net: Vec<Option<u64>> = vec![None; netlist.net_count()];
        // Broad-to-specific passes: `*`, then `outputs`, then named nets.
        for pass in 0..3 {
            for (target, value) in &self.entries {
                let applies = matches!(
                    (pass, target),
                    (0, BudgetTarget::All) | (1, BudgetTarget::Outputs) | (2, BudgetTarget::Net(_))
                );
                if !applies {
                    continue;
                }
                let units = match value {
                    BudgetValue::Units(u) => *u,
                    BudgetValue::CriticalPath => critical_path()?,
                };
                match target {
                    BudgetTarget::All => per_net.iter_mut().for_each(|b| *b = Some(units)),
                    BudgetTarget::Outputs => {
                        for &out in netlist.outputs() {
                            per_net[out.index()] = Some(units);
                        }
                    }
                    BudgetTarget::Net(name) => {
                        let net = netlist
                            .find_net(name)
                            .ok_or_else(|| BudgetError::UnknownNet(name.clone()))?;
                        per_net[net.index()] = Some(units);
                    }
                }
            }
        }
        Ok(ResolvedBudgets { per_net })
    }
}

/// A budget spec resolved against one netlist: one optional budget per
/// net, by net index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedBudgets {
    per_net: Vec<Option<u64>>,
}

impl ResolvedBudgets {
    /// The budget of a net, if any.
    #[must_use]
    pub fn budget(&self, net: NetId) -> Option<u64> {
        self.per_net.get(net.index()).copied().flatten()
    }

    /// Number of nets with a budget.
    #[must_use]
    pub fn budgeted_count(&self) -> usize {
        self.per_net.iter().filter(|b| b.is_some()).count()
    }

    /// Number of nets the table was resolved over.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.per_net.len()
    }
}

/// Enforces per-net last-transition-time budgets; see the module docs.
#[derive(Debug, Clone)]
pub struct SettleBudgetChecker {
    budgets: ResolvedBudgets,
    /// Per-cycle worst offending time per net (generation-stamped).
    stamp: Vec<u64>,
    worst: Vec<u64>,
    touched: Vec<NetId>,
    current_cycle: u64,
    violations: Vec<Violation>,
    total: u64,
    nets_over: Vec<bool>,
    worst_excess: u64,
    max_settle_seen: u64,
    cycles: u64,
}

impl SettleBudgetChecker {
    /// Creates a checker enforcing `budgets` (resolve a [`BudgetSpec`]
    /// against the netlist first).
    #[must_use]
    pub fn new(budgets: ResolvedBudgets) -> Self {
        SettleBudgetChecker {
            budgets,
            stamp: Vec::new(),
            worst: Vec::new(),
            touched: Vec::new(),
            current_cycle: 0,
            violations: Vec::new(),
            total: 0,
            nets_over: Vec::new(),
            worst_excess: 0,
            max_settle_seen: 0,
            cycles: 0,
        }
    }

    /// The retained violations (capped; `total_violations` in the outcome
    /// keeps the full count).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

impl Checker for SettleBudgetChecker {
    fn name(&self) -> &'static str {
        "settle-budget"
    }

    fn on_run_start(&mut self, netlist: &Netlist) {
        assert_eq!(
            self.budgets.net_count(),
            netlist.net_count(),
            "budgets were resolved against a different netlist"
        );
        let n = netlist.net_count();
        self.stamp = vec![0; n];
        self.worst = vec![0; n];
        self.nets_over = vec![false; n];
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.current_cycle = cycle;
        self.touched.clear();
    }

    fn on_transition(&mut self, transition: &Transition) {
        self.max_settle_seen = self.max_settle_seen.max(transition.time);
        let Some(budget) = self.budgets.budget(transition.net) else {
            return;
        };
        if transition.time <= budget {
            return;
        }
        let idx = transition.net.index();
        if self.stamp[idx] != self.current_cycle + 1 {
            self.stamp[idx] = self.current_cycle + 1;
            self.worst[idx] = transition.time;
            self.touched.push(transition.net);
        } else {
            self.worst[idx] = self.worst[idx].max(transition.time);
        }
    }

    fn on_cycle_end(&mut self, cycle: u64, _stats: &CycleStats) {
        for &net in &self.touched {
            let idx = net.index();
            let time = self.worst[idx];
            let budget = self.budgets.budget(net).expect("touched nets have budgets");
            self.total += 1;
            self.nets_over[idx] = true;
            self.worst_excess = self.worst_excess.max(time - budget);
            push_capped(
                &mut self.violations,
                Violation {
                    net,
                    cycle,
                    time,
                    budget,
                },
            );
        }
        self.touched.clear();
        self.cycles += 1;
    }

    fn outcome(&self, netlist: &Netlist) -> CheckOutcome {
        let nets_over = self.nets_over.iter().filter(|&&o| o).count();
        let verdict = if self.total == 0 {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        let summary = if self.total == 0 {
            format!(
                "every budgeted net settled in time ({} nets budgeted, worst \
                 observed settle {})",
                self.budgets.budgeted_count(),
                self.max_settle_seen
            )
        } else {
            let first = self.violations.first().expect("total > 0 retains one");
            let mut text = format!(
                "{} budget violations on {nets_over} nets (worst excess {} units; \
                 first: `{}` still switching at t={} in cycle {}, budget {})",
                self.total,
                self.worst_excess,
                netlist.net(first.net).name(),
                first.time,
                first.cycle,
                first.budget
            );
            let dropped = self.total - self.violations.len() as u64;
            if dropped > 0 {
                text.push_str(&format!(
                    " [{} retained, {dropped} dropped past the cap]",
                    self.violations.len()
                ));
            }
            text
        };
        let retained = self.violations.len() as u64;
        CheckOutcome {
            checker: self.name().to_string(),
            verdict,
            violations: self.violations.clone(),
            total_violations: self.total,
            metrics: vec![
                ("cycles".to_string(), self.cycles),
                (
                    "budgeted_nets".to_string(),
                    self.budgets.budgeted_count() as u64,
                ),
                ("nets_over_budget".to_string(), nets_over as u64),
                ("worst_excess".to_string(), self.worst_excess),
                ("max_settle_time".to_string(), self.max_settle_seen),
                ("violations_retained".to_string(), retained),
                ("violations_dropped".to_string(), self.total - retained),
            ],
            summary,
        }
    }

    fn merge_boxed(&mut self, other: Box<dyn Checker>) {
        let other: SettleBudgetChecker = downcast_checker(other);
        if other.nets_over.is_empty() {
            return;
        }
        if self.nets_over.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(
            self.budgets, other.budgets,
            "cannot merge settle-budget checkers with different budgets"
        );
        merge_capped(&mut self.violations, other.violations);
        self.total += other.total;
        self.cycles += other.cycles;
        self.worst_excess = self.worst_excess.max(other.worst_excess);
        self.max_settle_seen = self.max_settle_seen.max(other.max_settle_seen);
        for (mine, theirs) in self.nets_over.iter_mut().zip(&other.nets_over) {
            *mine |= theirs;
        }
    }
}
