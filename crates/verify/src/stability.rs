//! Stability assertions: a net must not switch in cycles matching a
//! predicate.
//!
//! The shape covers enable-gated regions ("this bus is quiet unless the
//! enable fired"), handshake phases, and the paper's held-input mode
//! analysis (an input held constant must keep its downstream cone quiet
//! once settled). Violations are located per transition.

use glitch_netlist::{NetId, Netlist};
use glitch_sim::Transition;

use crate::checker::{
    downcast_checker, merge_capped, push_capped, CheckOutcome, Checker, Verdict, Violation,
};

/// Which cycles a [`StabilityChecker`] watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleFilter {
    /// Every cycle.
    #[default]
    All,
    /// Cycles in `from..=to` (inclusive on both ends).
    Range {
        /// First watched cycle.
        from: u64,
        /// Last watched cycle.
        to: u64,
    },
}

impl CycleFilter {
    /// Whether `cycle` is watched.
    #[must_use]
    pub fn matches(self, cycle: u64) -> bool {
        match self {
            CycleFilter::All => true,
            CycleFilter::Range { from, to } => (from..=to).contains(&cycle),
        }
    }
}

impl std::fmt::Display for CycleFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CycleFilter::All => f.write_str("all cycles"),
            CycleFilter::Range { from, to } => write!(f, "cycles {from}..={to}"),
        }
    }
}

/// Asserts that one net never switches in the watched cycles.
///
/// Changes into or out of `X` are initialisation, not switching, and are
/// not flagged.
#[derive(Debug, Clone)]
pub struct StabilityChecker {
    net: NetId,
    filter: CycleFilter,
    violations: Vec<Violation>,
    total: u64,
    watched_cycles: u64,
    current_watched: bool,
}

impl StabilityChecker {
    /// Creates a stability assertion on `net` over the watched cycles.
    #[must_use]
    pub fn new(net: NetId, filter: CycleFilter) -> Self {
        StabilityChecker {
            net,
            filter,
            violations: Vec::new(),
            total: 0,
            watched_cycles: 0,
            current_watched: false,
        }
    }

    /// The asserted net.
    #[must_use]
    pub fn net(&self) -> NetId {
        self.net
    }
}

impl Checker for StabilityChecker {
    fn name(&self) -> &'static str {
        "stability"
    }

    fn on_cycle_start(&mut self, cycle: u64) {
        self.current_watched = self.filter.matches(cycle);
        if self.current_watched {
            self.watched_cycles += 1;
        }
    }

    fn on_transition(&mut self, transition: &Transition) {
        if transition.net != self.net {
            return;
        }
        if self.current_watched && transition.kind.is_switching() {
            self.total += 1;
            push_capped(
                &mut self.violations,
                Violation {
                    net: self.net,
                    cycle: transition.cycle,
                    time: transition.time,
                    budget: 0,
                },
            );
        }
    }

    fn outcome(&self, netlist: &Netlist) -> CheckOutcome {
        let name = netlist.net(self.net).name();
        let verdict = if self.total == 0 {
            Verdict::Pass
        } else {
            Verdict::Fail
        };
        let summary = if self.total == 0 {
            format!(
                "`{name}` stable over {} watched cycles ({})",
                self.watched_cycles, self.filter
            )
        } else {
            let first = self.violations.first().expect("total > 0 retains one");
            format!(
                "`{name}` switched {} times in watched cycles ({}); first at \
                 t={} in cycle {}",
                self.total, self.filter, first.time, first.cycle
            )
        };
        CheckOutcome {
            checker: self.name().to_string(),
            verdict,
            violations: self.violations.clone(),
            total_violations: self.total,
            metrics: vec![
                ("watched_cycles".to_string(), self.watched_cycles),
                ("switches".to_string(), self.total),
            ],
            summary,
        }
    }

    fn merge_boxed(&mut self, other: Box<dyn Checker>) {
        let other: StabilityChecker = downcast_checker(other);
        assert!(
            self.net == other.net && self.filter == other.filter,
            "cannot merge stability checkers watching different assertions"
        );
        merge_capped(&mut self.violations, other.violations);
        self.total += other.total;
        self.watched_cycles += other.watched_cycles;
    }
}
