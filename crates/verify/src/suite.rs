//! The [`CheckSuite`]: a cloneable, shard-replicable description of which
//! checkers to run.
//!
//! Parallel checking needs one fresh checker set per shard (the probe
//! factory pattern of [`glitch_sim::ParallelRunner::run_sessions_with`])
//! and a deterministic fold afterwards. The suite is that description:
//! [`CheckSuite::build`] instantiates a fresh [`CheckerProbe`] with the
//! checkers in a fixed order (X-propagation, settle-budget, hazard,
//! stability assertions in insertion order), so every shard's probe is
//! positionally alignable with every other's and the merge is exact.

use glitch_netlist::NetId;

use crate::budget::{ResolvedBudgets, SettleBudgetChecker};
use crate::checker::{Checker, CheckerProbe};
use crate::hazard::HazardChecker;
use crate::stability::{CycleFilter, StabilityChecker};
use crate::xprop::XPropagationChecker;

/// Which checkers a verification run attaches; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct CheckSuite {
    x_propagation: bool,
    hazards: bool,
    budgets: Option<ResolvedBudgets>,
    stability: Vec<(NetId, CycleFilter)>,
    timed: bool,
}

impl CheckSuite {
    /// An empty suite; add checkers with the builder methods.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the X-propagation checker.
    #[must_use]
    pub fn with_x_propagation(mut self) -> Self {
        self.x_propagation = true;
        self
    }

    /// Adds the hazard classifier.
    #[must_use]
    pub fn with_hazards(mut self) -> Self {
        self.hazards = true;
        self
    }

    /// Adds the settle-budget checker over an already-resolved budget
    /// table ([`crate::BudgetSpec::resolve`]).
    #[must_use]
    pub fn with_budgets(mut self, budgets: ResolvedBudgets) -> Self {
        self.budgets = Some(budgets);
        self
    }

    /// Adds one stability assertion.
    #[must_use]
    pub fn with_stability(mut self, net: NetId, filter: CycleFilter) -> Self {
        self.stability.push((net, filter));
        self
    }

    /// Builds probes with per-checker wall-clock timing enabled
    /// ([`CheckerProbe::timed`]) — telemetry only, verdicts unaffected.
    #[must_use]
    pub fn with_timing(mut self) -> Self {
        self.timed = true;
        self
    }

    /// Number of checkers [`CheckSuite::build`] will instantiate.
    #[must_use]
    pub fn checker_count(&self) -> usize {
        usize::from(self.x_propagation)
            + usize::from(self.budgets.is_some())
            + usize::from(self.hazards)
            + self.stability.len()
    }

    /// `true` when the suite would check nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checker_count() == 0
    }

    /// Instantiates a fresh probe with this suite's checkers. Every call
    /// produces positionally identical checker lists, which is what makes
    /// shard probes mergeable.
    #[must_use]
    pub fn build(&self) -> CheckerProbe {
        let mut checkers: Vec<Box<dyn Checker>> = Vec::with_capacity(self.checker_count());
        if self.x_propagation {
            checkers.push(Box::new(XPropagationChecker::new()));
        }
        if let Some(budgets) = &self.budgets {
            checkers.push(Box::new(SettleBudgetChecker::new(budgets.clone())));
        }
        if self.hazards {
            checkers.push(Box::new(HazardChecker::new()));
        }
        for &(net, filter) in &self.stability {
            checkers.push(Box::new(StabilityChecker::new(net, filter)));
        }
        let probe = CheckerProbe::new(checkers);
        if self.timed {
            probe.timed()
        } else {
            probe
        }
    }
}
