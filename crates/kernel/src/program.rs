//! Netlist → straight-line program compilation and word-wise evaluation.

use glitch_netlist::{CellKind, DffInit, NetId, Netlist, NetlistError, Tri};

use crate::state::KernelState;

/// How unknowns propagate through the word-wise tables, mirroring the
/// event-driven simulator's `XEval` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Any `X` input makes every output of the cell `X`.
    #[default]
    Coarse,
    /// Exact Kleene tables: a controlling input yields a known output
    /// even when other inputs are `X` (pinned against
    /// [`CellKind::try_evaluate_tri`]).
    TriTable,
}

/// One compiled combinational cell: its kind, an operand range into the
/// shared operand pool, and one or two output nets.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: CellKind,
    first: u32,
    count: u16,
    out0: u32,
    /// Second output (carry of the compound adder cells), `u32::MAX`
    /// when the kind has a single output.
    out1: u32,
}

/// One compiled D-flipflop: where to read D, where to assert Q, and the
/// declared init value.
#[derive(Debug, Clone, Copy)]
pub struct DffSlot {
    d: NetId,
    q: NetId,
    init: DffInit,
}

impl DffSlot {
    /// The D (data input) net.
    #[must_use]
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The Q (state output) net.
    #[must_use]
    pub fn q(&self) -> NetId {
        self.q
    }
}

/// A netlist compiled once into a levelized straight-line program.
///
/// The program is immutable and shared: any number of [`KernelState`]s
/// (with any lane counts) can be evaluated against one program, from any
/// thread. One cycle of the synchronous network is:
///
/// ```text
/// program.begin_cycle(&mut state);      // assert Q from flipflop state
/// state.set_bool(input, lane, value);   // drive this cycle's stimulus
/// program.eval(&mut state, mode);       // settle combinationally
/// program.latch(&mut state);            // capture D into flipflop state
/// ```
#[derive(Debug, Clone)]
pub struct KernelProgram {
    net_count: usize,
    ops: Vec<Op>,
    operands: Vec<u32>,
    dffs: Vec<DffSlot>,
    inputs: Vec<NetId>,
}

impl KernelProgram {
    /// Compiles `netlist` into a straight-line program, validating it and
    /// levelizing its combinational cells.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`NetlistError`] when the netlist fails
    /// structural validation or contains a combinational loop.
    pub fn compile(netlist: &Netlist) -> Result<KernelProgram, NetlistError> {
        netlist.validate()?;
        let levels = netlist.levelize()?;
        let mut ops = Vec::with_capacity(levels.order().len());
        let mut operands = Vec::new();
        for &cell_id in levels.order() {
            let cell = netlist.cell(cell_id);
            let first = u32::try_from(operands.len()).expect("operand pool fits in u32");
            operands.extend(cell.inputs().iter().map(|n| n.index() as u32));
            let outs = cell.outputs();
            ops.push(Op {
                kind: cell.kind(),
                first,
                count: u16::try_from(cell.inputs().len()).expect("cell arity fits in u16"),
                out0: outs[0].index() as u32,
                out1: outs.get(1).map_or(u32::MAX, |n| n.index() as u32),
            });
        }
        let dffs = netlist
            .dff_cells()
            .map(|id| {
                let cell = netlist.cell(id);
                DffSlot {
                    d: cell.inputs()[0],
                    q: cell.outputs()[0],
                    init: cell.dff_init(),
                }
            })
            .collect();
        Ok(KernelProgram {
            net_count: netlist.net_count(),
            ops,
            operands,
            dffs,
            inputs: netlist.inputs().to_vec(),
        })
    }

    /// Number of nets in the compiled netlist.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of compiled combinational ops (= cells evaluated per cycle).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The compiled flipflops.
    #[must_use]
    pub fn dffs(&self) -> &[DffSlot] {
        &self.dffs
    }

    /// The primary input nets of the compiled netlist.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The cycle-boundary source nets — primary inputs first, then
    /// flipflop Q nets. A cycle on which no source net changes is
    /// provably quiet under any delay assignment.
    pub fn source_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.inputs
            .iter()
            .copied()
            .chain(self.dffs.iter().map(|d| d.q))
    }

    /// Heap footprint of the compiled program, for cache accounting.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.ops.len() * std::mem::size_of::<Op>()
            + self.operands.len() * std::mem::size_of::<u32>()
            + self.dffs.len() * std::mem::size_of::<DffSlot>()
            + self.inputs.len() * std::mem::size_of::<NetId>()
    }

    /// A fresh state for `lanes` parallel stimulus lanes. Every net starts
    /// `X`; flipflop state starts from the per-cell [`DffInit`], with
    /// `DontCare` resolved to `dff_dontcare` (the simulator's
    /// `SimOptions::dff_init` equivalent).
    #[must_use]
    pub fn new_state(&self, lanes: usize, dff_dontcare: Tri) -> KernelState {
        let mut state = KernelState::new(self.net_count, self.dffs.len(), lanes);
        let words = state.words;
        for (i, dff) in self.dffs.iter().enumerate() {
            let value = match dff.init {
                DffInit::Zero => Tri::Zero,
                DffInit::One => Tri::One,
                DffInit::DontCare => dff_dontcare,
            };
            let (v, m) = match value {
                Tri::Zero => (false, false),
                Tri::One => (true, false),
                Tri::X => (false, true),
            };
            for w in 0..words {
                let wm = state.word_mask(w);
                state.dff_val[i * words + w] = if v { wm } else { 0 };
                state.dff_msk[i * words + w] = if m { wm } else { 0 };
            }
        }
        state
    }

    /// Asserts every flipflop's Q net from its captured state — the first
    /// step of a cycle.
    pub fn begin_cycle(&self, state: &mut KernelState) {
        let words = state.words;
        for (i, dff) in self.dffs.iter().enumerate() {
            let q = dff.q.index() * words;
            let s = i * words;
            state.val[q..q + words].copy_from_slice(&state.dff_val[s..s + words]);
            state.msk[q..q + words].copy_from_slice(&state.dff_msk[s..s + words]);
        }
    }

    /// Captures every flipflop's D net into its state — the last step of
    /// a cycle.
    pub fn latch(&self, state: &mut KernelState) {
        let words = state.words;
        for (i, dff) in self.dffs.iter().enumerate() {
            let d = dff.d.index() * words;
            let s = i * words;
            state.dff_val[s..s + words].copy_from_slice(&state.val[d..d + words]);
            state.dff_msk[s..s + words].copy_from_slice(&state.msk[d..d + words]);
        }
    }

    /// Evaluates the combinational program: every op once, in level
    /// order, over all lanes at once. After this the planes hold the
    /// functional (zero-delay) settled values of the cycle.
    ///
    /// # Panics
    ///
    /// Panics when `state` was built for a different netlist size.
    pub fn eval(&self, state: &mut KernelState, mode: EvalMode) {
        assert_eq!(
            state.val.len(),
            self.net_count * state.words,
            "state does not match the compiled netlist"
        );
        let words = state.words;
        let tail_mask = state.tail_mask;
        let val = &mut state.val;
        let msk = &mut state.msk;
        // Valid-lane mask of word `w`: only the final word is partial.
        let wmask = |w: usize| {
            if w + 1 == words {
                tail_mask
            } else {
                !0u64
            }
        };

        for op in &self.ops {
            let ins = &self.operands[op.first as usize..op.first as usize + op.count as usize];
            let out0 = op.out0 as usize * words;
            match op.kind {
                CellKind::Const(b) => {
                    for w in 0..words {
                        val[out0 + w] = if b { wmask(w) } else { 0 };
                        msk[out0 + w] = 0;
                    }
                }
                CellKind::Buf => {
                    let a = ins[0] as usize * words;
                    for w in 0..words {
                        val[out0 + w] = val[a + w];
                        msk[out0 + w] = msk[a + w];
                    }
                }
                CellKind::Inv => {
                    let a = ins[0] as usize * words;
                    for w in 0..words {
                        let wm = wmask(w);
                        let m = msk[a + w];
                        val[out0 + w] = !val[a + w] & !m & wm;
                        msk[out0 + w] = m;
                    }
                }
                CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
                    let (and_like, invert) = match op.kind {
                        CellKind::And => (true, false),
                        CellKind::Nand => (true, true),
                        CellKind::Or => (false, false),
                        _ => (false, true),
                    };
                    for w in 0..words {
                        let wm = wmask(w);
                        let (mut one, mut zero, mut anyx) = (wm, 0u64, 0u64);
                        if !and_like {
                            (one, zero) = (0, wm);
                        }
                        for &i in ins {
                            let at = i as usize * words + w;
                            let (v, m) = (val[at], msk[at]);
                            let z = !v & !m & wm;
                            anyx |= m;
                            if and_like {
                                one &= v;
                                zero |= z;
                            } else {
                                one |= v;
                                zero &= z;
                            }
                        }
                        let (one, zero) = if invert { (zero, one) } else { (one, zero) };
                        let m = match mode {
                            // A controlling input decides the output even
                            // next to unknowns.
                            EvalMode::TriTable => !(one | zero) & wm,
                            EvalMode::Coarse => anyx,
                        };
                        val[out0 + w] = one & !m & wm;
                        msk[out0 + w] = m;
                    }
                }
                CellKind::Xor | CellKind::Xnor => {
                    // XOR has no controlling value, so the exact Kleene
                    // table and the coarse rule agree: any X → X.
                    let invert = op.kind == CellKind::Xnor;
                    for w in 0..words {
                        let wm = wmask(w);
                        let (mut x, mut m) = (0u64, 0u64);
                        for &i in ins {
                            let at = i as usize * words + w;
                            x ^= val[at];
                            m |= msk[at];
                        }
                        if invert {
                            x = !x;
                        }
                        val[out0 + w] = x & !m & wm;
                        msk[out0 + w] = m;
                    }
                }
                CellKind::Mux2 => {
                    let s = ins[0] as usize * words;
                    let a = ins[1] as usize * words;
                    let b = ins[2] as usize * words;
                    for w in 0..words {
                        let wm = wmask(w);
                        let (vs, ms) = (val[s + w], msk[s + w]);
                        let (va, ma) = (val[a + w], msk[a + w]);
                        let (vb, mb) = (val[b + w], msk[b + w]);
                        let routed_v = (vs & vb) | (!vs & va);
                        let (v, m) = match mode {
                            EvalMode::TriTable => {
                                // Unknown select still yields the common
                                // value when both data inputs agree.
                                let agree = !ma & !mb & !(va ^ vb);
                                let m = (!ms & ((vs & mb) | (!vs & ma))) | (ms & !agree);
                                ((routed_v & !ms) | (ms & agree & va), m)
                            }
                            EvalMode::Coarse => (routed_v, ms | ma | mb),
                        };
                        val[out0 + w] = v & !m & wm;
                        msk[out0 + w] = m & wm;
                    }
                }
                CellKind::Maj3 => {
                    let a = ins[0] as usize * words;
                    let b = ins[1] as usize * words;
                    let c = ins[2] as usize * words;
                    for w in 0..words {
                        let wm = wmask(w);
                        let (va, ma) = (val[a + w], msk[a + w]);
                        let (vb, mb) = (val[b + w], msk[b + w]);
                        let (vc, mc) = (val[c + w], msk[c + w]);
                        let maj_v = (va & vb) | (va & vc) | (vb & vc);
                        let (v, m) = match mode {
                            EvalMode::TriTable => {
                                // Two agreeing known inputs decide the
                                // majority regardless of the third.
                                let (za, zb, zc) = (!va & !ma & wm, !vb & !mb & wm, !vc & !mc & wm);
                                let one = maj_v;
                                let zero = (za & zb) | (za & zc) | (zb & zc);
                                (one, !(one | zero) & wm)
                            }
                            EvalMode::Coarse => (maj_v, ma | mb | mc),
                        };
                        val[out0 + w] = v & !m & wm;
                        msk[out0 + w] = m;
                    }
                }
                CellKind::HalfAdder | CellKind::FullAdder => {
                    let out1 = op.out1 as usize * words;
                    let a = ins[0] as usize * words;
                    let b = ins[1] as usize * words;
                    let c = (op.kind == CellKind::FullAdder).then(|| ins[2] as usize * words);
                    for w in 0..words {
                        let wm = wmask(w);
                        let (va, ma) = (val[a + w], msk[a + w]);
                        let (vb, mb) = (val[b + w], msk[b + w]);
                        let (vc, mc) = c.map_or((0, 0), |c| (val[c + w], msk[c + w]));
                        let anyx = ma | mb | mc;
                        // Sum is a pure XOR: exact and coarse agree.
                        let sum_v = va ^ vb ^ vc;
                        val[out0 + w] = sum_v & !anyx & wm;
                        msk[out0 + w] = anyx;
                        // Carry: AND for the half adder, majority for the
                        // full adder — exactly the simulator's tri tables.
                        let carry_one = if c.is_some() {
                            (va & vb) | (va & vc) | (vb & vc)
                        } else {
                            va & vb
                        };
                        let (cv, cm) = match mode {
                            EvalMode::TriTable => {
                                let (za, zb) = (!va & !ma & wm, !vb & !mb & wm);
                                let carry_zero = if c.is_some() {
                                    let zc = !vc & !mc & wm;
                                    (za & zb) | (za & zc) | (zb & zc)
                                } else {
                                    za | zb
                                };
                                (carry_one, !(carry_one | carry_zero) & wm)
                            }
                            EvalMode::Coarse => (carry_one, anyx),
                        };
                        val[out1 + w] = cv & !cm & wm;
                        msk[out1 + w] = cm;
                    }
                }
                CellKind::Dff => unreachable!("flipflops are not part of the levelized order"),
            }
        }
    }
}
