//! # glitch-kernel
//!
//! A bit-parallel compiled simulation backend for the glitch-analysis
//! workspace: the *functional* counterpart of `glitch-sim`'s event-driven
//! [`ClockedSimulator`](../glitch_sim/index.html).
//!
//! [`KernelProgram::compile`] turns a validated, acyclic netlist into a
//! levelized straight-line program — one [`CellKind`](glitch_netlist::CellKind) op per combinational
//! cell, in topological order — that is then evaluated with word-wide
//! bitwise operations over a [`KernelState`]: 64 independent stimulus
//! *lanes* per `u64` word, any number of words. There is no event queue,
//! no per-event allocation, and no notion of time: the kernel computes the
//! zero-delay (functional) fixed point of every cycle.
//!
//! ## Three-valued planes
//!
//! Every net carries two bit-planes, a *value* plane and a *mask* plane,
//! encoding Kleene logic per lane:
//!
//! | value bit | mask bit | meaning |
//! |-----------|----------|---------|
//! | 0         | 0        | `0`     |
//! | 1         | 0        | `1`     |
//! | 0         | 1        | `X`     |
//!
//! The encoding is kept *canonical* (`value & mask == 0` always), so two
//! lanes are equal as `Tri` values exactly when both planes agree — plane
//! comparison is the whole equality check. The per-kind plane formulas are
//! pinned bit-identically against [`CellKind::try_evaluate_tri`](glitch_netlist::CellKind::try_evaluate_tri) by
//! proptests in this crate; [`EvalMode`] selects between the exact Kleene
//! tables and the coarse any-X-in → X-out approximation, mirroring the
//! event-driven simulator's `XEval` policy.
//!
//! ## Why a second backend
//!
//! A functionally quiet net cannot glitch under *any* delay assignment
//! (Függer et al., "Faithful Glitch Propagation in Binary Circuit
//! Models"), so a cheap functional pass is a sound pre-filter for the
//! expensive timed settle: the hybrid engine in `glitch-core` runs this
//! kernel over all seeds at once and only dispatches the cycles the kernel
//! could not prove quiet to the event queue.

mod program;
mod state;

pub use program::{DffSlot, EvalMode, KernelProgram};
pub use state::KernelState;

// Re-exported so kernel users can name the compile error without
// depending on glitch-netlist directly.
pub use glitch_netlist::NetlistError;
