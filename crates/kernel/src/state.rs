//! The mutable lane state a [`KernelProgram`](crate::KernelProgram)
//! evaluates over: two bit-planes per net, two per flipflop.

use glitch_netlist::{NetId, Tri};

/// Per-net value/mask planes for `lanes` parallel stimulus lanes.
///
/// Plane storage is word-major per net: net `n`'s planes occupy words
/// `n * words() .. (n + 1) * words()` of [`val_plane`](Self::val_planes)
/// and [`msk_planes`](Self::msk_planes), lane `l` living in bit `l % 64`
/// of word `l / 64`. All nets start as `X`; flipflop state starts from
/// the per-cell init resolved by
/// [`KernelProgram::new_state`](crate::KernelProgram::new_state).
///
/// Bits beyond `lanes` in the last word of every plane are kept zero, so
/// whole-word comparisons and popcounts never see garbage lanes.
#[derive(Debug, Clone)]
pub struct KernelState {
    pub(crate) lanes: usize,
    pub(crate) words: usize,
    /// All-ones for valid lanes of the last word of each plane.
    pub(crate) tail_mask: u64,
    pub(crate) val: Vec<u64>,
    pub(crate) msk: Vec<u64>,
    pub(crate) dff_val: Vec<u64>,
    pub(crate) dff_msk: Vec<u64>,
}

impl KernelState {
    pub(crate) fn new(net_count: usize, dff_count: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "a kernel state needs at least one lane");
        let words = lanes.div_ceil(64);
        let tail_mask = if lanes.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (lanes % 64)) - 1
        };
        let mut state = KernelState {
            lanes,
            words,
            tail_mask,
            val: vec![0; net_count * words],
            msk: vec![0; net_count * words],
            dff_val: vec![0; dff_count * words],
            dff_msk: vec![0; dff_count * words],
        };
        // Every net starts unknown: value 0, mask 1 on all valid lanes.
        for n in 0..net_count {
            for w in 0..words {
                state.msk[n * words + w] = state.word_mask(w);
            }
        }
        state
    }

    /// Number of parallel stimulus lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of `u64` words per plane (`ceil(lanes / 64)`).
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The valid-lane mask of plane word `w`.
    #[must_use]
    pub fn word_mask(&self, w: usize) -> u64 {
        if w + 1 == self.words {
            self.tail_mask
        } else {
            !0
        }
    }

    /// First word index of `net`'s planes.
    #[must_use]
    pub fn plane_base(&self, net: NetId) -> usize {
        net.index() * self.words
    }

    /// The raw value planes, word-major per net.
    #[must_use]
    pub fn val_planes(&self) -> &[u64] {
        &self.val
    }

    /// The raw mask planes, word-major per net.
    #[must_use]
    pub fn msk_planes(&self) -> &[u64] {
        &self.msk
    }

    /// The value of `net` in `lane`.
    #[must_use]
    pub fn get(&self, net: NetId, lane: usize) -> Tri {
        debug_assert!(lane < self.lanes);
        let at = self.plane_base(net) + lane / 64;
        let bit = 1u64 << (lane % 64);
        if self.msk[at] & bit != 0 {
            Tri::X
        } else if self.val[at] & bit != 0 {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    /// Drives `net` in `lane` to a known boolean (the stimulus path).
    pub fn set_bool(&mut self, net: NetId, lane: usize, value: bool) {
        self.set(net, lane, if value { Tri::One } else { Tri::Zero });
    }

    /// Drives `net` in `lane` to an arbitrary three-valued value.
    pub fn set(&mut self, net: NetId, lane: usize, value: Tri) {
        debug_assert!(lane < self.lanes);
        let at = self.plane_base(net) + lane / 64;
        let bit = 1u64 << (lane % 64);
        match value {
            Tri::Zero => {
                self.val[at] &= !bit;
                self.msk[at] &= !bit;
            }
            Tri::One => {
                self.val[at] |= bit;
                self.msk[at] &= !bit;
            }
            Tri::X => {
                self.val[at] &= !bit;
                self.msk[at] |= bit;
            }
        }
    }

    /// Lane mask of the lanes in word `w` where `net`'s planes differ
    /// between `self` and `other` (as `Tri` values — canonical encoding
    /// makes plane inequality exactly value inequality).
    #[must_use]
    pub fn diff_word(&self, other: &KernelState, net: NetId, w: usize) -> u64 {
        let at = self.plane_base(net) + w;
        (self.val[at] ^ other.val[at]) | (self.msk[at] ^ other.msk[at])
    }

    /// Heap footprint of the plane storage, for cache accounting.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        (self.val.len() + self.msk.len() + self.dff_val.len() + self.dff_msk.len())
            * std::mem::size_of::<u64>()
    }
}
