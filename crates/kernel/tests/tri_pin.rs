//! Pins the kernel's word-wise plane formulas bit-identically against the
//! netlist crate's reference tables: every lane of a single-cell program
//! must decode to exactly what [`CellKind::try_evaluate_tri`] (TriTable
//! mode) or the any-X-in → X-out rule over [`CellKind::try_evaluate`]
//! (Coarse mode) produces for that lane's inputs.

use glitch_kernel::{EvalMode, KernelProgram};
use glitch_netlist::{CellKind, NetId, Netlist, Tri};
use proptest::prelude::*;

const KINDS: [CellKind; 14] = [
    CellKind::Const(false),
    CellKind::Const(true),
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And,
    CellKind::Or,
    CellKind::Nand,
    CellKind::Nor,
    CellKind::Xor,
    CellKind::Xnor,
    CellKind::Mux2,
    CellKind::Maj3,
    CellKind::HalfAdder,
    CellKind::FullAdder,
];

const ALL: [Tri; 3] = [Tri::Zero, Tri::One, Tri::X];

/// Decodes base-3 digits of `lane` into the cell's input vector.
fn lane_inputs(arity: usize, lane: usize) -> Vec<Tri> {
    (0..arity)
        .map(|i| ALL[(lane / 3usize.pow(i as u32)) % 3])
        .collect()
}

/// A netlist holding exactly one `kind` cell with `arity` inputs.
fn single_cell(kind: CellKind, arity: usize) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    let mut nl = Netlist::new("pin");
    let inputs: Vec<NetId> = (0..arity).map(|i| nl.add_input(format!("in{i}"))).collect();
    let outputs: Vec<NetId> = (0..kind.output_count())
        .map(|i| nl.add_net(format!("out{i}")))
        .collect();
    nl.add_cell(kind, "dut", inputs.clone(), outputs.clone())
        .expect("single cell is legal");
    for &out in &outputs {
        nl.mark_output(out);
    }
    (nl, inputs, outputs)
}

/// The event-driven simulator's coarse rule: any X input makes every
/// output X, otherwise the binary tables apply.
fn coarse_reference(kind: CellKind, inputs: &[Tri]) -> Vec<Tri> {
    let known: Option<Vec<bool>> = inputs.iter().map(|t| t.to_bool()).collect();
    match known {
        Some(bools) => kind
            .try_evaluate(&bools)
            .expect("legal arity")
            .into_iter()
            .map(Tri::from)
            .collect(),
        None => vec![Tri::X; kind.output_count()],
    }
}

/// Evaluates every one of the `3^arity` input combinations in its own
/// lane and checks each output lane against the per-lane oracle.
fn check_exhaustive(kind: CellKind, arity: usize, mode: EvalMode) {
    let (nl, input_nets, output_nets) = single_cell(kind, arity);
    let program = KernelProgram::compile(&nl).expect("compiles");
    let lanes = 3usize.pow(arity as u32);
    let mut state = program.new_state(lanes, Tri::X);
    for lane in 0..lanes {
        for (i, &net) in input_nets.iter().enumerate() {
            state.set(net, lane, lane_inputs(arity, lane)[i]);
        }
    }
    program.eval(&mut state, mode);
    for lane in 0..lanes {
        let ins = lane_inputs(arity, lane);
        let want = match mode {
            EvalMode::TriTable => kind.try_evaluate_tri(&ins).expect("legal arity"),
            EvalMode::Coarse => coarse_reference(kind, &ins),
        };
        for (o, &net) in output_nets.iter().enumerate() {
            assert_eq!(
                state.get(net, lane),
                want[o],
                "{kind:?}/{mode:?} arity {arity} output {o} on {ins:?}"
            );
        }
    }
}

fn legal_arities(kind: CellKind) -> Vec<usize> {
    match kind.fixed_input_arity() {
        Some(n) => vec![n],
        None => vec![kind.min_input_arity().max(1), 2, 3, 4, 5],
    }
}

#[test]
fn tri_table_planes_match_try_evaluate_tri_exhaustively() {
    for kind in KINDS {
        for arity in legal_arities(kind) {
            check_exhaustive(kind, arity, EvalMode::TriTable);
        }
    }
}

#[test]
fn coarse_planes_match_the_any_x_rule_exhaustively() {
    for kind in KINDS {
        for arity in legal_arities(kind) {
            check_exhaustive(kind, arity, EvalMode::Coarse);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random (kind, arity, lane placement): a sparse subset of lanes is
    /// driven with random tri inputs, with lane counts crossing word
    /// boundaries, and every driven lane must match the reference table.
    #[test]
    fn random_lanes_match_reference_tables(
        kind_word in 0u64..u64::MAX,
        arity_word in 0u64..u64::MAX,
        lane_count in 1usize..200,
        input_word in 0u64..u64::MAX,
        coarse in proptest::bool::ANY,
    ) {
        let kind = KINDS[(kind_word % KINDS.len() as u64) as usize];
        let arity = match kind.fixed_input_arity() {
            Some(n) => n,
            None => kind.min_input_arity().max(1) + (arity_word % 4) as usize,
        };
        let mode = if coarse { EvalMode::Coarse } else { EvalMode::TriTable };
        let (nl, input_nets, output_nets) = single_cell(kind, arity);
        let program = KernelProgram::compile(&nl).expect("compiles");
        let mut state = program.new_state(lane_count, Tri::X);
        let combos = 3usize.pow(arity as u32);
        let mut per_lane = Vec::with_capacity(lane_count);
        for lane in 0..lane_count {
            // A different combo per lane, offset by the sampled word.
            let combo = (lane + input_word as usize) % combos;
            let ins = lane_inputs(arity, combo);
            for (i, &net) in input_nets.iter().enumerate() {
                state.set(net, lane, ins[i]);
            }
            per_lane.push(ins);
        }
        program.eval(&mut state, mode);
        for (lane, ins) in per_lane.iter().enumerate() {
            let want = match mode {
                EvalMode::TriTable => kind.try_evaluate_tri(ins).expect("legal arity"),
                EvalMode::Coarse => coarse_reference(kind, ins),
            };
            for (o, &net) in output_nets.iter().enumerate() {
                prop_assert_eq!(
                    state.get(net, lane),
                    want[o],
                    "{:?}/{:?} arity {} output {} on {:?}",
                    kind, mode, arity, o, ins
                );
            }
        }
    }
}
