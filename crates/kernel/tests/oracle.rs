//! Differential oracle: the compiled kernel against the event-driven
//! reference simulator, on random synchronous circuits.
//!
//! Two layers of evidence that the kernel is a faithful *functional*
//! model of `glitch_sim::ClockedSimulator`:
//!
//! * **Value identity.** For random feed-forward netlists and random
//!   stimuli, every net's end-of-cycle value out of [`KernelProgram::eval`]
//!   equals the settled value of a per-lane [`ClockedSimulator`] after
//!   `step` — every cycle, every lane, both for binary runs
//!   ([`SimOptions::default`]) and for uninitialised-flipflop three-valued
//!   runs ([`SimOptions::x_init`]). Lane counts cross the 64-bit word
//!   boundary (1, 2, 64, 100) so tail-masking is exercised.
//! * **Report identity.** The hybrid engine (kernel prepass pruning the
//!   event-driven settle) must be *bit-identical* to the plain queue
//!   engine in everything it reports: `analyze --seeds` aggregates and
//!   `check` verification reports compare with `==` at any jobs count.
//!   The only permitted difference is the presence of kernel telemetry.

#[path = "../../sim/tests/support/mod.rs"]
#[allow(dead_code)]
mod support;

use glitch_core::arith::{AdderStyle, ArrayMultiplier};
use glitch_core::verify::{BudgetSpec, CheckSuite};
use glitch_core::{AnalysisConfig, EngineKind, GlitchAnalyzer};
use glitch_kernel::KernelProgram;
use glitch_netlist::{Bus, NetId, Netlist, Tri};
use glitch_sim::{kernel_eval_mode, ClockedSimulator, InputAssignment, SimOptions, UnitDelay};
use proptest::prelude::*;
use support::RandomNetlist;

/// Per-lane stimulus derived from the shared cycle words: rotate and
/// xor-mix by lane so lanes diverge, and clear the skip bit so every
/// input is assigned every cycle (held-over inputs are the event-driven
/// simulator's concern, not part of the functional contract under test).
fn lane_assignments(inputs: &[NetId], cycle_words: &[u64], lane: usize) -> Vec<InputAssignment> {
    let mixed: Vec<u64> = cycle_words
        .iter()
        .map(|&word| {
            (word.rotate_left(lane as u32 % 31)
                ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1))
                & !(1 << 63)
        })
        .collect();
    support::build_assignments(inputs, &mixed)
}

/// Runs `lanes` independent stimuli through one kernel state and through
/// `lanes` reference simulators, comparing every net after every cycle.
fn assert_kernel_matches_clocked(
    netlist: &Netlist,
    inputs: &[NetId],
    cycle_words: &[u64],
    lanes: usize,
    options: SimOptions,
) {
    let program = KernelProgram::compile(netlist).expect("support netlists are acyclic");
    let mode = kernel_eval_mode(options.x_eval);
    let mut state = program.new_state(lanes, Tri::from(options.dff_init));
    let per_lane: Vec<Vec<InputAssignment>> = (0..lanes)
        .map(|lane| lane_assignments(inputs, cycle_words, lane))
        .collect();
    let mut sims: Vec<ClockedSimulator<'_>> = (0..lanes)
        .map(|_| {
            ClockedSimulator::with_options(netlist, UnitDelay, options)
                .expect("support netlists validate")
        })
        .collect();

    for cycle in 0..cycle_words.len() {
        program.begin_cycle(&mut state);
        for (lane, assignments) in per_lane.iter().enumerate() {
            for &(net, value) in assignments[cycle].assignments() {
                state.set_bool(net, lane, value);
            }
        }
        program.eval(&mut state, mode);
        for (lane, sim) in sims.iter_mut().enumerate() {
            sim.step(per_lane[lane][cycle].clone())
                .expect("unit-delay settle fits the default budget");
            for index in 0..netlist.net_count() {
                let net = NetId::from_index(index);
                let expect = Tri::from(sim.net_value(net));
                let got = state.get(net, lane);
                assert_eq!(
                    got, expect,
                    "net {index} diverged: cycle {cycle}, lane {lane}/{lanes}, {options:?}"
                );
            }
        }
        program.latch(&mut state);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-of-cycle value identity on random circuits, binary and
    /// three-valued, across word-boundary lane counts.
    #[test]
    fn kernel_values_match_the_event_driven_simulator(
        input_count in 1usize..6,
        gate_words in proptest::collection::vec(0u64..u64::MAX, 1..48),
        cycle_words in proptest::collection::vec(0u64..u64::MAX, 4..10),
    ) {
        let RandomNetlist { netlist, inputs } = support::build_netlist(input_count, &gate_words);
        for lanes in [1usize, 2, 64, 100] {
            assert_kernel_matches_clocked(&netlist, &inputs, &cycle_words, lanes,
                SimOptions::default());
            assert_kernel_matches_clocked(&netlist, &inputs, &cycle_words, lanes,
                SimOptions::x_init());
        }
    }
}

fn analyzer(engine: EngineKind, cycles: u64, options: SimOptions) -> GlitchAnalyzer {
    GlitchAnalyzer::new(AnalysisConfig {
        cycles,
        engine,
        options,
        ..AnalysisConfig::default()
    })
}

/// The check fixture from `glitch-core`: a counter-like circuit whose
/// uninitialised flipflop reaches an output, so the X-propagation checker
/// has something to find.
fn x_bug_fixture() -> (Netlist, Vec<Bus>) {
    let mut nl = Netlist::new("oracle x fixture");
    let en = nl.add_input("en");
    let d = nl.add_input("d");
    let q = nl.dff(d, "q");
    let y = nl.xor2(en, q, "y");
    let z = nl.and2(en, q, "z");
    nl.mark_output(y);
    nl.mark_output(z);
    let buses = vec![Bus::new(nl.inputs().to_vec())];
    (nl, buses)
}

#[test]
fn hybrid_analyze_is_bit_identical_to_queue() {
    let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);
    let buses = vec![mult.x.clone(), mult.y.clone()];
    let seeds = [3u64, 5, 8, 13];
    for jobs in [1usize, 3] {
        let queue = analyzer(EngineKind::Queue, 80, SimOptions::default())
            .analyze_seeds(&mult.netlist, &buses, &[], &seeds, jobs)
            .expect("queue analysis runs");
        let hybrid = analyzer(EngineKind::Hybrid, 80, SimOptions::default())
            .analyze_seeds(&mult.netlist, &buses, &[], &seeds, jobs)
            .expect("hybrid analysis runs");
        assert_eq!(hybrid.aggregate, queue.aggregate, "jobs={jobs}");
        assert_eq!(hybrid.power, queue.power, "jobs={jobs}");
        assert_eq!(hybrid.seeds, queue.seeds, "jobs={jobs}");
        // ActivityReport carries no `==`; its rendering is a faithful
        // function of the data, so string identity is data identity.
        assert_eq!(
            format!("{:?}", hybrid.activity),
            format!("{:?}", queue.activity),
            "jobs={jobs}"
        );
        // The telemetry block is the one sanctioned difference.
        assert!(hybrid.kernel.is_some(), "hybrid reports its prepass");
        assert!(queue.kernel.is_none(), "queue has no kernel telemetry");
    }
}

#[test]
fn hybrid_analyze_matches_queue_on_random_sequential_circuits() {
    // A fixed handful of generator words: sequential (DFF-bearing) random
    // circuits under the x-init preset, the adversarial case for the
    // prepass's quiet-cycle proofs.
    let gate_words: Vec<u64> = (0..24)
        .map(|i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 11))
        .collect();
    let RandomNetlist { netlist, inputs } = support::build_netlist(4, &gate_words);
    let buses = vec![Bus::new(inputs)];
    let seeds = [21u64, 34, 55];
    for options in [SimOptions::default(), SimOptions::x_init()] {
        let queue = analyzer(EngineKind::Queue, 60, options)
            .analyze_seeds(&netlist, &buses, &[], &seeds, 2)
            .expect("queue analysis runs");
        let hybrid = analyzer(EngineKind::Hybrid, 60, options)
            .analyze_seeds(&netlist, &buses, &[], &seeds, 2)
            .expect("hybrid analysis runs");
        assert_eq!(hybrid.aggregate, queue.aggregate, "{options:?}");
        assert_eq!(hybrid.power, queue.power, "{options:?}");
        assert_eq!(
            format!("{:?}", hybrid.activity),
            format!("{:?}", queue.activity),
            "{options:?}"
        );
    }
}

#[test]
fn hybrid_check_report_is_bit_identical_to_queue() {
    let (nl, buses) = x_bug_fixture();
    let budgets = BudgetSpec::parse_list("*=cycle")
        .expect("literal spec parses")
        .resolve(&nl)
        .expect("fixture nets resolve");
    let suite = CheckSuite::new()
        .with_x_propagation()
        .with_budgets(budgets)
        .with_hazards();
    let seeds = [7u64, 8, 9, 10];
    for jobs in [1usize, 2] {
        let queue = analyzer(EngineKind::Queue, 60, SimOptions::x_init())
            .check_seeds(&nl, &buses, &[], &suite, &seeds, jobs)
            .expect("queue check runs");
        let hybrid = analyzer(EngineKind::Hybrid, 60, SimOptions::x_init())
            .check_seeds(&nl, &buses, &[], &suite, &seeds, jobs)
            .expect("hybrid check runs");
        assert_eq!(hybrid.report, queue.report, "jobs={jobs}");
        assert_eq!(
            hybrid.analysis.aggregate, queue.analysis.aggregate,
            "jobs={jobs}"
        );
        // The fixture's bug must actually be found, under either engine.
        assert!(!queue.report.passed(), "the uninitialised q reaches y");
    }
}
