//! Shared resolution of analysis parameters — one implementation behind
//! both the CLI's flags and the daemon's protocol fields.
//!
//! The serving layer's byte-identity contract (a daemon response equals
//! the one-shot CLI `--json` output) only holds if both front ends resolve
//! `tech`/`delay`/`seeds`/`jobs`/`flips` to exactly the same engine
//! configuration, including defaults and error messages. These functions
//! are that single source of truth; `glitch-cli` maps [`ParamError`] onto
//! its own usage/run split.

use glitch_core::netlist::{Bus, NetId, Netlist};
use glitch_core::power::Technology;
use glitch_core::sim::RandomStimulus;
use glitch_core::verify::{BudgetSpec, CheckSuite, CycleFilter};
use glitch_core::{AnalysisConfig, DelayKind, DeltaStimulus, EngineKind, SimBaseline};
use glitch_io::GateLibrary;

/// A rejected parameter. `Usage` marks a malformed value (the CLI appends
/// its usage text); `Run` marks a value that is well-formed but does not
/// fit the circuit (unknown net, out-of-range cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// Malformed parameter value.
    Usage(String),
    /// Well-formed value rejected against the loaded circuit.
    Run(String),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::Usage(m) | ParamError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for ParamError {}

fn usage(message: impl Into<String>) -> ParamError {
    ParamError::Usage(message.into())
}

fn run(message: impl Into<String>) -> ParamError {
    ParamError::Run(message.into())
}

/// Resolves a `tech` name (`0.8um` default, `65nm`) to a gate library.
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for unknown technology names.
pub fn library_for_tech(tech: Option<&str>) -> Result<GateLibrary, ParamError> {
    let library = GateLibrary::standard();
    Ok(match tech {
        None | Some("0.8um") => library,
        Some("65nm") => library.with_technology(Technology::cmos_65nm_1v2()),
        Some(other) => {
            return Err(usage(format!(
                "--tech must be 0.8um or 65nm, got `{other}`"
            )));
        }
    })
}

/// Resolves a delay-model name (`unit` default, `zero`, `adder`,
/// `library`) to a [`DelayKind`].
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for unknown model names.
pub fn delay_kind(name: Option<&str>, library: &GateLibrary) -> Result<DelayKind, ParamError> {
    Ok(match name {
        None | Some("unit") => DelayKind::Unit,
        Some("zero") => DelayKind::Zero,
        Some("adder") => DelayKind::RealisticAdderCells,
        Some("library") => DelayKind::Custom(library.cell_delay()),
        Some(other) => {
            return Err(usage(format!(
                "--delay must be unit, zero, adder or library, got `{other}`"
            )));
        }
    })
}

/// Parses a `delays` comma list (default `unit,zero,adder`) into
/// `(label, DelayKind)` pairs for the delay-model sweep.
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for unknown entries.
pub fn delay_sweep_models(
    list: Option<&str>,
    library: &GateLibrary,
) -> Result<Vec<(String, DelayKind)>, ParamError> {
    let list = list.unwrap_or("unit,zero,adder");
    list.split(',')
        .map(|name| {
            let kind = match name.trim() {
                "unit" => DelayKind::Unit,
                "zero" => DelayKind::Zero,
                "adder" => DelayKind::RealisticAdderCells,
                "library" => DelayKind::Custom(library.cell_delay()),
                other => {
                    return Err(usage(format!(
                        "--delays entries must be unit, zero, adder or library, got `{other}`"
                    )));
                }
            };
            Ok((name.trim().to_string(), kind))
        })
        .collect()
}

/// Resolves an engine name (`queue` default, `kernel`, `hybrid`) to an
/// [`EngineKind`].
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for unknown engine names.
pub fn engine_kind(name: Option<&str>) -> Result<EngineKind, ParamError> {
    match name {
        None => Ok(EngineKind::Queue),
        Some(text) => text
            .parse()
            .map_err(|e: String| usage(format!("--engine: {e}"))),
    }
}

/// The common analysis configuration from resolved scalar parameters.
/// `None` fields take the [`AnalysisConfig::default`] values, exactly as
/// the CLI's omitted flags do.
///
/// # Errors
///
/// As for [`delay_kind`] and [`engine_kind`].
pub fn analysis_config(
    library: &GateLibrary,
    cycles: Option<u64>,
    seed: Option<u64>,
    frequency_mhz: Option<f64>,
    delay: Option<&str>,
    engine: Option<&str>,
) -> Result<AnalysisConfig, ParamError> {
    let defaults = AnalysisConfig::default();
    Ok(AnalysisConfig {
        cycles: cycles.unwrap_or(defaults.cycles),
        seed: seed.unwrap_or(defaults.seed),
        frequency: frequency_mhz.unwrap_or(defaults.frequency / 1e6) * 1e6,
        technology: *library.technology(),
        delay: delay_kind(delay, library)?,
        engine: engine_kind(engine)?,
        options: defaults.options,
    })
}

/// Groups the primary inputs into buses of at most 32 bits so the random
/// stimulus can drive arbitrarily wide circuits.
pub fn input_buses(netlist: &Netlist) -> Vec<Bus> {
    netlist
        .inputs()
        .chunks(32)
        .map(|chunk| Bus::new(chunk.to_vec()))
        .collect()
}

/// The stimulus seeds of a multi-seed run. A single seed is the raw base
/// value — so `seeds = 1` reproduces a plain single-seed run exactly —
/// while `n > 1` derives decorrelated per-shard seeds via
/// [`RandomStimulus::shard_seeds`].
pub fn stimulus_seeds(base: u64, seeds: usize) -> Vec<u64> {
    if seeds == 1 {
        vec![base]
    } else {
        RandomStimulus::shard_seeds(base, seeds)
    }
}

/// Resolves `seeds`/`jobs` requests. The seed count defaults to 1; the
/// worker count defaults to `min(seeds * models, hardware threads)`, where
/// `models` is the number of delay models swept (1 except for `sweep`).
/// Mirrors the CLI's validation, message for message.
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for zero counts or a `jobs` value with
/// nothing to parallelise.
pub fn seeds_and_jobs(
    seeds: Option<usize>,
    jobs: Option<usize>,
    models: usize,
) -> Result<(usize, usize), ParamError> {
    let seeds = seeds.unwrap_or(1);
    if seeds == 0 {
        return Err(usage("--seeds must be at least 1"));
    }
    if jobs.is_some() && seeds * models.max(1) == 1 {
        return Err(usage(
            "--jobs has nothing to parallelise here; combine it with --seeds <n> \
             (or, for sweep, more than one delay model)",
        ));
    }
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let default_jobs = (seeds * models.max(1)).min(hardware).max(1);
    let jobs = jobs.unwrap_or(default_jobs);
    if jobs == 0 {
        return Err(usage("--jobs must be at least 1"));
    }
    Ok((seeds, jobs))
}

/// One parsed flip entry: `cycle:net` (invert the baseline value) or
/// `cycle:net=0|1` (force a value).
pub struct FlipSpec {
    /// The cycle to override.
    pub cycle: u64,
    /// The overridden primary input.
    pub net: NetId,
    /// Its name, for reporting.
    pub name: String,
    /// Forced value, or `None` to invert the baseline's.
    pub value: Option<bool>,
}

/// Parses a flip comma list against the netlist's primary inputs.
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for malformed entries and
/// [`ParamError::Run`] for unknown nets.
pub fn parse_flips(spec: &str, netlist: &Netlist) -> Result<Vec<FlipSpec>, ParamError> {
    spec.split(',')
        .map(|entry| {
            let entry = entry.trim();
            let (cycle_text, rest) = entry.split_once(':').ok_or_else(|| {
                usage(format!(
                    "--flip entries are cycle:net or cycle:net=0|1, got `{entry}`"
                ))
            })?;
            let cycle: u64 = cycle_text
                .parse()
                .map_err(|_| usage(format!("--flip: cannot parse cycle `{cycle_text}`")))?;
            let (name, value) = match rest.rsplit_once('=') {
                Some((name, "0")) => (name, Some(false)),
                Some((name, "1")) => (name, Some(true)),
                Some((_, bad)) => {
                    return Err(usage(format!("--flip: value must be 0 or 1, got `{bad}`")));
                }
                None => (rest, None),
            };
            let net = netlist
                .find_net(name)
                .ok_or_else(|| run(format!("--flip: no net named `{name}` in the netlist")))?;
            if !netlist.net(net).is_primary_input() {
                return Err(usage(format!(
                    "--flip: net `{name}` is not a primary input"
                )));
            }
            Ok(FlipSpec {
                cycle,
                net,
                name: name.to_string(),
                value,
            })
        })
        .collect()
}

/// Rejects flips addressing cycles beyond the configured run — checked
/// before any simulation, so an out-of-range flip never costs a baseline
/// pass.
///
/// # Errors
///
/// Returns [`ParamError::Usage`] naming the offending cycle.
pub fn check_flip_cycles(flips: &[FlipSpec], cycles: u64) -> Result<(), ParamError> {
    for flip in flips {
        if flip.cycle >= cycles {
            return Err(usage(format!(
                "--flip: cycle {} is beyond the {cycles}-cycle run",
                flip.cycle
            )));
        }
    }
    Ok(())
}

/// One applied flip: `(net name, cycle, driven value)`.
pub type AppliedFlip = (String, u64, bool);

/// Applies a parsed flip list against a recorded baseline: entries
/// without an explicit value invert the baseline's, and duplicate
/// `cycle:net` pairs are rejected with their location (the
/// [`DeltaStimulus::try_set`] construction contract).
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for duplicate `cycle:net` pairs.
pub fn flips_to_delta(
    flips: &[FlipSpec],
    baseline: &SimBaseline,
) -> Result<(DeltaStimulus, Vec<AppliedFlip>), ParamError> {
    let mut delta = DeltaStimulus::new();
    let mut applied: Vec<AppliedFlip> = Vec::new();
    for flip in flips {
        let value = flip
            .value
            .unwrap_or(baseline.input_value(flip.cycle, flip.net) != glitch_core::sim::Value::One);
        delta = delta.try_set(flip.cycle, flip.net, value).map_err(|_| {
            usage(format!(
                "--flip: duplicate override for `{}` in cycle {} \
                 (each cycle:net pair may appear once)",
                flip.name, flip.cycle
            ))
        })?;
        applied.push((flip.name.clone(), flip.cycle, value));
    }
    Ok((delta, applied))
}

/// Parses a stability comma list: `net` (all cycles) or `net@from..to`
/// (inclusive cycle range).
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for malformed entries and
/// [`ParamError::Run`] for unknown nets.
pub fn parse_stability(
    list: &str,
    netlist: &Netlist,
) -> Result<Vec<(NetId, CycleFilter)>, ParamError> {
    list.split(',')
        .map(|entry| {
            let entry = entry.trim();
            let (name, filter) = match entry.split_once('@') {
                None => (entry, CycleFilter::All),
                Some((name, range)) => {
                    let (from, to) = range.split_once("..").ok_or_else(|| {
                        usage(format!(
                            "--stable entries are net or net@from..to, got `{entry}`"
                        ))
                    })?;
                    let parse = |text: &str| -> Result<u64, ParamError> {
                        text.trim().parse().map_err(|_| {
                            usage(format!(
                                "--stable: cannot parse cycle `{text}` in `{entry}`"
                            ))
                        })
                    };
                    let (from, to) = (parse(from)?, parse(to)?);
                    if from > to {
                        return Err(usage(format!(
                            "--stable: empty cycle range {from}..{to} in `{entry}` \
                             (from must not exceed to)"
                        )));
                    }
                    (name, CycleFilter::Range { from, to })
                }
            };
            let net = netlist
                .find_net(name.trim())
                .ok_or_else(|| run(format!("--stable: no net named `{}`", name.trim())))?;
            Ok((net, filter))
        })
        .collect()
}

/// Builds the checker suite for `check`. The X-propagation checker is
/// always attached; hazards, budgets and stability assertions are opt-in.
/// `budgets_file` is the already-read contents of a budgets file (with
/// its display name for error messages); `budget` entries override it.
///
/// # Errors
///
/// Returns [`ParamError::Usage`] for malformed budget/stable lists and
/// [`ParamError::Run`] for budget nets missing from the circuit.
pub fn build_check_suite(
    netlist: &Netlist,
    budget: Option<&str>,
    budgets_file: Option<(&str, &str)>,
    hazards: bool,
    stable: Option<&str>,
) -> Result<CheckSuite, ParamError> {
    let mut suite = CheckSuite::new().with_x_propagation();
    let mut spec = BudgetSpec::new();
    if let Some((name, text)) = budgets_file {
        spec.extend(BudgetSpec::parse_file(text).map_err(|e| run(format!("{name}: {e}")))?);
    }
    if let Some(list) = budget {
        spec.extend(BudgetSpec::parse_list(list).map_err(|e| usage(e.to_string()))?);
    }
    if !spec.is_empty() {
        let resolved = spec
            .resolve(netlist)
            .map_err(|e| run(format!("--budget: {e}")))?;
        suite = suite.with_budgets(resolved);
    }
    if hazards {
        suite = suite.with_hazards();
    }
    if let Some(list) = stable {
        for (net, filter) in parse_stability(list, netlist)? {
            suite = suite.with_stability(net, filter);
        }
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_pair() -> Netlist {
        let mut nl = Netlist::new("pair");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b, "y");
        nl.mark_output(y);
        nl
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let library = library_for_tech(None).unwrap();
        let config = analysis_config(&library, None, None, None, None, None).unwrap();
        let defaults = AnalysisConfig::default();
        assert_eq!(config.cycles, defaults.cycles);
        assert_eq!(config.seed, defaults.seed);
        assert_eq!(config.frequency, defaults.frequency);
        assert_eq!(config.delay, DelayKind::Unit);
        assert_eq!(config.engine, EngineKind::Queue);
        assert_eq!(seeds_and_jobs(None, None, 1).unwrap(), (1, 1));
        assert!(library_for_tech(Some("90nm")).is_err());
        assert!(delay_kind(Some("psychic"), &library).is_err());
    }

    #[test]
    fn engine_names_resolve() {
        assert_eq!(engine_kind(None).unwrap(), EngineKind::Queue);
        assert_eq!(engine_kind(Some("queue")).unwrap(), EngineKind::Queue);
        assert_eq!(engine_kind(Some("kernel")).unwrap(), EngineKind::Kernel);
        assert_eq!(engine_kind(Some("hybrid")).unwrap(), EngineKind::Hybrid);
        assert!(matches!(
            engine_kind(Some("express")),
            Err(ParamError::Usage(_))
        ));
    }

    #[test]
    fn jobs_without_parallel_work_is_rejected() {
        let err = seeds_and_jobs(Some(1), Some(4), 1).unwrap_err();
        assert!(matches!(err, ParamError::Usage(_)));
        assert!(seeds_and_jobs(Some(1), Some(4), 3).is_ok());
        assert!(seeds_and_jobs(Some(0), None, 1).is_err());
        assert!(seeds_and_jobs(Some(2), Some(0), 1).is_err());
    }

    #[test]
    fn flip_lists_parse_and_validate() {
        let nl = xor_pair();
        let flips = parse_flips("0:a,3:b=1", &nl).unwrap();
        assert_eq!(flips.len(), 2);
        assert_eq!(flips[1].value, Some(true));
        assert!(check_flip_cycles(&flips, 4).is_ok());
        assert!(check_flip_cycles(&flips, 3).is_err());
        assert!(parse_flips("nope", &nl).is_err());
        assert!(parse_flips("0:zz", &nl).is_err());
        assert!(parse_flips("0:y", &nl).is_err(), "y is not an input");
    }

    #[test]
    fn stability_and_suite_build() {
        let nl = xor_pair();
        let pairs = parse_stability("y@2..5,a", &nl).unwrap();
        assert_eq!(pairs.len(), 2);
        assert!(parse_stability("y@5..2", &nl).is_err());
        let suite = build_check_suite(&nl, Some("y=3"), None, true, Some("a")).unwrap();
        assert!(suite.checker_count() >= 3);
        assert!(build_check_suite(&nl, Some("??"), None, false, None).is_err());
    }
}
