//! The daemon: a `TcpListener` accept loop, a fixed worker pool draining
//! a bounded job queue, and graceful shutdown that finishes every
//! admitted job before the process exits.
//!
//! One thread per connection reads JSON-lines requests; control ops
//! (`ping`, `status`, `metrics`, `shutdown`) are answered inline, jobs
//! are queued for the workers. Admission control sheds jobs once the
//! queue is full — a shed request gets an immediate error line rather
//! than unbounded latency. Every request gets a daemon-wide monotonic id
//! (assigned at the connection, before admission) that threads through
//! the trace spans and the `--access-log` line. A `reduce` job with
//! `"progress": true` streams interim progress lines back on the same
//! connection before its final response. Shutdown (protocol request or
//! Ctrl-C on Unix) stops admission, drains the queue, flushes the Chrome
//! trace and removes the baseline spill directory.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::engine::{Engine, RequestContext};
use crate::protocol::{error_response, JobKind, JobRequest, Request};

/// How the daemon binds, sizes its pool and budgets its cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port (the chosen
    /// port is printed on the `listening` line).
    pub port: u16,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Cache byte budget (0 = unbounded).
    pub cache_bytes: usize,
    /// Admission bound: jobs queued beyond in-flight ones before shedding.
    pub max_queue: usize,
    /// Chrome-trace output path, flushed at shutdown.
    pub trace_out: Option<String>,
    /// Access-log path: one JSON line per request, rotated past
    /// `access_log_max_bytes`.
    pub access_log: Option<String>,
    /// Rotation threshold for the access log.
    pub access_log_max_bytes: u64,
}

impl ServeConfig {
    /// A config with the default pool (`workers`) and queue sizing.
    #[must_use]
    pub fn new(port: u16, workers: usize, cache_bytes: usize) -> ServeConfig {
        let workers = workers.max(1);
        ServeConfig {
            port,
            workers,
            cache_bytes,
            max_queue: workers * 8,
            trace_out: None,
            access_log: None,
            access_log_max_bytes: glitch_obs::DEFAULT_EVENT_LOG_MAX_BYTES,
        }
    }
}

/// What a worker sends back for one job: zero or more interim lines
/// (reduce progress), then exactly one final response line.
enum Reply {
    Interim(String),
    Final(String),
}

/// A queued job: what to run, its request id, when it was admitted, and
/// where to send the response lines.
struct Job {
    kind: JobKind,
    request: JobRequest,
    id: u64,
    enqueued_micros: u64,
    reply: mpsc::Sender<Reply>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The worker-pool queue. The shutdown bit lives inside the same mutex as
/// the job list so "still admitting?" and "push" are one atomic step: a
/// job is either rejected at admission or guaranteed to drain.
struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

enum Admission {
    Queued(mpsc::Receiver<Reply>),
    Shed(&'static str),
}

impl Queue {
    fn new() -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        }
    }

    fn enqueue(
        &self,
        kind: JobKind,
        request: JobRequest,
        id: u64,
        enqueued_micros: u64,
        max_queue: usize,
    ) -> (Admission, usize) {
        let mut state = self.state.lock().expect("queue lock");
        if state.shutdown {
            return (Admission::Shed("daemon is shutting down"), state.jobs.len());
        }
        if state.jobs.len() >= max_queue {
            return (
                Admission::Shed("daemon is saturated; retry later"),
                state.jobs.len(),
            );
        }
        let (reply, receiver) = mpsc::channel();
        state.jobs.push_back(Job {
            kind,
            request,
            id,
            enqueued_micros,
            reply,
        });
        let depth = state.jobs.len();
        self.available.notify_one();
        (Admission::Queued(receiver), depth)
    }

    /// The current number of queued (not yet dequeued) jobs.
    fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }

    /// Blocks for the next job; `None` once shutdown is requested and the
    /// queue has fully drained.
    fn next_job(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    fn request_shutdown(&self) {
        self.state.lock().expect("queue lock").shutdown = true;
        self.available.notify_all();
    }
}

#[cfg(unix)]
mod sigint {
    //! A minimal SIGINT hook (no external crates): the handler only flips
    //! an atomic, the server's watchdog thread does the actual shutdown.

    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        // SAFETY: installs an async-signal-safe handler (a single atomic
        // store) for SIGINT; `signal` itself has no memory preconditions.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Everything the shutdown path needs, shared by the protocol handler,
/// the Ctrl-C watchdog and the accept loop.
struct Shutdown {
    flag: AtomicBool,
    port: u16,
}

impl Shutdown {
    fn trigger(&self, queue: &Queue) {
        self.flag.store(true, Ordering::SeqCst);
        queue.request_shutdown();
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }

    fn requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Runs the daemon until a `shutdown` request (or Ctrl-C) drains it.
/// Prints `glitch-serve listening on 127.0.0.1:<port>` once ready — with
/// `port: 0`, that line is where the chosen port is announced.
///
/// # Errors
///
/// Returns a message when the listen socket cannot be bound or the trace
/// file cannot be written.
pub fn run_server(config: &ServeConfig) -> Result<(), String> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))
        .map_err(|e| format!("cannot listen on 127.0.0.1:{}: {e}", config.port))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?
        .port();
    let spill_dir =
        std::env::temp_dir().join(format!("glitch-serve-{}-{port}", std::process::id()));
    let mut engine = Engine::new(config.cache_bytes, Some(spill_dir.clone()));
    if let Some(path) = &config.access_log {
        engine.set_access_log(path, config.access_log_max_bytes)?;
    }
    let engine = Arc::new(engine);
    let queue = Arc::new(Queue::new());
    let shutdown = Arc::new(Shutdown {
        flag: AtomicBool::new(false),
        port,
    });

    let workers: Vec<_> = (1..=config.workers)
        .map(|track| {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                while let Some(job) = queue.next_job() {
                    let ctx = RequestContext {
                        id: job.id,
                        queue_wait_us: engine
                            .clock()
                            .now_micros()
                            .saturating_sub(job.enqueued_micros),
                    };
                    let reply = job.reply.clone();
                    let emit = move |line: String| {
                        // The client may already be gone; keep reducing.
                        let _ = reply.send(Reply::Interim(line));
                    };
                    let interim: Option<&(dyn Fn(String) + Sync)> = if job.request.progress {
                        Some(&emit)
                    } else {
                        None
                    };
                    let line = engine.run_job(job.kind, &job.request, track as u64, ctx, interim);
                    // The client may already be gone; the job still ran.
                    let _ = job.reply.send(Reply::Final(line));
                }
            })
        })
        .collect();

    #[cfg(unix)]
    {
        sigint::install();
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(100));
            if shutdown.requested() {
                return;
            }
            if sigint::requested() {
                shutdown.trigger(&queue);
                return;
            }
        });
    }

    println!("glitch-serve listening on 127.0.0.1:{port}");
    std::io::stdout().flush().ok();

    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if shutdown.requested() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let engine = Arc::clone(&engine);
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        let max_queue = config.max_queue;
        let workers = config.workers;
        connections.push(std::thread::spawn(move || {
            serve_connection(&stream, &engine, &queue, &shutdown, max_queue, workers);
        }));
    }
    for connection in connections {
        let _ = connection.join();
    }
    for worker in workers {
        let _ = worker.join();
    }

    if let Some(path) = &config.trace_out {
        let tracks: Vec<(u64, String)> = (1..=config.workers)
            .map(|i| (i as u64, format!("worker-{i}")))
            .collect();
        let tracks: Vec<(u64, &str)> = tracks.iter().map(|(i, n)| (*i, n.as_str())).collect();
        std::fs::write(path, engine.chrome_trace(&tracks))
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
    }
    std::fs::remove_dir_all(&spill_dir).ok();
    Ok(())
}

/// Reads request lines from one client until EOF or shutdown, answering
/// each with exactly one final response line (preceded by interim
/// progress lines for streaming jobs).
fn serve_connection(
    stream: &TcpStream,
    engine: &Engine,
    queue: &Queue,
    shutdown: &Shutdown,
    max_queue: usize,
    workers: usize,
) {
    // The timeout bounds how long a drained connection outlives shutdown.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    // Responses are single small writes; Nagle would stall them behind
    // the peer's delayed ACK.
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(reading_half) => reading_half,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // `read_line` appends, so a partial line survives timeout retries.
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.requested() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let request = line.trim().to_string();
        line.clear();
        if request.is_empty() {
            continue;
        }
        let (response, is_shutdown) = handle_request(&request, engine, queue, max_queue, workers);
        let done = match response {
            Response::One(line) => write_line(&mut writer, &line),
            Response::Stream(receiver) => loop {
                match receiver.recv() {
                    Ok(Reply::Interim(line)) => {
                        if !write_line(&mut writer, &line) {
                            break false;
                        }
                    }
                    Ok(Reply::Final(line)) => break write_line(&mut writer, &line),
                    Err(_) => {
                        break write_line(
                            &mut writer,
                            &error_response("worker pool dropped the job"),
                        )
                    }
                }
            },
        };
        if !done {
            return;
        }
        if is_shutdown {
            shutdown.trigger(queue);
            return;
        }
    }
}

fn write_line(writer: &mut &TcpStream, line: &str) -> bool {
    let mut framed = line.to_string();
    framed.push('\n');
    writer.write_all(framed.as_bytes()).is_ok() && writer.flush().is_ok()
}

/// One request's answer: a single line, or a worker-fed stream of interim
/// lines ending in the final one.
enum Response {
    One(String),
    Stream(mpsc::Receiver<Reply>),
}

/// Dispatches one request line; returns the response and whether it was a
/// shutdown request (acknowledged before the daemon starts draining).
fn handle_request(
    request: &str,
    engine: &Engine,
    queue: &Queue,
    max_queue: usize,
    workers: usize,
) -> (Response, bool) {
    let id = engine.next_request_id();
    match Request::parse(request) {
        Err(message) => {
            engine.record_invalid(id);
            (Response::One(error_response(&message)), false)
        }
        Ok(Request::Ping) => (Response::One(engine.ping_response(id)), false),
        Ok(Request::Status) => (
            Response::One(engine.status_response(id, queue.depth(), workers)),
            false,
        ),
        Ok(Request::Metrics(format)) => (Response::One(engine.metrics_response(format, id)), false),
        Ok(Request::Shutdown) => (Response::One(engine.shutdown_response(id)), true),
        Ok(Request::Job(kind, job)) => {
            let now = engine.clock().now_micros();
            let (admission, depth) = queue.enqueue(kind, *job, id, now, max_queue);
            engine.observe_queue_depth(depth);
            match admission {
                Admission::Shed(reason) => {
                    engine.record_shed(id, kind.op());
                    (Response::One(error_response(reason)), false)
                }
                Admission::Queued(receiver) => (Response::Stream(receiver), false),
            }
        }
    }
}
