//! The JSON-lines protocol: one request object per line in, one response
//! object per line out.
//!
//! Requests are flat objects with an `op` discriminator. Job ops
//! (`analyze`, `check`, `flip`, `sweep`, `reduce`) carry the same knobs as the CLI
//! flags they mirror, with identical defaults, so a job response is
//! byte-identical to the matching one-shot `glitch-cli ... --json` run.
//! Control ops are `metrics` (the merged registry, as JSON, text or
//! Prometheus exposition), `status` (live serving telemetry), `ping` and
//! `shutdown`. Unknown ops and unknown fields are rejected — a typo must
//! fail loudly, not silently run with defaults.
//!
//! A `reduce` job with `"progress": true` streams interim lines — one
//! JSON object per loop iteration, each starting with a `progress` key —
//! before the single final response line. Every other request still gets
//! exactly one response line.

use std::collections::BTreeMap;

use crate::jsonin::{parse_json, JsonValue};

/// Which analysis pipeline a job request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Single- or multi-seed glitch/power analysis (`analyze --json`).
    Analyze,
    /// Three-valued verification (`check --json`).
    Check,
    /// Incremental what-if via the baseline cache (`analyze --flip --json`).
    Flip,
    /// Delay-model sweep (`sweep --json`).
    Sweep,
    /// Glitch-power reduction loop (`reduce --json`).
    Reduce,
}

impl JobKind {
    /// The protocol's `op` string for this kind.
    pub fn op(self) -> &'static str {
        match self {
            JobKind::Analyze => "analyze",
            JobKind::Check => "check",
            JobKind::Flip => "flip",
            JobKind::Sweep => "sweep",
            JobKind::Reduce => "reduce",
        }
    }
}

/// An analysis job: the netlist file plus the CLI-mirroring knobs.
/// `None` fields take the CLI's defaults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobRequest {
    /// Path of the netlist file, resolved on the daemon's filesystem.
    pub file: String,
    /// `--cycles`.
    pub cycles: Option<u64>,
    /// `--seed`.
    pub seed: Option<u64>,
    /// `--seeds`.
    pub seeds: Option<usize>,
    /// `--jobs` (within-job worker threads, not daemon workers).
    pub jobs: Option<usize>,
    /// `--delay`.
    pub delay: Option<String>,
    /// `--delays` (sweep only).
    pub delays: Option<String>,
    /// `--engine` (`queue`, `kernel` or `hybrid`; the daemon defaults to
    /// `hybrid`, which is bit-identical to `queue`).
    pub engine: Option<String>,
    /// `--tech`.
    pub tech: Option<String>,
    /// `--frequency-mhz`.
    pub frequency_mhz: Option<f64>,
    /// `--flip` list (required for `flip`, optional for `check`).
    pub flips: Option<String>,
    /// `--x-init` (check only).
    pub x_init: bool,
    /// `--hazards` (check only).
    pub hazards: bool,
    /// `--budget` list (check only).
    pub budget: Option<String>,
    /// `--stable` list (check only).
    pub stable: Option<String>,
    /// `--moves` list (reduce only).
    pub moves: Option<String>,
    /// `--target` reduction percent (reduce only).
    pub target: Option<f64>,
    /// `--max-iters` (reduce only).
    pub max_iters: Option<usize>,
    /// Stream one interim progress line per reduction-loop iteration
    /// before the final response (reduce only).
    pub progress: bool,
    /// Expected [`glitch_core::netlist::Netlist::fingerprint`] as 16 hex
    /// digits; the daemon rejects the request if the file on disk parses
    /// to a different circuit (stale-client protection).
    pub fingerprint: Option<u64>,
}

/// The format of a `metrics` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The stable sorted one-line JSON dump.
    Json,
    /// The human-readable multi-line dump, wrapped in a JSON envelope.
    Text,
    /// The Prometheus text exposition, wrapped in a JSON envelope.
    Prometheus,
}

/// One parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An analysis job to dispatch to the worker pool (boxed: the request
    /// carries a dozen option fields and would dominate the enum size).
    Job(JobKind, Box<JobRequest>),
    /// Serve the merged metrics registry.
    Metrics(MetricsFormat),
    /// Live serving telemetry: uptime, per-op counts, windowed latency
    /// percentiles, queue depth, worker busyness, cache occupancy.
    Status,
    /// Liveness probe.
    Ping,
    /// Drain in-flight jobs, flush the trace, exit 0.
    Shutdown,
}

fn field_str(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Option<String>, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

fn field_u64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Option<u64>, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn field_usize(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Option<usize>, String> {
    Ok(field_u64(map, key)?.map(|v| v as usize))
}

fn field_f64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Option<f64>, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn field_bool(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<bool, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

/// The request fields every job op understands.
const JOB_FIELDS: &[&str] = &[
    "op",
    "file",
    "cycles",
    "seed",
    "seeds",
    "jobs",
    "delay",
    "delays",
    "engine",
    "tech",
    "frequency_mhz",
    "flips",
    "x_init",
    "hazards",
    "budget",
    "stable",
    "moves",
    "target",
    "max_iters",
    "progress",
    "fingerprint",
];

impl Request {
    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `{"error": ...}` response:
    /// malformed JSON, a non-object, an unknown `op`, an unknown field, or
    /// a field of the wrong type.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = parse_json(line).map_err(|e| format!("malformed request: {e}"))?;
        let JsonValue::Object(map) = value else {
            return Err("request must be a JSON object".into());
        };
        let op = field_str(&map, "op")?.ok_or("request is missing the `op` field")?;
        let kind = match op.as_str() {
            "analyze" => JobKind::Analyze,
            "check" => JobKind::Check,
            "flip" => JobKind::Flip,
            "sweep" => JobKind::Sweep,
            "reduce" => JobKind::Reduce,
            "metrics" => {
                for key in map.keys() {
                    if key != "op" && key != "format" {
                        return Err(format!("unknown field `{key}` for op `metrics`"));
                    }
                }
                let format = match field_str(&map, "format")?.as_deref() {
                    None | Some("json") => MetricsFormat::Json,
                    Some("text") => MetricsFormat::Text,
                    Some("prometheus") => MetricsFormat::Prometheus,
                    Some(other) => {
                        return Err(format!(
                            "metrics format must be json, text or prometheus, got `{other}`"
                        ));
                    }
                };
                return Ok(Request::Metrics(format));
            }
            "ping" | "shutdown" | "status" => {
                if map.len() > 1 {
                    return Err(format!("op `{op}` takes no other fields"));
                }
                return Ok(match op.as_str() {
                    "ping" => Request::Ping,
                    "status" => Request::Status,
                    _ => Request::Shutdown,
                });
            }
            other => {
                return Err(format!(
                    "unknown op `{other}` (expected analyze, check, flip, sweep, \
                     reduce, metrics, status, ping or shutdown)"
                ));
            }
        };
        for key in map.keys() {
            if !JOB_FIELDS.contains(&key.as_str()) {
                return Err(format!("unknown field `{key}` for op `{op}`"));
            }
        }
        let fingerprint = match field_str(&map, "fingerprint")? {
            None => None,
            Some(hex) => Some(
                u64::from_str_radix(&hex, 16)
                    .map_err(|_| "field `fingerprint` must be up to 16 hex digits".to_string())?,
            ),
        };
        let job = JobRequest {
            file: field_str(&map, "file")?.ok_or("request is missing the `file` field")?,
            cycles: field_u64(&map, "cycles")?,
            seed: field_u64(&map, "seed")?,
            seeds: field_usize(&map, "seeds")?,
            jobs: field_usize(&map, "jobs")?,
            delay: field_str(&map, "delay")?,
            delays: field_str(&map, "delays")?,
            engine: field_str(&map, "engine")?,
            tech: field_str(&map, "tech")?,
            frequency_mhz: field_f64(&map, "frequency_mhz")?,
            flips: field_str(&map, "flips")?,
            x_init: field_bool(&map, "x_init")?,
            hazards: field_bool(&map, "hazards")?,
            budget: field_str(&map, "budget")?,
            stable: field_str(&map, "stable")?,
            moves: field_str(&map, "moves")?,
            target: field_f64(&map, "target")?,
            max_iters: field_usize(&map, "max_iters")?,
            progress: field_bool(&map, "progress")?,
            fingerprint,
        };
        if kind == JobKind::Flip && job.flips.is_none() {
            return Err("op `flip` requires the `flips` field (e.g. \"0:a\")".into());
        }
        Ok(Request::Job(kind, Box::new(job)))
    }
}

/// Renders an error response line.
pub fn error_response(message: &str) -> String {
    crate::json::JsonObject::new()
        .str("error", message)
        .render()
}

/// Renders the trivial `{"ok":true}` acknowledgement line.
pub fn ok_response() -> String {
    crate::json::JsonObject::new().bool("ok", true).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_job_requests_with_defaults() {
        let req = Request::parse(r#"{"op":"analyze","file":"a.blif"}"#).unwrap();
        let Request::Job(kind, job) = req else {
            panic!("expected a job")
        };
        assert_eq!(kind, JobKind::Analyze);
        assert_eq!(job.file, "a.blif");
        assert_eq!(job.cycles, None);
        assert!(!job.x_init);

        let req = Request::parse(
            r#"{"op":"check","file":"a.blif","cycles":50,"x_init":true,"budget":"*=cycle","jobs":2,"seeds":3}"#,
        )
        .unwrap();
        let Request::Job(kind, job) = req else {
            panic!("expected a job")
        };
        assert_eq!(kind, JobKind::Check);
        assert_eq!(job.cycles, Some(50));
        assert_eq!(job.seeds, Some(3));
        assert!(job.x_init);

        let req = Request::parse(r#"{"op":"analyze","file":"a.blif","engine":"queue"}"#).unwrap();
        let Request::Job(_, job) = req else {
            panic!("expected a job")
        };
        assert_eq!(job.engine.as_deref(), Some("queue"));
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(Request::parse(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            Request::parse(r#"{"op":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics(MetricsFormat::Json)
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics","format":"text"}"#).unwrap(),
            Request::Metrics(MetricsFormat::Text)
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics(MetricsFormat::Prometheus)
        );
    }

    #[test]
    fn progress_parses_as_a_job_field() {
        let req = Request::parse(r#"{"op":"reduce","file":"a.blif","progress":true}"#).unwrap();
        let Request::Job(kind, job) = req else {
            panic!("expected a job")
        };
        assert_eq!(kind, JobKind::Reduce);
        assert!(job.progress);
        let req = Request::parse(r#"{"op":"reduce","file":"a.blif"}"#).unwrap();
        let Request::Job(_, job) = req else {
            panic!("expected a job")
        };
        assert!(!job.progress);
        assert!(Request::parse(r#"{"op":"reduce","file":"a.blif","progress":1}"#).is_err());
    }

    #[test]
    fn fingerprints_parse_as_hex() {
        let req =
            Request::parse(r#"{"op":"flip","file":"a.blif","flips":"0:a","fingerprint":"00ff"}"#)
                .unwrap();
        let Request::Job(_, job) = req else {
            panic!("expected a job")
        };
        assert_eq!(job.fingerprint, Some(0xff));
        assert!(Request::parse(
            r#"{"op":"flip","file":"a.blif","flips":"0:a","fingerprint":"xyz"}"#
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_requests_loudly() {
        for bad in [
            "",
            "[]",
            r#"{"file":"a.blif"}"#,
            r#"{"op":"explode","file":"a.blif"}"#,
            r#"{"op":"analyze"}"#,
            r#"{"op":"analyze","file":"a.blif","cyclez":1}"#,
            r#"{"op":"analyze","file":"a.blif","cycles":"many"}"#,
            r#"{"op":"flip","file":"a.blif"}"#,
            r#"{"op":"ping","file":"a.blif"}"#,
            r#"{"op":"status","file":"a.blif"}"#,
            r#"{"op":"metrics","format":"xml"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
