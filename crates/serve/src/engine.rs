//! The request engine: executes parsed protocol jobs against the warm
//! cache and produces the response line for each.
//!
//! One [`Engine`] is shared by every worker thread of the daemon. It owns
//! the [`CircuitCache`], the merged [`MetricsRegistry`] behind the
//! `metrics` op, and the span records behind `--trace-out`. Job execution
//! mirrors the CLI's command paths *call for call* — the same `params`
//! resolution, the same analysis entry points, the same `report`
//! envelopes — which is what makes a daemon response byte-identical to
//! the equivalent one-shot `glitch-cli ... --json` run.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use glitch_core::netlist::Netlist;
use glitch_core::sim::{
    kernel_prepass, run_kernel_jobs, MetricsProbe, Probe, RandomStimulus, SimJob, SimOptions,
};
use glitch_core::verify::VerifyReport;
use glitch_core::{
    AggregateReport, AnalysisConfig, DeltaStimulus, EngineKind, GlitchAnalyzer, IncrementalStats,
    KernelProgram, KernelTelemetry, SimBaseline,
};
use glitch_io::GateLibrary;
use glitch_obs::export::{
    chrome_trace_with_tracks, metrics_json, metrics_prometheus, metrics_text,
};
use glitch_obs::{
    Clock, EventLog, Histogram, MetricsRegistry, SpanLog, WindowedHistogram, WINDOW_1M_MICROS,
    WINDOW_5M_MICROS,
};

use crate::cache::{CachedCircuit, CircuitCache};
use crate::json::JsonObject;
use crate::params;
use crate::protocol::{error_response, ok_response, JobKind, JobRequest, MetricsFormat};
use crate::report;

/// Upper bound on retained per-request spans, mirroring
/// [`glitch_obs::span::DEFAULT_SPAN_CAPACITY`]: a long-lived daemon must
/// not grow its trace without bound.
const SPAN_CAPACITY: usize = 4096;

/// The single-lane [`SimJob`] mirroring [`GlitchAnalyzer::session`]'s
/// stimulus, for feeding the compiled kernel on single-seed runs (the
/// CLI's `kernel_job` twin).
fn kernel_job<'a>(netlist: &'a Netlist, config: &AnalysisConfig) -> SimJob<'a> {
    SimJob::new(
        netlist,
        params::input_buses(netlist),
        config.cycles,
        config.seed,
    )
    .with_delay(config.delay.clone())
    .with_power(config.technology, config.frequency)
    .with_options(config.options)
}

/// What the server threads know about one request: its monotonic id
/// (assigned at the connection, before admission control) and how long it
/// waited in the queue before a worker picked it up.
#[derive(Debug, Clone, Copy)]
pub struct RequestContext {
    /// The daemon-wide monotonic request id.
    pub id: u64,
    /// Microseconds between admission and dequeue (0 for control ops,
    /// which are answered inline).
    pub queue_wait_us: u64,
}

impl RequestContext {
    /// A context for inline work that never queued.
    #[must_use]
    pub fn inline(id: u64) -> RequestContext {
        RequestContext {
            id,
            queue_wait_us: 0,
        }
    }
}

/// One span entry: name, track, start, duration, request id.
type SpanEntry = (String, u64, u64, u64, u64);

/// The per-op windowed latency pair behind the `status` op.
struct OpWindows {
    queue_wait: WindowedHistogram,
    handle: WindowedHistogram,
}

/// What one finished job contributes to its access-log line beyond the
/// response itself: the resolved circuit fingerprint and how the netlist
/// cache answered.
struct JobTrace {
    fingerprint: Option<u64>,
    cache: &'static str,
}

/// The shared request executor. All methods take `&self`; the registry
/// and span store sit behind short-lived locks, the heavy work (parse,
/// simulate) runs lock-free through the cache's single-flight slots.
pub struct Engine {
    cache: CircuitCache,
    metrics: Mutex<MetricsRegistry>,
    clock: Clock,
    spans: Mutex<VecDeque<SpanEntry>>,
    next_id: AtomicU64,
    busy_workers: AtomicUsize,
    windows: Mutex<Vec<(String, OpWindows)>>,
    access_log: Option<EventLog>,
}

impl Engine {
    /// An engine with a cache byte budget (0 = unbounded) and an optional
    /// baseline spill directory.
    #[must_use]
    pub fn new(cache_bytes: usize, spill_dir: Option<PathBuf>) -> Engine {
        Engine {
            cache: CircuitCache::new(cache_bytes, spill_dir),
            metrics: Mutex::new(MetricsRegistry::new()),
            clock: Clock::new(),
            spans: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            windows: Mutex::new(Vec::new()),
            access_log: None,
        }
    }

    /// Opens the access log at `path` (rotating past `max_bytes`); every
    /// subsequent request appends exactly one line.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be opened.
    pub fn set_access_log(&mut self, path: &str, max_bytes: u64) -> Result<(), String> {
        let log = EventLog::create(path, max_bytes)
            .map_err(|e| format!("cannot open access log {path}: {e}"))?;
        self.access_log = Some(log);
        Ok(())
    }

    /// Assigns the next monotonic request id (1-based).
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The engine's monotonic clock (shared timeline for every span).
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Reads a counter from the merged registry (0 when never touched).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .expect("metrics lock")
            .counter_value(name)
            .unwrap_or(0)
    }

    fn add(&self, name: &str, n: u64) {
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let handle = metrics.counter(name);
        metrics.add(handle, n);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let handle = metrics.gauge(name);
        metrics.observe_max(handle, value);
    }

    fn merge(&self, registry: MetricsRegistry) {
        self.metrics.lock().expect("metrics lock").merge(registry);
    }

    fn record_span(&self, name: String, track: u64, start: u64, dur: u64, request_id: u64) {
        let mut spans = self.spans.lock().expect("span lock");
        if spans.len() == SPAN_CAPACITY {
            spans.pop_front();
        }
        spans.push_back((name, track, start, dur, request_id));
    }

    /// Records one admitted request's latency pair: the shared-registry
    /// histograms (per op, visible in `metrics`) and the windowed
    /// per-op histograms behind `status`. Shed requests never reach this.
    fn record_latency(&self, op: &str, queue_wait_us: u64, handle_us: u64, now_micros: u64) {
        {
            let mut metrics = self.metrics.lock().expect("metrics lock");
            let queue = metrics.histogram(&format!("serve.queue_wait_us.{op}"));
            metrics.record(queue, queue_wait_us);
            let handle = metrics.histogram(&format!("serve.handle_us.{op}"));
            metrics.record(handle, handle_us);
        }
        let mut windows = self.windows.lock().expect("window lock");
        let entry = match windows.iter_mut().find(|(name, _)| name == op) {
            Some((_, entry)) => entry,
            None => {
                windows.push((
                    op.to_string(),
                    OpWindows {
                        queue_wait: WindowedHistogram::default(),
                        handle: WindowedHistogram::default(),
                    },
                ));
                &mut windows.last_mut().expect("just pushed").1
            }
        };
        entry.queue_wait.record(now_micros, queue_wait_us);
        entry.handle.record(now_micros, handle_us);
    }

    /// Appends one access-log line (a no-op without `--access-log`).
    /// Write failures are counted, not fatal: observability must never
    /// take the serving path down.
    #[allow(clippy::too_many_arguments)]
    fn access_line(
        &self,
        id: u64,
        op: &str,
        fingerprint: Option<u64>,
        cache: &str,
        queue_us: u64,
        wall_us: u64,
        outcome: &str,
    ) {
        let Some(log) = &self.access_log else { return };
        let fingerprint = match fingerprint {
            Some(f) => format!("{f:016x}"),
            None => String::new(),
        };
        let line = JsonObject::new()
            .u64("id", id)
            .str("op", op)
            .str("fingerprint", &fingerprint)
            .str("cache", cache)
            .u64("queue_us", queue_us)
            .u64("wall_us", wall_us)
            .str("outcome", outcome)
            .render();
        if log.append(&line).is_err() {
            self.add("serve.access_log_errors", 1);
        }
    }

    /// Mirrors the CLI telemetry's aggregate recording (`sim.*`,
    /// `queue.*`).
    fn record_aggregate(&self, aggregate: &AggregateReport) {
        self.add("sim.cycles", aggregate.total_cycles());
        self.add("sim.events", aggregate.total_events());
        self.add("sim.cell_evals", aggregate.total_cell_evals());
        self.gauge_max("sim.max_settle_time", aggregate.max_settle_time());
        let queue = aggregate.queue_stats();
        self.add("queue.pushes", queue.pushes);
        self.add("queue.pops", queue.pops);
        self.gauge_max("queue.peak_depth", queue.peak_depth);
    }

    /// Mirrors the CLI telemetry's kernel recording (`kernel.*`): the
    /// prepass's lane/cycle/pair classification and functional work.
    fn record_kernel(&self, kernel: &KernelTelemetry) {
        self.add("kernel.lanes", kernel.lanes as u64);
        self.add("kernel.cycles_total", kernel.total_cycles);
        self.add("kernel.cycles_quiet", kernel.quiet_cycles);
        self.add("kernel.pairs_total", kernel.total_pairs);
        self.add("kernel.pairs_quiet", kernel.quiet_pairs);
        self.add(
            "kernel.functional_transitions",
            kernel.functional_transitions,
        );
        self.add("kernel.functional_cell_evals", kernel.functional_cell_evals);
        self.gauge_max("kernel.program_ops", kernel.program_ops as u64);
        self.gauge_max("kernel.program_bytes", kernel.program_bytes as u64);
    }

    /// The cached compiled kernel program for non-queue engines (`None`
    /// for the queue engine), with its hit/miss/eviction counters.
    fn compiled_program(
        &self,
        circuit: &Arc<CachedCircuit>,
        config: &AnalysisConfig,
    ) -> Result<Option<Arc<KernelProgram>>, String> {
        if config.engine == EngineKind::Queue {
            return Ok(None);
        }
        let lookup = self.cache.program_for(circuit)?;
        self.add(
            if lookup.hit {
                "cache.program_hits"
            } else {
                "cache.program_misses"
            },
            1,
        );
        if lookup.evicted > 0 {
            self.add("cache.evictions", lookup.evicted);
        }
        Ok(Some(lookup.program))
    }

    /// Mirrors the CLI telemetry's incremental recording
    /// (`incremental.*`).
    fn record_incremental(&self, stats: &IncrementalStats) {
        self.add("incremental.replayed_cycles", stats.replayed_cycles);
        self.add("incremental.simulated_cycles", stats.simulated_cycles);
        self.add("incremental.cells_evaluated", stats.cells_evaluated);
        self.add(
            "incremental.dff_divergence_reseeds",
            stats.dff_divergence_reseeds,
        );
        self.gauge_max(
            "incremental.peak_dirty_cone_nets",
            stats.peak_dirty_cone_nets,
        );
    }

    /// Mirrors the CLI telemetry's verdict recording (`check.*`).
    fn record_check(&self, report: &VerifyReport) {
        self.add("check.violations_total", report.total_violations());
        self.add("check.violations_retained", report.retained_violations());
        self.add("check.violations_dropped", report.dropped_violations());
        for outcome in report.outcomes() {
            self.add(
                &format!("check.{}.violations", outcome.checker),
                outcome.total_violations,
            );
        }
    }

    /// Folds a finished session's metrics probe into the daemon registry,
    /// exactly as the CLI's `--metrics` wiring does per session.
    fn absorb_session(&self, report: &mut glitch_core::sim::SessionReport) {
        if let Some(mut probe) = report.take_probe::<MetricsProbe>() {
            probe.record_queue_stats(report.queue_stats());
            self.merge(probe.into_registry());
        }
    }

    /// Runs one job to its final response line, with its request counter,
    /// timing span (on the worker's trace track, tagged with the request
    /// id), latency histograms, cache gauges and access-log line. When
    /// `interim` is given and the job asked for progress, interim lines
    /// are emitted through it before this returns.
    pub fn run_job(
        &self,
        kind: JobKind,
        job: &JobRequest,
        track: u64,
        ctx: RequestContext,
        interim: Option<&(dyn Fn(String) + Sync)>,
    ) -> String {
        self.busy_workers.fetch_add(1, Ordering::SeqCst);
        self.add(&format!("serve.requests.{}", kind.op()), 1);
        let mut trace = JobTrace {
            fingerprint: None,
            cache: "-",
        };
        let start = self.clock.now_micros();
        let result = self.execute(kind, job, &mut trace, ctx.id, interim);
        let end = self.clock.now_micros();
        let dur = end.saturating_sub(start);
        self.record_span(
            format!("{} {}", kind.op(), job.file),
            track,
            start,
            dur,
            ctx.id,
        );
        self.record_latency(kind.op(), ctx.queue_wait_us, dur, end);
        self.gauge_max("cache.peak_bytes", self.cache.bytes() as u64);
        self.gauge_max("cache.circuits", self.cache.circuit_count() as u64);
        let (line, outcome) = match result {
            Ok(line) => (line, "ok"),
            Err(message) => {
                self.add("serve.errors", 1);
                self.add(&format!("serve.errors.{}", kind.op()), 1);
                (error_response(&message), "error")
            }
        };
        self.access_line(
            ctx.id,
            kind.op(),
            trace.fingerprint,
            trace.cache,
            ctx.queue_wait_us,
            dur,
            outcome,
        );
        self.busy_workers.fetch_sub(1, Ordering::SeqCst);
        line
    }

    /// Wraps one inline control op: request counter, zero-queue-wait
    /// latency sample, span (track 0) and access-log line around the
    /// rendered response.
    fn control_response(
        &self,
        op: &str,
        id: u64,
        render: impl FnOnce(&Engine) -> String,
    ) -> String {
        self.add(&format!("serve.requests.{op}"), 1);
        let start = self.clock.now_micros();
        let line = render(self);
        let end = self.clock.now_micros();
        let dur = end.saturating_sub(start);
        self.record_span(op.to_string(), 0, start, dur, id);
        self.record_latency(op, 0, dur, end);
        self.access_line(id, op, None, "-", 0, dur, "ok");
        line
    }

    /// The `ping` response.
    pub fn ping_response(&self, id: u64) -> String {
        self.control_response("ping", id, |_| ok_response())
    }

    /// The `shutdown` acknowledgement (the caller triggers the drain).
    pub fn shutdown_response(&self, id: u64) -> String {
        self.control_response("shutdown", id, |_| ok_response())
    }

    /// The `metrics` response: the merged registry as the stable sorted
    /// one-line JSON object, or as human-readable text / Prometheus
    /// exposition wrapped in a JSON envelope.
    pub fn metrics_response(&self, format: MetricsFormat, id: u64) -> String {
        self.control_response("metrics", id, |engine| {
            let registry = engine.metrics.lock().expect("metrics lock").clone();
            match format {
                MetricsFormat::Json => metrics_json(&registry),
                MetricsFormat::Text => JsonObject::new()
                    .str("metrics", &metrics_text(&registry))
                    .render(),
                MetricsFormat::Prometheus => JsonObject::new()
                    .str("metrics", &metrics_prometheus(&registry))
                    .render(),
            }
        })
    }

    /// The `status` response: live serving telemetry. The leading
    /// `counts` sub-object is deterministic for a fixed request sequence
    /// (counters only); everything after it (uptime, percentiles,
    /// busyness) is wall-clock-dependent.
    pub fn status_response(&self, id: u64, queue_depth: usize, workers: usize) -> String {
        self.control_response("status", id, |engine| {
            engine.render_status(queue_depth, workers)
        })
    }

    fn render_status(&self, queue_depth: usize, workers: usize) -> String {
        fn percentiles(histogram: &Histogram) -> JsonObject {
            JsonObject::new()
                .u64("count", histogram.count())
                .u64("p50", histogram.value_at_quantile(0.50))
                .u64("p90", histogram.value_at_quantile(0.90))
                .u64("p99", histogram.value_at_quantile(0.99))
                .u64("max", histogram.max())
        }
        fn windowed(windows: &WindowedHistogram, now: u64) -> JsonObject {
            JsonObject::new()
                .raw(
                    "1m",
                    &percentiles(&windows.window(now, WINDOW_1M_MICROS)).render(),
                )
                .raw(
                    "5m",
                    &percentiles(&windows.window(now, WINDOW_5M_MICROS)).render(),
                )
                .raw("total", &percentiles(windows.total()).render())
        }
        let now = self.clock.now_micros();
        let registry = self.metrics.lock().expect("metrics lock").clone();
        let counts_of = |prefix: &str| {
            let mut out = JsonObject::new();
            for (name, value) in registry.counters() {
                if let Some(op) = name.strip_prefix(prefix) {
                    if !op.is_empty() && !op.contains('.') {
                        out = out.u64(op, value);
                    }
                }
            }
            out
        };
        let counts = JsonObject::new()
            .raw("requests", &counts_of("serve.requests.").render())
            .raw("errors", &counts_of("serve.errors.").render())
            .raw("shed", &counts_of("serve.shed.").render())
            .u64(
                "stale_fingerprints",
                registry
                    .counter_value("serve.stale_fingerprints")
                    .unwrap_or(0),
            );
        let cache = JsonObject::new()
            .u64("bytes", self.cache.bytes() as u64)
            .u64("circuits", self.cache.circuit_count() as u64)
            .u64("baselines", self.cache.baseline_count() as u64);
        let mut latency = JsonObject::new();
        {
            let mut windows = self.windows.lock().expect("window lock");
            windows.sort_by(|a, b| a.0.cmp(&b.0));
            for (op, entry) in windows.iter() {
                latency = latency.raw(
                    op,
                    &JsonObject::new()
                        .raw("queue_wait_us", &windowed(&entry.queue_wait, now).render())
                        .raw("handle_us", &windowed(&entry.handle, now).render())
                        .render(),
                );
            }
        }
        JsonObject::new()
            .raw("counts", &counts.render())
            .u64("uptime_us", now)
            .usize("queue_depth", queue_depth)
            .usize("workers", workers)
            .usize("busy_workers", self.busy_workers.load(Ordering::SeqCst))
            .raw("cache", &cache.render())
            .raw("latency", &latency.render())
            .render()
    }

    /// Counts a request shed by admission control (the caller renders the
    /// error line). Shed requests get an access-log line and a trace span
    /// but — deliberately — no latency histogram sample: they never
    /// queued, and folding their instant rejection into the latency
    /// percentiles would flatter the tail.
    pub fn record_shed(&self, id: u64, op: &str) {
        self.add("serve.shed", 1);
        self.add(&format!("serve.shed.{op}"), 1);
        let now = self.clock.now_micros();
        self.record_span(format!("shed {op}"), 0, now, 0, id);
        self.access_line(id, op, None, "-", 0, 0, "shed");
    }

    /// Counts a request line the protocol parser rejected, so even typos
    /// show up in the access log with their id.
    pub fn record_invalid(&self, id: u64) {
        self.add("serve.invalid", 1);
        self.access_line(id, "invalid", None, "-", 0, 0, "error");
    }

    /// Tracks the job queue's high-water mark.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.gauge_max("serve.queue_peak_depth", depth as u64);
    }

    /// Renders every retained per-request span as a Chrome trace, with
    /// one named track per worker and each span's request id in its
    /// `args` (the same id the access log carries).
    #[must_use]
    pub fn chrome_trace(&self, tracks: &[(u64, &str)]) -> String {
        let log = SpanLog::with_capacity(self.clock, SPAN_CAPACITY);
        for (name, tid, start, dur, request_id) in self.spans.lock().expect("span lock").iter() {
            log.record_with_args(
                name.clone(),
                *tid,
                *start,
                *dur,
                vec![("request_id".to_string(), *request_id)],
            );
        }
        chrome_trace_with_tracks(&log, tracks)
    }

    /// Fields a job op must not carry — the strict-protocol counterpart
    /// of CLI flags that only exist on other subcommands.
    fn reject_foreign_fields(kind: JobKind, job: &JobRequest) -> Result<(), String> {
        let mut bad: Vec<&str> = Vec::new();
        let check_only = [
            (job.x_init, "x_init"),
            (job.hazards, "hazards"),
            (job.budget.is_some(), "budget"),
            (job.stable.is_some(), "stable"),
        ];
        let reduce_only = [
            (job.moves.is_some(), "moves"),
            (job.target.is_some(), "target"),
            (job.max_iters.is_some(), "max_iters"),
            (job.progress, "progress"),
        ];
        if kind != JobKind::Reduce {
            bad.extend(reduce_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
        }
        match kind {
            JobKind::Analyze => {
                if job.flips.is_some() {
                    bad.push("flips (use op `flip`)");
                }
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
            JobKind::Flip => {
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
                if job.engine.is_some() {
                    bad.push("engine (flip rides the incremental queue replay)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
            JobKind::Check => {
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
            }
            JobKind::Sweep => {
                if job.flips.is_some() {
                    bad.push("flips (use op `flip`)");
                }
                if job.delay.is_some() {
                    bad.push("delay (the delay-model sweep takes `delays`)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
            JobKind::Reduce => {
                if job.flips.is_some() {
                    bad.push("flips (use op `flip`)");
                }
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "op `{}` does not take: {}",
                kind.op(),
                bad.join(", ")
            ))
        }
    }

    fn execute(
        &self,
        kind: JobKind,
        job: &JobRequest,
        trace: &mut JobTrace,
        id: u64,
        interim: Option<&(dyn Fn(String) + Sync)>,
    ) -> Result<String, String> {
        Self::reject_foreign_fields(kind, job)?;
        let lookup = self.cache.circuit_for(&job.file)?;
        self.add(
            if lookup.hit {
                "cache.netlist_hits"
            } else {
                "cache.netlist_misses"
            },
            1,
        );
        if lookup.coalesced {
            self.add("cache.coalesced_waits", 1);
        }
        trace.cache = if lookup.coalesced {
            "coalesced"
        } else if lookup.hit {
            "hit"
        } else {
            "miss"
        };
        let circuit = lookup.circuit;
        trace.fingerprint = Some(circuit.fingerprint());
        if let Some(expected) = job.fingerprint {
            let actual = circuit.fingerprint();
            if expected != actual {
                self.add("serve.stale_fingerprints", 1);
                return Err(format!(
                    "stale fingerprint: request pins {expected:016x} but `{}` now parses \
                     to {actual:016x}; re-fetch the circuit and retry",
                    job.file
                ));
            }
        }
        let library = params::library_for_tech(job.tech.as_deref()).map_err(|e| e.to_string())?;
        match kind {
            JobKind::Analyze => self.run_analyze(job, &circuit, &library),
            JobKind::Flip => self.run_flip(job, &circuit, &library),
            JobKind::Check => self.run_check(job, &circuit, &library),
            JobKind::Sweep => self.run_sweep(job, &circuit, &library),
            JobKind::Reduce => self.run_reduce(job, &circuit, &library, id, interim),
        }
    }

    /// `analyze` — the CLI's single- and multi-seed `--json` paths.
    ///
    /// The daemon defaults to the *hybrid* engine: a kernel prepass over
    /// the cached compiled program classifies the quiet work before the
    /// queue runs, and the response stays byte-identical to a one-shot
    /// `glitch-cli analyze --json` queue run. An explicit `engine` field
    /// overrides the default.
    fn run_analyze(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        let netlist = circuit.netlist();
        let buses = params::input_buses(netlist);
        let program = self.compiled_program(circuit, &config)?;
        let analyzer = GlitchAnalyzer::new(config.clone());
        if seeds > 1 {
            let seed_list = params::stimulus_seeds(config.seed, seeds);
            let factory =
                |_shard: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(MetricsProbe::new())] };
            let (aggregate, mut reports) = analyzer
                .analyze_seeds_compiled(
                    netlist,
                    &buses,
                    &[],
                    &seed_list,
                    jobs,
                    &factory,
                    program.as_deref(),
                )
                .map_err(|e| format!("simulation failed: {e}"))?;
            if let Some(kernel) = &aggregate.kernel {
                self.record_kernel(kernel);
            }
            for report in &mut reports {
                self.absorb_session(report);
            }
            return Ok(report::analyze_aggregate_json(
                &job.file,
                netlist,
                seeds,
                jobs,
                config.cycles,
                &aggregate,
                None,
            ));
        }
        let mut report = if config.engine == EngineKind::Kernel {
            let program = program.as_deref().expect("compiled for the kernel engine");
            let factory =
                |_lane: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(MetricsProbe::new())] };
            let sim_job = kernel_job(netlist, &config);
            let reports =
                run_kernel_jobs(netlist, program, std::slice::from_ref(&sim_job), &factory)
                    .map_err(|e| format!("simulation failed: {e}"))?;
            reports
                .into_iter()
                .next()
                .expect("one job in, one report out")
        } else {
            let mut session = analyzer
                .session(netlist, &buses, &[])
                .probe(MetricsProbe::new());
            if let Some(program) = program.as_deref() {
                let sim_job = kernel_job(netlist, &config);
                let prepass = kernel_prepass(netlist, program, std::slice::from_ref(&sim_job))
                    .map_err(|e| format!("kernel prepass failed: {e}"))?;
                let kernel = KernelTelemetry::from_prepass(netlist, program, &prepass)
                    .map_err(|e| format!("kernel prepass failed: {e}"))?;
                self.record_kernel(&kernel);
                session = session.quiet_cycles(prepass.quiet_cycles(0));
            }
            session
                .run()
                .map_err(|e| format!("simulation failed: {e}"))?
        };
        self.absorb_session(&mut report);
        let passes = report.passes();
        let events = report.total_events();
        let max_settle = report.max_settle_time();
        let cell_evals = report.total_cell_evals();
        let analysis = GlitchAnalyzer::analysis(netlist, report);
        Ok(report::analyze_json(
            &job.file, netlist, &analysis, passes, events, max_settle, cell_evals, None,
        ))
    }

    /// `flip` — the CLI's `analyze --flip --json` path, served from the
    /// baseline cache: the recording pass runs once per (circuit,
    /// parameters), later requests replay through the shared cone index.
    fn run_flip(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            None,
        )
        .map_err(|e| e.to_string())?;
        let (seeds, _jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        if seeds > 1 {
            return Err("--flip applies to single-seed runs; drop --seeds or --flip".into());
        }
        let netlist = circuit.netlist();
        let spec = job.flips.as_deref().unwrap_or_default();
        let flips = params::parse_flips(spec, netlist).map_err(|e| e.to_string())?;
        params::check_flip_cycles(&flips, config.cycles).map_err(|e| e.to_string())?;
        let buses = params::input_buses(netlist);
        let analyzer = GlitchAnalyzer::new(config.clone());
        // The baseline cache key: everything the cached "before" analysis
        // depends on. The netlist fingerprint is the cache's own outer key.
        let key = format!(
            "{}:{}:{}:{}:{:?}:{:?}",
            config.cycles,
            config.seed,
            job.tech.as_deref().unwrap_or("0.8um"),
            config.frequency.to_bits(),
            config.delay,
            config.options
        );
        // A spill file stores the baseline but not its seed; validate by
        // regenerating the configured stimulus, as the CLI's `--baseline`
        // loader does.
        let validate = |baseline: &SimBaseline| {
            if baseline.cycle_count() != config.cycles
                || baseline.delay() != &config.delay
                || baseline.options() != config.options
            {
                return false;
            }
            let mut regenerated =
                RandomStimulus::new(params::input_buses(netlist), config.cycles, config.seed);
            (0..baseline.cycle_count())
                .all(|cycle| regenerated.next().as_ref() == Some(baseline.assignment(cycle)))
        };
        let lookup = self.cache.baseline_for(
            circuit,
            &key,
            validate,
            || {
                analyzer
                    .analyze_baseline(netlist, &buses, &[])
                    .map(|(analysis, baseline)| (baseline, analysis))
                    .map_err(|e| format!("simulation failed: {e}"))
            },
            |nl, baseline| {
                analyzer
                    .analyze_delta(nl, baseline, &DeltaStimulus::new())
                    .map(|delta| delta.analysis)
                    .map_err(|e| format!("baseline replay failed: {e}"))
            },
        )?;
        self.add(
            if lookup.hit {
                "cache.baseline_hits"
            } else {
                "cache.baseline_misses"
            },
            1,
        );
        if lookup.coalesced {
            self.add("cache.coalesced_waits", 1);
        }
        if lookup.spill_load {
            self.add("cache.spill_loads", 1);
        }
        if lookup.evicted > 0 {
            self.add("cache.evictions", lookup.evicted);
        }
        let entry = lookup.entry;
        let (delta, applied) =
            params::flips_to_delta(&flips, &entry.baseline).map_err(|e| e.to_string())?;
        let index = circuit.cone_index()?;
        let after = analyzer
            .analyze_delta_with_index(netlist, &entry.baseline, &delta, Some(&index))
            .map_err(|e| format!("incremental simulation failed: {e}"))?;
        self.record_incremental(&after.incremental);
        Ok(report::analyze_flip_json(
            &job.file,
            netlist,
            entry.baseline.cycle_count(),
            &applied,
            &after.incremental,
            &entry.before,
            &after.analysis,
        ))
    }

    /// `check` — the CLI's `check --json` paths (multi-seed suite run, or
    /// the incremental baseline/flipped pair when `flips` is present).
    fn run_check(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.x_init {
            config.options = SimOptions::x_init();
        }
        let netlist = circuit.netlist();
        let suite = params::build_check_suite(
            netlist,
            job.budget.as_deref(),
            None,
            job.hazards,
            job.stable.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        let buses = params::input_buses(netlist);
        if let Some(spec) = job.flips.as_deref() {
            if job.seeds.is_some() {
                return Err("--flip applies to single-seed runs; drop --seeds or --flip".into());
            }
            if config.engine != EngineKind::Queue {
                return Err(
                    "`flips` rides the incremental queue replay; drop `engine` or `flips`".into(),
                );
            }
            let flips = params::parse_flips(spec, netlist).map_err(|e| e.to_string())?;
            params::check_flip_cycles(&flips, config.cycles).map_err(|e| e.to_string())?;
            let analyzer = GlitchAnalyzer::new(config.clone());
            let (base_report, _, baseline) = analyzer
                .check_baseline(netlist, &buses, &[], &suite)
                .map_err(|e| format!("simulation failed: {e}"))?;
            let (delta, applied) =
                params::flips_to_delta(&flips, &baseline).map_err(|e| e.to_string())?;
            let flipped = analyzer
                .check_delta(netlist, &baseline, &delta, &suite)
                .map_err(|e| format!("incremental simulation failed: {e}"))?;
            self.record_incremental(&flipped.incremental);
            self.record_check(&flipped.report);
            return Ok(report::check_flip_json(
                &job.file,
                netlist,
                baseline.cycle_count(),
                job.x_init,
                &applied,
                &base_report,
                &flipped,
            ));
        }
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        let seed_list = params::stimulus_seeds(config.seed, seeds);
        let program = self.compiled_program(circuit, &config)?;
        let checked = GlitchAnalyzer::new(config.clone())
            .check_seeds_compiled(
                netlist,
                &buses,
                &[],
                &suite,
                &seed_list,
                jobs,
                program.as_deref(),
            )
            .map_err(|e| format!("simulation failed: {e}"))?;
        if let Some(kernel) = &checked.analysis.kernel {
            self.record_kernel(kernel);
        }
        self.record_aggregate(&checked.analysis.aggregate);
        self.record_check(&checked.report);
        Ok(report::check_json(
            &job.file,
            netlist,
            config.cycles,
            seeds,
            jobs,
            job.x_init,
            &checked,
        ))
    }

    /// `sweep` — the CLI's delay-model `sweep --json` path.
    fn run_sweep(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            None,
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        let models = params::delay_sweep_models(job.delays.as_deref(), library)
            .map_err(|e| e.to_string())?;
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, models.len()).map_err(|e| e.to_string())?;
        let seed_list = params::stimulus_seeds(config.seed, seeds);
        let netlist = circuit.netlist();
        let buses = params::input_buses(netlist);
        let program = self.compiled_program(circuit, &config)?;
        let points = GlitchAnalyzer::new(config.clone())
            .sweep_delays_compiled(
                netlist,
                &buses,
                &[],
                &models,
                &seed_list,
                jobs,
                program.as_deref(),
            )
            .map_err(|e| format!("simulation failed: {e}"))?;
        // One prepass serves the whole sweep; record its classification
        // once (every point carries the same copy).
        if let Some(kernel) = points.first().and_then(|p| p.analysis.kernel.as_ref()) {
            self.record_kernel(kernel);
        }
        for point in &points {
            self.record_aggregate(&point.analysis.aggregate);
        }
        Ok(report::sweep_json(
            &job.file,
            netlist,
            seeds,
            jobs,
            config.cycles,
            &points,
        ))
    }

    /// `reduce` — the CLI's `reduce --json` path: the greedy glitch-power
    /// descent with the final equivalence verification, served from the
    /// same content-addressed netlist cache as every other op. The daemon
    /// defaults to the hybrid engine (kernel batch screening, queue
    /// scoring), whose reports are bit-identical to pure-queue runs.
    ///
    /// With `"progress": true` and a streaming-capable connection, each
    /// descent iteration emits one interim line through `interim` before
    /// the final report. The sink is observe-only, so the final line is
    /// byte-identical to a non-progress run of the same request.
    fn run_reduce(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
        id: u64,
        interim: Option<&(dyn Fn(String) + Sync)>,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        if config.engine == EngineKind::Kernel {
            return Err(
                "the kernel engine has no glitch model to score moves with; \
                 use engine `queue` or `hybrid`"
                    .into(),
            );
        }
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        let seed_list = params::stimulus_seeds(config.seed, seeds);
        let moves = glitch_reduce::parse_moves(job.moves.as_deref().unwrap_or_default())
            .map_err(|e| e.to_string())?;
        let options = glitch_reduce::ReduceOptions {
            moves,
            target_percent: job.target,
            max_iters: job
                .max_iters
                .unwrap_or(glitch_reduce::ReduceOptions::default().max_iters),
            ..glitch_reduce::ReduceOptions::default()
        };
        let netlist = circuit.netlist();
        let buses = params::input_buses(netlist);
        let cycles = config.cycles;
        let session = glitch_core::ReduceSession::new(config, seed_list, jobs);
        let reducer = glitch_reduce::Reducer::new(session, options);
        let report = match interim.filter(|_| job.progress) {
            Some(emit) => {
                struct StreamingSink<'a> {
                    file: &'a str,
                    id: u64,
                    emit: &'a (dyn Fn(String) + Sync),
                }
                impl glitch_reduce::ProgressSink for StreamingSink<'_> {
                    fn iteration(&mut self, event: &glitch_reduce::ProgressEvent<'_>) {
                        (self.emit)(report::reduce_progress_json(
                            self.file,
                            event,
                            Some(self.id),
                        ));
                    }
                }
                let mut sink = StreamingSink {
                    file: &job.file,
                    id,
                    emit,
                };
                reducer.run_with_progress(netlist, &buses, &[], &mut sink)
            }
            None => reducer.run(netlist, &buses, &[]),
        }
        .map_err(|e| format!("reduction failed: {e}"))?;
        self.add("reduce.iterations", report.iterations as u64);
        self.add("reduce.proposed", report.proposed as u64);
        self.add("reduce.screened", report.screened as u64);
        self.add("reduce.confirmed", report.confirmed as u64);
        self.add("reduce.accepted", report.moves.len() as u64);
        Ok(report::reduce_json(&job.file, &report, seeds, jobs, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_core::netlist::Netlist;
    use glitch_io::emit_blif;

    fn temp_netlist(tag: &str) -> (PathBuf, String) {
        let mut n = Netlist::new("enginetest");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.xor2(a, b, "x");
        let y = n.and2(a, x, "y");
        n.mark_output(y);
        let dir = std::env::temp_dir().join(format!("glitch-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blif");
        std::fs::write(&path, emit_blif(&n)).unwrap();
        (dir, path.to_string_lossy().into_owned())
    }

    fn job(file: &str) -> JobRequest {
        JobRequest {
            file: file.to_string(),
            cycles: Some(30),
            ..JobRequest::default()
        }
    }

    fn run(engine: &Engine, kind: JobKind, request: &JobRequest, track: u64) -> String {
        let ctx = RequestContext::inline(engine.next_request_id());
        engine.run_job(kind, request, track, ctx, None)
    }

    #[test]
    fn analyze_responses_are_deterministic() {
        let (dir, file) = temp_netlist("det");
        let engine = Engine::new(0, None);
        let first = run(&engine, JobKind::Analyze, &job(&file), 1);
        let second = run(&engine, JobKind::Analyze, &job(&file), 2);
        assert!(first.contains("\"activity\""), "unexpected: {first}");
        assert_eq!(first, second);
        assert_eq!(engine.counter_value("cache.netlist_hits"), 1);
        assert_eq!(engine.counter_value("cache.netlist_misses"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_flips_hit_the_baseline_cache() {
        let (dir, file) = temp_netlist("flip");
        let engine = Engine::new(0, None);
        let mut request = job(&file);
        request.flips = Some("0:a".to_string());
        let first = run(&engine, JobKind::Flip, &request, 1);
        assert!(first.contains("\"incremental\""), "unexpected: {first}");
        request.flips = Some("1:b".to_string());
        let second = run(&engine, JobKind::Flip, &request, 1);
        assert!(second.contains("\"incremental\""), "unexpected: {second}");
        assert_eq!(engine.counter_value("cache.baseline_misses"), 1);
        assert_eq!(engine.counter_value("cache.baseline_hits"), 1);
        // Same flip again: identical bytes, another hit.
        let third = run(&engine, JobKind::Flip, &request, 1);
        assert_eq!(second, third);
        assert_eq!(engine.counter_value("cache.baseline_hits"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_fingerprints_and_bad_params_are_rejected() {
        let (dir, file) = temp_netlist("stale");
        let engine = Engine::new(0, None);
        let mut request = job(&file);
        request.fingerprint = Some(0xdead_beef);
        let reply = run(&engine, JobKind::Analyze, &request, 1);
        assert!(reply.contains("stale fingerprint"), "unexpected: {reply}");
        let mut request = job(&file);
        request.tech = Some("90nm".to_string());
        let reply = run(&engine, JobKind::Analyze, &request, 1);
        assert!(reply.contains("--tech must be"), "unexpected: {reply}");
        let mut request = job(&file);
        request.flips = Some("0:a".to_string());
        let reply = run(&engine, JobKind::Analyze, &request, 1);
        assert!(reply.contains("does not take"), "unexpected: {reply}");
        assert_eq!(engine.counter_value("serve.errors"), 3);
        assert_eq!(engine.counter_value("serve.errors.analyze"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_and_trace_render() {
        let (dir, file) = temp_netlist("metrics");
        let engine = Engine::new(0, None);
        run(&engine, JobKind::Analyze, &job(&file), 3);
        let metrics = engine.metrics_response(MetricsFormat::Json, 90);
        assert!(metrics.starts_with("{\"counters\":{"), "got: {metrics}");
        assert!(metrics.contains("serve.requests.analyze"));
        assert!(metrics.contains("serve.handle_us.analyze"));
        let text = engine.metrics_response(MetricsFormat::Text, 91);
        assert!(text.starts_with("{\"metrics\":\""), "got: {text}");
        let prometheus = engine.metrics_response(MetricsFormat::Prometheus, 92);
        assert!(
            prometheus.starts_with("{\"metrics\":\""),
            "got: {prometheus}"
        );
        assert!(
            prometheus.contains("serve_requests_analyze 1"),
            "got: {prometheus}"
        );
        let trace = engine.chrome_trace(&[(3, "worker-3")]);
        assert!(trace.contains("\"tid\":3"), "got: {trace}");
        assert!(trace.contains("worker-3"), "got: {trace}");
        assert!(
            trace.contains("\"args\":{\"request_id\":1}"),
            "got: {trace}"
        );
        assert!(engine.ping_response(5).contains("\"ok\":true"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn status_reports_counts_latency_and_cache() {
        let (dir, file) = temp_netlist("status");
        let engine = Engine::new(0, None);
        run(&engine, JobKind::Analyze, &job(&file), 1);
        let mut bad = job(&file);
        bad.tech = Some("bogus".to_string());
        run(&engine, JobKind::Analyze, &bad, 1);
        engine.record_shed(engine.next_request_id(), "sweep");
        let status = engine.status_response(engine.next_request_id(), 4, 2);
        assert!(
            status.starts_with("{\"counts\":{\"requests\":{"),
            "got: {status}"
        );
        assert!(
            status.contains("\"requests\":{\"analyze\":2,\"status\":1}"),
            "got: {status}"
        );
        assert!(
            status.contains("\"errors\":{\"analyze\":1}"),
            "got: {status}"
        );
        assert!(status.contains("\"shed\":{\"sweep\":1}"), "got: {status}");
        assert!(status.contains("\"queue_depth\":4"), "got: {status}");
        assert!(status.contains("\"workers\":2"), "got: {status}");
        assert!(status.contains("\"busy_workers\":0"), "got: {status}");
        assert!(status.contains("\"cache\":{\"bytes\":"), "got: {status}");
        // Latency carries per-window percentiles for the op that ran.
        assert!(
            status.contains("\"analyze\":{\"queue_wait_us\":{\"1m\":{\"count\":2,"),
            "got: {status}"
        );
        assert!(status.contains("\"handle_us\":{\"1m\":{"), "got: {status}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shed_requests_never_reach_the_latency_histograms() {
        let engine = Engine::new(0, None);
        engine.record_shed(engine.next_request_id(), "analyze");
        engine.record_shed(engine.next_request_id(), "reduce");
        let metrics = engine.metrics_response(MetricsFormat::Json, 9);
        assert!(metrics.contains("\"serve.shed\":2"), "got: {metrics}");
        assert!(
            metrics.contains("\"serve.shed.analyze\":1"),
            "got: {metrics}"
        );
        assert!(
            !metrics.contains("serve.queue_wait_us.analyze"),
            "shed must not be sampled: {metrics}"
        );
        assert!(
            !metrics.contains("serve.handle_us.analyze"),
            "shed must not be sampled: {metrics}"
        );
        let status = engine.status_response(engine.next_request_id(), 0, 1);
        assert!(
            !status.contains("\"analyze\":{\"queue_wait_us\""),
            "shed ops must not appear in status latency: {status}"
        );
    }

    #[test]
    fn the_access_log_gets_one_line_per_request() {
        let (dir, file) = temp_netlist("accesslog");
        let log_path = dir.join("access.jsonl");
        let mut engine = Engine::new(0, None);
        engine
            .set_access_log(&log_path.to_string_lossy(), 1 << 20)
            .unwrap();
        run(&engine, JobKind::Analyze, &job(&file), 1);
        engine.record_shed(engine.next_request_id(), "sweep");
        engine.ping_response(engine.next_request_id());
        let text = std::fs::read_to_string(&log_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "got: {text}");
        assert!(
            lines[0].starts_with("{\"id\":1,\"op\":\"analyze\""),
            "got: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"cache\":\"miss\""), "got: {}", lines[0]);
        assert!(lines[0].contains("\"outcome\":\"ok\""), "got: {}", lines[0]);
        assert!(lines[0].contains("\"fingerprint\":\""), "got: {}", lines[0]);
        assert!(lines[1].contains("\"op\":\"sweep\""), "got: {}", lines[1]);
        assert!(
            lines[1].contains("\"outcome\":\"shed\""),
            "got: {}",
            lines[1]
        );
        assert!(lines[2].contains("\"op\":\"ping\""), "got: {}", lines[2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_reduce_is_byte_identical_to_the_plain_run() {
        let mut n = Netlist::new("reducestream");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.xor2(a, b, "x");
        let y = n.and2(x, c, "y");
        let z = n.xor2(y, a, "z");
        n.mark_output(z);
        let dir = std::env::temp_dir().join(format!("glitch-engine-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blif");
        std::fs::write(&path, emit_blif(&n)).unwrap();
        let file = path.to_string_lossy().into_owned();

        let engine = Engine::new(0, None);
        let mut request = job(&file);
        request.cycles = Some(40);
        request.max_iters = Some(1);
        let plain = run(&engine, JobKind::Reduce, &request, 1);
        request.progress = true;
        let interim = Mutex::new(Vec::new());
        let emit = |line: String| interim.lock().unwrap().push(line);
        let ctx = RequestContext::inline(engine.next_request_id());
        let streamed = engine.run_job(JobKind::Reduce, &request, 1, ctx, Some(&emit));
        assert_eq!(plain, streamed, "the sink must be observe-only");
        let interim = interim.into_inner().unwrap();
        assert!(!interim.is_empty(), "at least one progress line");
        for line in &interim {
            assert!(
                line.starts_with("{\"progress\":\"reduce\",\"id\":"),
                "got: {line}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
