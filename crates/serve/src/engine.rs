//! The request engine: executes parsed protocol jobs against the warm
//! cache and produces the response line for each.
//!
//! One [`Engine`] is shared by every worker thread of the daemon. It owns
//! the [`CircuitCache`], the merged [`MetricsRegistry`] behind the
//! `metrics` op, and the span records behind `--trace-out`. Job execution
//! mirrors the CLI's command paths *call for call* — the same `params`
//! resolution, the same analysis entry points, the same `report`
//! envelopes — which is what makes a daemon response byte-identical to
//! the equivalent one-shot `glitch-cli ... --json` run.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use glitch_core::netlist::Netlist;
use glitch_core::sim::{
    kernel_prepass, run_kernel_jobs, MetricsProbe, Probe, RandomStimulus, SimJob, SimOptions,
};
use glitch_core::verify::VerifyReport;
use glitch_core::{
    AggregateReport, AnalysisConfig, DeltaStimulus, EngineKind, GlitchAnalyzer, IncrementalStats,
    KernelProgram, KernelTelemetry, SimBaseline,
};
use glitch_io::GateLibrary;
use glitch_obs::export::{chrome_trace_with_tracks, metrics_json, metrics_text};
use glitch_obs::{Clock, MetricsRegistry, SpanLog};

use crate::cache::{CachedCircuit, CircuitCache};
use crate::json::JsonObject;
use crate::params;
use crate::protocol::{error_response, ok_response, JobKind, JobRequest, MetricsFormat};
use crate::report;

/// Upper bound on retained per-request spans, mirroring
/// [`glitch_obs::span::DEFAULT_SPAN_CAPACITY`]: a long-lived daemon must
/// not grow its trace without bound.
const SPAN_CAPACITY: usize = 4096;

/// The single-lane [`SimJob`] mirroring [`GlitchAnalyzer::session`]'s
/// stimulus, for feeding the compiled kernel on single-seed runs (the
/// CLI's `kernel_job` twin).
fn kernel_job<'a>(netlist: &'a Netlist, config: &AnalysisConfig) -> SimJob<'a> {
    SimJob::new(
        netlist,
        params::input_buses(netlist),
        config.cycles,
        config.seed,
    )
    .with_delay(config.delay.clone())
    .with_power(config.technology, config.frequency)
    .with_options(config.options)
}

/// The shared request executor. All methods take `&self`; the registry
/// and span store sit behind short-lived locks, the heavy work (parse,
/// simulate) runs lock-free through the cache's single-flight slots.
pub struct Engine {
    cache: CircuitCache,
    metrics: Mutex<MetricsRegistry>,
    clock: Clock,
    spans: Mutex<VecDeque<(String, u64, u64, u64)>>,
}

impl Engine {
    /// An engine with a cache byte budget (0 = unbounded) and an optional
    /// baseline spill directory.
    #[must_use]
    pub fn new(cache_bytes: usize, spill_dir: Option<PathBuf>) -> Engine {
        Engine {
            cache: CircuitCache::new(cache_bytes, spill_dir),
            metrics: Mutex::new(MetricsRegistry::new()),
            clock: Clock::new(),
            spans: Mutex::new(VecDeque::new()),
        }
    }

    /// The engine's monotonic clock (shared timeline for every span).
    #[must_use]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Reads a counter from the merged registry (0 when never touched).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .expect("metrics lock")
            .counter_value(name)
            .unwrap_or(0)
    }

    fn add(&self, name: &str, n: u64) {
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let handle = metrics.counter(name);
        metrics.add(handle, n);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut metrics = self.metrics.lock().expect("metrics lock");
        let handle = metrics.gauge(name);
        metrics.observe_max(handle, value);
    }

    fn merge(&self, registry: MetricsRegistry) {
        self.metrics.lock().expect("metrics lock").merge(registry);
    }

    fn record_span(&self, name: String, track: u64, start: u64, dur: u64) {
        let mut spans = self.spans.lock().expect("span lock");
        if spans.len() == SPAN_CAPACITY {
            spans.pop_front();
        }
        spans.push_back((name, track, start, dur));
    }

    /// Mirrors the CLI telemetry's aggregate recording (`sim.*`,
    /// `queue.*`).
    fn record_aggregate(&self, aggregate: &AggregateReport) {
        self.add("sim.cycles", aggregate.total_cycles());
        self.add("sim.events", aggregate.total_events());
        self.add("sim.cell_evals", aggregate.total_cell_evals());
        self.gauge_max("sim.max_settle_time", aggregate.max_settle_time());
        let queue = aggregate.queue_stats();
        self.add("queue.pushes", queue.pushes);
        self.add("queue.pops", queue.pops);
        self.gauge_max("queue.peak_depth", queue.peak_depth);
    }

    /// Mirrors the CLI telemetry's kernel recording (`kernel.*`): the
    /// prepass's lane/cycle/pair classification and functional work.
    fn record_kernel(&self, kernel: &KernelTelemetry) {
        self.add("kernel.lanes", kernel.lanes as u64);
        self.add("kernel.cycles_total", kernel.total_cycles);
        self.add("kernel.cycles_quiet", kernel.quiet_cycles);
        self.add("kernel.pairs_total", kernel.total_pairs);
        self.add("kernel.pairs_quiet", kernel.quiet_pairs);
        self.add(
            "kernel.functional_transitions",
            kernel.functional_transitions,
        );
        self.add("kernel.functional_cell_evals", kernel.functional_cell_evals);
        self.gauge_max("kernel.program_ops", kernel.program_ops as u64);
        self.gauge_max("kernel.program_bytes", kernel.program_bytes as u64);
    }

    /// The cached compiled kernel program for non-queue engines (`None`
    /// for the queue engine), with its hit/miss/eviction counters.
    fn compiled_program(
        &self,
        circuit: &Arc<CachedCircuit>,
        config: &AnalysisConfig,
    ) -> Result<Option<Arc<KernelProgram>>, String> {
        if config.engine == EngineKind::Queue {
            return Ok(None);
        }
        let lookup = self.cache.program_for(circuit)?;
        self.add(
            if lookup.hit {
                "cache.program_hits"
            } else {
                "cache.program_misses"
            },
            1,
        );
        if lookup.evicted > 0 {
            self.add("cache.evictions", lookup.evicted);
        }
        Ok(Some(lookup.program))
    }

    /// Mirrors the CLI telemetry's incremental recording
    /// (`incremental.*`).
    fn record_incremental(&self, stats: &IncrementalStats) {
        self.add("incremental.replayed_cycles", stats.replayed_cycles);
        self.add("incremental.simulated_cycles", stats.simulated_cycles);
        self.add("incremental.cells_evaluated", stats.cells_evaluated);
        self.add(
            "incremental.dff_divergence_reseeds",
            stats.dff_divergence_reseeds,
        );
        self.gauge_max(
            "incremental.peak_dirty_cone_nets",
            stats.peak_dirty_cone_nets,
        );
    }

    /// Mirrors the CLI telemetry's verdict recording (`check.*`).
    fn record_check(&self, report: &VerifyReport) {
        self.add("check.violations_total", report.total_violations());
        self.add("check.violations_retained", report.retained_violations());
        self.add("check.violations_dropped", report.dropped_violations());
        for outcome in report.outcomes() {
            self.add(
                &format!("check.{}.violations", outcome.checker),
                outcome.total_violations,
            );
        }
    }

    /// Folds a finished session's metrics probe into the daemon registry,
    /// exactly as the CLI's `--metrics` wiring does per session.
    fn absorb_session(&self, report: &mut glitch_core::sim::SessionReport) {
        if let Some(mut probe) = report.take_probe::<MetricsProbe>() {
            probe.record_queue_stats(report.queue_stats());
            self.merge(probe.into_registry());
        }
    }

    /// Runs one job to a single response line, with its request counter,
    /// timing span (on the worker's trace track) and cache gauges.
    pub fn run_job(&self, kind: JobKind, job: &JobRequest, track: u64) -> String {
        self.add(&format!("serve.requests.{}", kind.op()), 1);
        let start = self.clock.now_micros();
        let result = self.execute(kind, job);
        let dur = self.clock.now_micros().saturating_sub(start);
        self.record_span(format!("{} {}", kind.op(), job.file), track, start, dur);
        self.gauge_max("cache.peak_bytes", self.cache.bytes() as u64);
        self.gauge_max("cache.circuits", self.cache.circuit_count() as u64);
        match result {
            Ok(line) => line,
            Err(message) => {
                self.add("serve.errors", 1);
                error_response(&message)
            }
        }
    }

    /// The `ping` response.
    pub fn ping_response(&self) -> String {
        self.add("serve.requests.ping", 1);
        ok_response()
    }

    /// The `metrics` response: the merged registry, either as the stable
    /// sorted one-line JSON object or as the human-readable text wrapped
    /// in a JSON envelope.
    pub fn metrics_response(&self, format: MetricsFormat) -> String {
        self.add("serve.requests.metrics", 1);
        let registry = self.metrics.lock().expect("metrics lock").clone();
        match format {
            MetricsFormat::Json => metrics_json(&registry),
            MetricsFormat::Text => JsonObject::new()
                .str("metrics", &metrics_text(&registry))
                .render(),
        }
    }

    /// Counts a request shed by admission control (the caller renders the
    /// error line).
    pub fn record_shed(&self) {
        self.add("serve.shed", 1);
    }

    /// Tracks the job queue's high-water mark.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.gauge_max("serve.queue_peak_depth", depth as u64);
    }

    /// Renders every retained per-request span as a Chrome trace, with
    /// one named track per worker.
    #[must_use]
    pub fn chrome_trace(&self, tracks: &[(u64, &str)]) -> String {
        let log = SpanLog::with_capacity(self.clock, SPAN_CAPACITY);
        for (name, tid, start, dur) in self.spans.lock().expect("span lock").iter() {
            log.record(name.clone(), *tid, *start, *dur);
        }
        chrome_trace_with_tracks(&log, tracks)
    }

    /// Fields a job op must not carry — the strict-protocol counterpart
    /// of CLI flags that only exist on other subcommands.
    fn reject_foreign_fields(kind: JobKind, job: &JobRequest) -> Result<(), String> {
        let mut bad: Vec<&str> = Vec::new();
        let check_only = [
            (job.x_init, "x_init"),
            (job.hazards, "hazards"),
            (job.budget.is_some(), "budget"),
            (job.stable.is_some(), "stable"),
        ];
        let reduce_only = [
            (job.moves.is_some(), "moves"),
            (job.target.is_some(), "target"),
            (job.max_iters.is_some(), "max_iters"),
        ];
        if kind != JobKind::Reduce {
            bad.extend(reduce_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
        }
        match kind {
            JobKind::Analyze => {
                if job.flips.is_some() {
                    bad.push("flips (use op `flip`)");
                }
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
            JobKind::Flip => {
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
                if job.engine.is_some() {
                    bad.push("engine (flip rides the incremental queue replay)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
            JobKind::Check => {
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
            }
            JobKind::Sweep => {
                if job.flips.is_some() {
                    bad.push("flips (use op `flip`)");
                }
                if job.delay.is_some() {
                    bad.push("delay (the delay-model sweep takes `delays`)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
            JobKind::Reduce => {
                if job.flips.is_some() {
                    bad.push("flips (use op `flip`)");
                }
                if job.delays.is_some() {
                    bad.push("delays (sweep only)");
                }
                bad.extend(check_only.iter().filter(|(set, _)| *set).map(|&(_, n)| n));
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "op `{}` does not take: {}",
                kind.op(),
                bad.join(", ")
            ))
        }
    }

    fn execute(&self, kind: JobKind, job: &JobRequest) -> Result<String, String> {
        Self::reject_foreign_fields(kind, job)?;
        let lookup = self.cache.circuit_for(&job.file)?;
        self.add(
            if lookup.hit {
                "cache.netlist_hits"
            } else {
                "cache.netlist_misses"
            },
            1,
        );
        if lookup.coalesced {
            self.add("cache.coalesced_waits", 1);
        }
        let circuit = lookup.circuit;
        if let Some(expected) = job.fingerprint {
            let actual = circuit.fingerprint();
            if expected != actual {
                self.add("serve.stale_fingerprints", 1);
                return Err(format!(
                    "stale fingerprint: request pins {expected:016x} but `{}` now parses \
                     to {actual:016x}; re-fetch the circuit and retry",
                    job.file
                ));
            }
        }
        let library = params::library_for_tech(job.tech.as_deref()).map_err(|e| e.to_string())?;
        match kind {
            JobKind::Analyze => self.run_analyze(job, &circuit, &library),
            JobKind::Flip => self.run_flip(job, &circuit, &library),
            JobKind::Check => self.run_check(job, &circuit, &library),
            JobKind::Sweep => self.run_sweep(job, &circuit, &library),
            JobKind::Reduce => self.run_reduce(job, &circuit, &library),
        }
    }

    /// `analyze` — the CLI's single- and multi-seed `--json` paths.
    ///
    /// The daemon defaults to the *hybrid* engine: a kernel prepass over
    /// the cached compiled program classifies the quiet work before the
    /// queue runs, and the response stays byte-identical to a one-shot
    /// `glitch-cli analyze --json` queue run. An explicit `engine` field
    /// overrides the default.
    fn run_analyze(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        let netlist = circuit.netlist();
        let buses = params::input_buses(netlist);
        let program = self.compiled_program(circuit, &config)?;
        let analyzer = GlitchAnalyzer::new(config.clone());
        if seeds > 1 {
            let seed_list = params::stimulus_seeds(config.seed, seeds);
            let factory =
                |_shard: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(MetricsProbe::new())] };
            let (aggregate, mut reports) = analyzer
                .analyze_seeds_compiled(
                    netlist,
                    &buses,
                    &[],
                    &seed_list,
                    jobs,
                    &factory,
                    program.as_deref(),
                )
                .map_err(|e| format!("simulation failed: {e}"))?;
            if let Some(kernel) = &aggregate.kernel {
                self.record_kernel(kernel);
            }
            for report in &mut reports {
                self.absorb_session(report);
            }
            return Ok(report::analyze_aggregate_json(
                &job.file,
                netlist,
                seeds,
                jobs,
                config.cycles,
                &aggregate,
                None,
            ));
        }
        let mut report = if config.engine == EngineKind::Kernel {
            let program = program.as_deref().expect("compiled for the kernel engine");
            let factory =
                |_lane: usize| -> Vec<Box<dyn Probe>> { vec![Box::new(MetricsProbe::new())] };
            let sim_job = kernel_job(netlist, &config);
            let reports =
                run_kernel_jobs(netlist, program, std::slice::from_ref(&sim_job), &factory)
                    .map_err(|e| format!("simulation failed: {e}"))?;
            reports
                .into_iter()
                .next()
                .expect("one job in, one report out")
        } else {
            let mut session = analyzer
                .session(netlist, &buses, &[])
                .probe(MetricsProbe::new());
            if let Some(program) = program.as_deref() {
                let sim_job = kernel_job(netlist, &config);
                let prepass = kernel_prepass(netlist, program, std::slice::from_ref(&sim_job))
                    .map_err(|e| format!("kernel prepass failed: {e}"))?;
                let kernel = KernelTelemetry::from_prepass(netlist, program, &prepass)
                    .map_err(|e| format!("kernel prepass failed: {e}"))?;
                self.record_kernel(&kernel);
                session = session.quiet_cycles(prepass.quiet_cycles(0));
            }
            session
                .run()
                .map_err(|e| format!("simulation failed: {e}"))?
        };
        self.absorb_session(&mut report);
        let passes = report.passes();
        let events = report.total_events();
        let max_settle = report.max_settle_time();
        let cell_evals = report.total_cell_evals();
        let analysis = GlitchAnalyzer::analysis(netlist, report);
        Ok(report::analyze_json(
            &job.file, netlist, &analysis, passes, events, max_settle, cell_evals, None,
        ))
    }

    /// `flip` — the CLI's `analyze --flip --json` path, served from the
    /// baseline cache: the recording pass runs once per (circuit,
    /// parameters), later requests replay through the shared cone index.
    fn run_flip(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            None,
        )
        .map_err(|e| e.to_string())?;
        let (seeds, _jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        if seeds > 1 {
            return Err("--flip applies to single-seed runs; drop --seeds or --flip".into());
        }
        let netlist = circuit.netlist();
        let spec = job.flips.as_deref().unwrap_or_default();
        let flips = params::parse_flips(spec, netlist).map_err(|e| e.to_string())?;
        params::check_flip_cycles(&flips, config.cycles).map_err(|e| e.to_string())?;
        let buses = params::input_buses(netlist);
        let analyzer = GlitchAnalyzer::new(config.clone());
        // The baseline cache key: everything the cached "before" analysis
        // depends on. The netlist fingerprint is the cache's own outer key.
        let key = format!(
            "{}:{}:{}:{}:{:?}:{:?}",
            config.cycles,
            config.seed,
            job.tech.as_deref().unwrap_or("0.8um"),
            config.frequency.to_bits(),
            config.delay,
            config.options
        );
        // A spill file stores the baseline but not its seed; validate by
        // regenerating the configured stimulus, as the CLI's `--baseline`
        // loader does.
        let validate = |baseline: &SimBaseline| {
            if baseline.cycle_count() != config.cycles
                || baseline.delay() != &config.delay
                || baseline.options() != config.options
            {
                return false;
            }
            let mut regenerated =
                RandomStimulus::new(params::input_buses(netlist), config.cycles, config.seed);
            (0..baseline.cycle_count())
                .all(|cycle| regenerated.next().as_ref() == Some(baseline.assignment(cycle)))
        };
        let lookup = self.cache.baseline_for(
            circuit,
            &key,
            validate,
            || {
                analyzer
                    .analyze_baseline(netlist, &buses, &[])
                    .map(|(analysis, baseline)| (baseline, analysis))
                    .map_err(|e| format!("simulation failed: {e}"))
            },
            |nl, baseline| {
                analyzer
                    .analyze_delta(nl, baseline, &DeltaStimulus::new())
                    .map(|delta| delta.analysis)
                    .map_err(|e| format!("baseline replay failed: {e}"))
            },
        )?;
        self.add(
            if lookup.hit {
                "cache.baseline_hits"
            } else {
                "cache.baseline_misses"
            },
            1,
        );
        if lookup.coalesced {
            self.add("cache.coalesced_waits", 1);
        }
        if lookup.spill_load {
            self.add("cache.spill_loads", 1);
        }
        if lookup.evicted > 0 {
            self.add("cache.evictions", lookup.evicted);
        }
        let entry = lookup.entry;
        let (delta, applied) =
            params::flips_to_delta(&flips, &entry.baseline).map_err(|e| e.to_string())?;
        let index = circuit.cone_index()?;
        let after = analyzer
            .analyze_delta_with_index(netlist, &entry.baseline, &delta, Some(&index))
            .map_err(|e| format!("incremental simulation failed: {e}"))?;
        self.record_incremental(&after.incremental);
        Ok(report::analyze_flip_json(
            &job.file,
            netlist,
            entry.baseline.cycle_count(),
            &applied,
            &after.incremental,
            &entry.before,
            &after.analysis,
        ))
    }

    /// `check` — the CLI's `check --json` paths (multi-seed suite run, or
    /// the incremental baseline/flipped pair when `flips` is present).
    fn run_check(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.x_init {
            config.options = SimOptions::x_init();
        }
        let netlist = circuit.netlist();
        let suite = params::build_check_suite(
            netlist,
            job.budget.as_deref(),
            None,
            job.hazards,
            job.stable.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        let buses = params::input_buses(netlist);
        if let Some(spec) = job.flips.as_deref() {
            if job.seeds.is_some() {
                return Err("--flip applies to single-seed runs; drop --seeds or --flip".into());
            }
            if config.engine != EngineKind::Queue {
                return Err(
                    "`flips` rides the incremental queue replay; drop `engine` or `flips`".into(),
                );
            }
            let flips = params::parse_flips(spec, netlist).map_err(|e| e.to_string())?;
            params::check_flip_cycles(&flips, config.cycles).map_err(|e| e.to_string())?;
            let analyzer = GlitchAnalyzer::new(config.clone());
            let (base_report, _, baseline) = analyzer
                .check_baseline(netlist, &buses, &[], &suite)
                .map_err(|e| format!("simulation failed: {e}"))?;
            let (delta, applied) =
                params::flips_to_delta(&flips, &baseline).map_err(|e| e.to_string())?;
            let flipped = analyzer
                .check_delta(netlist, &baseline, &delta, &suite)
                .map_err(|e| format!("incremental simulation failed: {e}"))?;
            self.record_incremental(&flipped.incremental);
            self.record_check(&flipped.report);
            return Ok(report::check_flip_json(
                &job.file,
                netlist,
                baseline.cycle_count(),
                job.x_init,
                &applied,
                &base_report,
                &flipped,
            ));
        }
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        let seed_list = params::stimulus_seeds(config.seed, seeds);
        let program = self.compiled_program(circuit, &config)?;
        let checked = GlitchAnalyzer::new(config.clone())
            .check_seeds_compiled(
                netlist,
                &buses,
                &[],
                &suite,
                &seed_list,
                jobs,
                program.as_deref(),
            )
            .map_err(|e| format!("simulation failed: {e}"))?;
        if let Some(kernel) = &checked.analysis.kernel {
            self.record_kernel(kernel);
        }
        self.record_aggregate(&checked.analysis.aggregate);
        self.record_check(&checked.report);
        Ok(report::check_json(
            &job.file,
            netlist,
            config.cycles,
            seeds,
            jobs,
            job.x_init,
            &checked,
        ))
    }

    /// `sweep` — the CLI's delay-model `sweep --json` path.
    fn run_sweep(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            None,
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        let models = params::delay_sweep_models(job.delays.as_deref(), library)
            .map_err(|e| e.to_string())?;
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, models.len()).map_err(|e| e.to_string())?;
        let seed_list = params::stimulus_seeds(config.seed, seeds);
        let netlist = circuit.netlist();
        let buses = params::input_buses(netlist);
        let program = self.compiled_program(circuit, &config)?;
        let points = GlitchAnalyzer::new(config.clone())
            .sweep_delays_compiled(
                netlist,
                &buses,
                &[],
                &models,
                &seed_list,
                jobs,
                program.as_deref(),
            )
            .map_err(|e| format!("simulation failed: {e}"))?;
        // One prepass serves the whole sweep; record its classification
        // once (every point carries the same copy).
        if let Some(kernel) = points.first().and_then(|p| p.analysis.kernel.as_ref()) {
            self.record_kernel(kernel);
        }
        for point in &points {
            self.record_aggregate(&point.analysis.aggregate);
        }
        Ok(report::sweep_json(
            &job.file,
            netlist,
            seeds,
            jobs,
            config.cycles,
            &points,
        ))
    }

    /// `reduce` — the CLI's `reduce --json` path: the greedy glitch-power
    /// descent with the final equivalence verification, served from the
    /// same content-addressed netlist cache as every other op. The daemon
    /// defaults to the hybrid engine (kernel batch screening, queue
    /// scoring), whose reports are bit-identical to pure-queue runs.
    fn run_reduce(
        &self,
        job: &JobRequest,
        circuit: &Arc<CachedCircuit>,
        library: &GateLibrary,
    ) -> Result<String, String> {
        let mut config = params::analysis_config(
            library,
            job.cycles,
            job.seed,
            job.frequency_mhz,
            job.delay.as_deref(),
            job.engine.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        if job.engine.is_none() {
            config.engine = EngineKind::Hybrid;
        }
        if config.engine == EngineKind::Kernel {
            return Err(
                "the kernel engine has no glitch model to score moves with; \
                 use engine `queue` or `hybrid`"
                    .into(),
            );
        }
        let (seeds, jobs) =
            params::seeds_and_jobs(job.seeds, job.jobs, 1).map_err(|e| e.to_string())?;
        let seed_list = params::stimulus_seeds(config.seed, seeds);
        let moves = glitch_reduce::parse_moves(job.moves.as_deref().unwrap_or_default())
            .map_err(|e| e.to_string())?;
        let options = glitch_reduce::ReduceOptions {
            moves,
            target_percent: job.target,
            max_iters: job
                .max_iters
                .unwrap_or(glitch_reduce::ReduceOptions::default().max_iters),
            ..glitch_reduce::ReduceOptions::default()
        };
        let netlist = circuit.netlist();
        let buses = params::input_buses(netlist);
        let cycles = config.cycles;
        let session = glitch_core::ReduceSession::new(config, seed_list, jobs);
        let report = glitch_reduce::Reducer::new(session, options)
            .run(netlist, &buses, &[])
            .map_err(|e| format!("reduction failed: {e}"))?;
        self.add("reduce.iterations", report.iterations as u64);
        self.add("reduce.proposed", report.proposed as u64);
        self.add("reduce.screened", report.screened as u64);
        self.add("reduce.confirmed", report.confirmed as u64);
        self.add("reduce.accepted", report.moves.len() as u64);
        Ok(report::reduce_json(&job.file, &report, seeds, jobs, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_core::netlist::Netlist;
    use glitch_io::emit_blif;

    fn temp_netlist(tag: &str) -> (PathBuf, String) {
        let mut n = Netlist::new("enginetest");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.xor2(a, b, "x");
        let y = n.and2(a, x, "y");
        n.mark_output(y);
        let dir = std::env::temp_dir().join(format!("glitch-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blif");
        std::fs::write(&path, emit_blif(&n)).unwrap();
        (dir, path.to_string_lossy().into_owned())
    }

    fn job(file: &str) -> JobRequest {
        JobRequest {
            file: file.to_string(),
            cycles: Some(30),
            ..JobRequest::default()
        }
    }

    #[test]
    fn analyze_responses_are_deterministic() {
        let (dir, file) = temp_netlist("det");
        let engine = Engine::new(0, None);
        let first = engine.run_job(JobKind::Analyze, &job(&file), 1);
        let second = engine.run_job(JobKind::Analyze, &job(&file), 2);
        assert!(first.contains("\"activity\""), "unexpected: {first}");
        assert_eq!(first, second);
        assert_eq!(engine.counter_value("cache.netlist_hits"), 1);
        assert_eq!(engine.counter_value("cache.netlist_misses"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_flips_hit_the_baseline_cache() {
        let (dir, file) = temp_netlist("flip");
        let engine = Engine::new(0, None);
        let mut request = job(&file);
        request.flips = Some("0:a".to_string());
        let first = engine.run_job(JobKind::Flip, &request, 1);
        assert!(first.contains("\"incremental\""), "unexpected: {first}");
        request.flips = Some("1:b".to_string());
        let second = engine.run_job(JobKind::Flip, &request, 1);
        assert!(second.contains("\"incremental\""), "unexpected: {second}");
        assert_eq!(engine.counter_value("cache.baseline_misses"), 1);
        assert_eq!(engine.counter_value("cache.baseline_hits"), 1);
        // Same flip again: identical bytes, another hit.
        let third = engine.run_job(JobKind::Flip, &request, 1);
        assert_eq!(second, third);
        assert_eq!(engine.counter_value("cache.baseline_hits"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_fingerprints_and_bad_params_are_rejected() {
        let (dir, file) = temp_netlist("stale");
        let engine = Engine::new(0, None);
        let mut request = job(&file);
        request.fingerprint = Some(0xdead_beef);
        let reply = engine.run_job(JobKind::Analyze, &request, 1);
        assert!(reply.contains("stale fingerprint"), "unexpected: {reply}");
        let mut request = job(&file);
        request.tech = Some("90nm".to_string());
        let reply = engine.run_job(JobKind::Analyze, &request, 1);
        assert!(reply.contains("--tech must be"), "unexpected: {reply}");
        let mut request = job(&file);
        request.flips = Some("0:a".to_string());
        let reply = engine.run_job(JobKind::Analyze, &request, 1);
        assert!(reply.contains("does not take"), "unexpected: {reply}");
        assert_eq!(engine.counter_value("serve.errors"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_and_trace_render() {
        let (dir, file) = temp_netlist("metrics");
        let engine = Engine::new(0, None);
        engine.run_job(JobKind::Analyze, &job(&file), 3);
        let metrics = engine.metrics_response(MetricsFormat::Json);
        assert!(metrics.starts_with("{\"counters\":{"), "got: {metrics}");
        assert!(metrics.contains("serve.requests.analyze"));
        let text = engine.metrics_response(MetricsFormat::Text);
        assert!(text.starts_with("{\"metrics\":\""), "got: {text}");
        let trace = engine.chrome_trace(&[(3, "worker-3")]);
        assert!(trace.contains("\"tid\":3"), "got: {trace}");
        assert!(trace.contains("worker-3"), "got: {trace}");
        assert!(engine.ping_response().contains("\"ok\":true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
