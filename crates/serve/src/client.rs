//! A minimal blocking client for the JSON-lines protocol: one connection,
//! one request line out, one response line back per call (plus any
//! interim progress lines a streaming job emits before its final line).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon on the loopback interface.
    ///
    /// # Errors
    ///
    /// Returns a message when the connection cannot be established.
    pub fn connect(port: u16) -> Result<Client, String> {
        Client::connect_with_timeout(port, None)
    }

    /// Connects with a per-response read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Returns a message when the connection cannot be established.
    pub fn connect_with_timeout(port: u16, timeout: Option<Duration>) -> Result<Client, String> {
        let writer = TcpStream::connect(("127.0.0.1", port))
            .map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}"))?;
        // One small request per round trip: Nagle coalescing only adds
        // delayed-ACK latency here.
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(
            writer
                .try_clone()
                .map_err(|e| format!("cannot clone connection: {e}"))?,
        );
        reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        Ok(Client { writer, reader })
    }

    /// Sends one request line and blocks for its response line (without
    /// the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or when the daemon closes the
    /// connection before responding.
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        self.request_streaming(line, |_| {})
    }

    /// Sends one request line, feeds every interim progress line (one
    /// that opens with `{"progress"`) to `on_interim`, and returns the
    /// final response line. A non-streaming request never calls the
    /// callback.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure (including a read timeout) or
    /// when the daemon closes the connection before responding.
    pub fn request_streaming(
        &mut self,
        line: &str,
        mut on_interim: impl FnMut(&str),
    ) -> Result<String, String> {
        // Line and newline in one write, so the request is one segment.
        let framed = format!("{}\n", line.trim_end());
        self.writer
            .write_all(framed.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        loop {
            let mut response = String::new();
            let read = self
                .reader
                .read_line(&mut response)
                .map_err(|e| format!("cannot read response: {e}"))?;
            if read == 0 {
                return Err("daemon closed the connection without responding".into());
            }
            while response.ends_with('\n') || response.ends_with('\r') {
                response.pop();
            }
            if response.starts_with("{\"progress\"") {
                on_interim(&response);
                continue;
            }
            return Ok(response);
        }
    }
}

/// Connects, sends one request, returns the response.
///
/// # Errors
///
/// Propagates [`Client::connect`] and [`Client::request`] failures.
pub fn request_once(port: u16, line: &str) -> Result<String, String> {
    Client::connect(port)?.request(line)
}
