//! The content-addressed warm cache behind the daemon.
//!
//! Four tiers, all keyed off [`Netlist::fingerprint`]:
//!
//! 1. **Parsed netlists** — a file-stamp map (`path -> (mtime, len)`)
//!    fronts a fingerprint-keyed circuit map, so an unchanged file never
//!    re-parses and two paths with identical content share one circuit.
//! 2. **Cone indexes** — built lazily once per circuit and shared by every
//!    incremental job against it.
//! 3. **Compiled kernel programs** — the levelized straight-line programs
//!    behind the `kernel`/`hybrid` engines, compiled once per circuit and
//!    shared by every prepass against it. Delay-independent, so one
//!    program serves every parameter combination.
//! 4. **Sim baselines** — the recorded replay logs that make `flip`
//!    requests incremental, keyed by the analysis parameters that shape
//!    them, with their "before" figures recovered on load by a zero-eval
//!    empty-delta replay.
//!
//! Concurrent requests for the same missing entry are **coalesced**: the
//! first caller computes, the rest block on a single-flight slot and share
//! the result. Baselines are evicted LRU-first under a byte budget and
//! spilled to disk (atomic save), so a re-request after eviction reloads
//! instead of re-recording.
//!
//! The cache is deliberately metrics-free: every lookup reports what
//! happened (`hit`, `coalesced`, `spill_load`, eviction count) and the
//! engine owns the counters.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::SystemTime;

use glitch_core::netlist::{ConeIndex, Netlist};
use glitch_core::{Analysis, KernelProgram, SimBaseline};
use glitch_io::{parse_netlist, Format, GateLibrary};

/// A parsed circuit shared across requests: the netlist plus its lazily
/// built cone index.
pub struct CachedCircuit {
    netlist: Arc<Netlist>,
    fingerprint: u64,
    index: OnceLock<Result<Arc<ConeIndex>, String>>,
    approx: usize,
}

impl CachedCircuit {
    fn new(netlist: Netlist) -> CachedCircuit {
        let fingerprint = netlist.fingerprint();
        // Rough footprint: nets and cells dominate a parsed netlist. An
        // estimate is enough — the budget exists to bound memory, not to
        // account it exactly.
        let approx = netlist.net_count() * 128 + netlist.cell_count() * 96 + 1024;
        CachedCircuit {
            netlist: Arc::new(netlist),
            fingerprint,
            index: OnceLock::new(),
            approx,
        }
    }

    /// The shared parsed netlist.
    #[must_use]
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The circuit's structural fingerprint (the cache key).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shared cone index, built on first use and reused by every
    /// incremental job against this circuit.
    ///
    /// # Errors
    ///
    /// Returns the (cached) build error for cyclic netlists.
    pub fn cone_index(&self) -> Result<Arc<ConeIndex>, String> {
        self.index
            .get_or_init(|| {
                ConeIndex::build(&self.netlist)
                    .map(Arc::new)
                    .map_err(|e| e.to_string())
            })
            .clone()
    }
}

/// A cached baseline plus the "before" analysis figures it reproduces.
pub struct BaselineEntry {
    /// The recorded replay log.
    pub baseline: Arc<SimBaseline>,
    /// The analysis of the unperturbed run — every `flip` response's
    /// `baseline` section, identical whether freshly recorded or recovered
    /// from a spill file by empty-delta replay.
    pub before: Arc<Analysis>,
}

/// What a circuit lookup did, for the engine's counters.
pub struct CircuitLookup {
    /// The shared circuit.
    pub circuit: Arc<CachedCircuit>,
    /// Served from the warm cache without touching the file contents.
    pub hit: bool,
    /// Waited on another request's in-flight parse instead of parsing.
    pub coalesced: bool,
}

/// What a compiled-program lookup did, for the engine's counters.
pub struct ProgramLookup {
    /// The shared compiled kernel program.
    pub program: Arc<KernelProgram>,
    /// Served from the warm cache without recompiling.
    pub hit: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
}

/// What a baseline lookup did, for the engine's counters.
pub struct BaselineLookup {
    /// The shared baseline + before-figures pair.
    pub entry: Arc<BaselineEntry>,
    /// Served from memory.
    pub hit: bool,
    /// Waited on another request's in-flight recording.
    pub coalesced: bool,
    /// Recovered from a spill file instead of re-recording.
    pub spill_load: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
}

/// A single-flight slot: the leader computes and fills, followers wait.
struct Flight<T> {
    slot: Mutex<Option<Result<T, String>>>,
    done: Condvar,
}

impl<T: Clone> Flight<T> {
    fn new() -> Flight<T> {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<T, String> {
        let mut slot = self.slot.lock().expect("flight lock");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("flight lock");
        }
        slot.as_ref().expect("filled").clone()
    }

    fn fill(&self, result: Result<T, String>) {
        *self.slot.lock().expect("flight lock") = Some(result);
        self.done.notify_all();
    }
}

struct FileStamp {
    mtime: Option<SystemTime>,
    len: u64,
    fingerprint: u64,
}

struct BaselineSlot {
    entry: Arc<BaselineEntry>,
    bytes: usize,
    last_used: u64,
}

struct CircuitSlot {
    circuit: Arc<CachedCircuit>,
    baselines: HashMap<String, BaselineSlot>,
    /// The compiled kernel program and its accounted byte footprint.
    program: Option<(Arc<KernelProgram>, usize)>,
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    files: HashMap<String, FileStamp>,
    circuits: HashMap<u64, CircuitSlot>,
    bytes: usize,
    tick: u64,
}

impl CacheState {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts LRU entries (baselines first, then cold circuits' compiled
    /// programs, then whole circuits) until the budget holds, never
    /// evicting the entry just inserted for `(protect_fp, protect_key)`
    /// or the protected circuit's program. The protected entry may leave
    /// the cache a single entry over budget — a cache that cannot hold
    /// its current working item would thrash.
    fn evict_to_budget(&mut self, budget: usize, protect_fp: u64, protect_key: &str) -> u64 {
        let mut evicted = 0;
        while budget > 0 && self.bytes > budget {
            let victim = self
                .circuits
                .iter()
                .flat_map(|(&fp, slot)| {
                    slot.baselines
                        .iter()
                        .filter(move |(key, _)| fp != protect_fp || key.as_str() != protect_key)
                        .map(move |(key, b)| (b.last_used, fp, key.clone()))
                })
                .min();
            if let Some((_, fp, key)) = victim {
                let slot = self.circuits.get_mut(&fp).expect("victim circuit");
                let removed = slot.baselines.remove(&key).expect("victim baseline");
                self.bytes -= removed.bytes;
                evicted += 1;
                continue;
            }
            let victim = self
                .circuits
                .iter()
                .filter(|&(&fp, slot)| fp != protect_fp && slot.program.is_some())
                .map(|(&fp, slot)| (slot.last_used, fp))
                .min();
            if let Some((_, fp)) = victim {
                let slot = self.circuits.get_mut(&fp).expect("victim circuit");
                let (_, bytes) = slot.program.take().expect("victim program");
                self.bytes -= bytes;
                evicted += 1;
                continue;
            }
            let victim = self
                .circuits
                .iter()
                .filter(|&(&fp, slot)| fp != protect_fp && slot.baselines.is_empty())
                .map(|(&fp, slot)| (slot.last_used, fp))
                .min();
            let Some((_, fp)) = victim else { break };
            let removed = self.circuits.remove(&fp).expect("victim circuit");
            self.bytes -= removed.circuit.approx;
            if let Some((_, bytes)) = removed.program {
                self.bytes -= bytes;
            }
            self.files.retain(|_, stamp| stamp.fingerprint != fp);
            evicted += 1;
        }
        evicted
    }
}

type CircuitFlight = Arc<Flight<Arc<CachedCircuit>>>;
type BaselineFlight = Arc<Flight<Arc<BaselineEntry>>>;

/// The daemon-wide warm cache. All methods take `&self`; internal locks
/// are held only for map bookkeeping, never across a parse or a
/// simulation, so unrelated requests proceed concurrently.
pub struct CircuitCache {
    state: Mutex<CacheState>,
    parses: Mutex<HashMap<String, CircuitFlight>>,
    records: Mutex<HashMap<(u64, String), BaselineFlight>>,
    budget: usize,
    spill_dir: Option<PathBuf>,
}

impl CircuitCache {
    /// Creates a cache with a byte `budget` (0 = unbounded) and an
    /// optional directory for baseline spill files.
    #[must_use]
    pub fn new(budget: usize, spill_dir: Option<PathBuf>) -> CircuitCache {
        CircuitCache {
            state: Mutex::new(CacheState::default()),
            parses: Mutex::new(HashMap::new()),
            records: Mutex::new(HashMap::new()),
            budget,
            spill_dir,
        }
    }

    /// Current approximate resident bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.state.lock().expect("cache lock").bytes
    }

    /// Number of cached circuits.
    #[must_use]
    pub fn circuit_count(&self) -> usize {
        self.state.lock().expect("cache lock").circuits.len()
    }

    /// Number of cached baselines across all circuits.
    #[must_use]
    pub fn baseline_count(&self) -> usize {
        let state = self.state.lock().expect("cache lock");
        state.circuits.values().map(|s| s.baselines.len()).sum()
    }

    /// Returns the shared parsed circuit for `path`, parsing at most once
    /// per file change. Parsing uses the standard library — the netlist's
    /// structure is technology-independent; per-request technology only
    /// affects analysis constants.
    ///
    /// # Errors
    ///
    /// I/O and parse failures, as one-line messages mirroring the CLI's.
    pub fn circuit_for(&self, path: &str) -> Result<CircuitLookup, String> {
        let format = Format::from_extension(path)
            .ok_or_else(|| format!("{path}: unknown netlist format (expected .blif or .v)"))?;
        let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
        let mtime = meta.modified().ok();
        let len = meta.len();
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(stamp) = state.files.get(path) {
                if stamp.mtime == mtime && stamp.len == len {
                    let fingerprint = stamp.fingerprint;
                    let tick = state.touch();
                    let slot = state
                        .circuits
                        .get_mut(&fingerprint)
                        .expect("stamped circuit");
                    slot.last_used = tick;
                    return Ok(CircuitLookup {
                        circuit: Arc::clone(&slot.circuit),
                        hit: true,
                        coalesced: false,
                    });
                }
            }
        }
        // Miss (or stale stamp): single-flight the parse.
        let (flight, leader) = {
            let mut parses = self.parses.lock().expect("parse flights");
            match parses.get(path) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::new());
                    parses.insert(path.to_string(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if !leader {
            return flight.wait().map(|circuit| CircuitLookup {
                circuit,
                hit: false,
                coalesced: true,
            });
        }
        let result = self.parse_and_insert(path, format, mtime, len);
        flight.fill(result.clone());
        self.parses.lock().expect("parse flights").remove(path);
        result.map(|circuit| CircuitLookup {
            circuit,
            hit: false,
            coalesced: false,
        })
    }

    fn parse_and_insert(
        &self,
        path: &str,
        format: Format,
        mtime: Option<SystemTime>,
        len: u64,
    ) -> Result<Arc<CachedCircuit>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let netlist = parse_netlist(&text, format, &GateLibrary::standard())
            .map_err(|e| format!("{path}: {e}"))?;
        let fingerprint = netlist.fingerprint();
        let mut state = self.state.lock().expect("cache lock");
        let tick = state.touch();
        // Content-addressed: a second path (or a touched file with the
        // same bytes) lands on the already-cached circuit.
        let circuit = match state.circuits.get_mut(&fingerprint) {
            Some(slot) => {
                slot.last_used = tick;
                Arc::clone(&slot.circuit)
            }
            None => {
                let circuit = Arc::new(CachedCircuit::new(netlist));
                state.bytes += circuit.approx;
                state.circuits.insert(
                    fingerprint,
                    CircuitSlot {
                        circuit: Arc::clone(&circuit),
                        baselines: HashMap::new(),
                        program: None,
                        last_used: tick,
                    },
                );
                circuit
            }
        };
        state.files.insert(
            path.to_string(),
            FileStamp {
                mtime,
                len,
                fingerprint,
            },
        );
        state.evict_to_budget(self.budget, fingerprint, "");
        Ok(circuit)
    }

    /// Returns the shared compiled kernel program for `circuit`, compiling
    /// at most once per cached circuit (content-addressed: two paths with
    /// identical netlist bytes share one program). The program's
    /// [`KernelProgram::byte_size`] counts against the same byte budget as
    /// baselines, and cold circuits' programs are evicted before circuits.
    ///
    /// # Errors
    ///
    /// The compile error (cyclic netlists), as a one-line message.
    pub fn program_for(&self, circuit: &Arc<CachedCircuit>) -> Result<ProgramLookup, String> {
        let fingerprint = circuit.fingerprint;
        {
            let mut state = self.state.lock().expect("cache lock");
            let tick = state.touch();
            if let Some(slot) = state.circuits.get_mut(&fingerprint) {
                slot.last_used = tick;
                if let Some((program, _)) = &slot.program {
                    return Ok(ProgramLookup {
                        program: Arc::clone(program),
                        hit: true,
                        evicted: 0,
                    });
                }
            }
        }
        // Compile outside the lock. A racing duplicate compile is harmless
        // (the programs are identical; first to insert wins) and cheap next
        // to the simulation the caller is about to run, so no single-flight
        // slot here.
        let program = KernelProgram::compile(&circuit.netlist)
            .map(Arc::new)
            .map_err(|e| e.to_string())?;
        let bytes = program.byte_size();
        let mut state = self.state.lock().expect("cache lock");
        let tick = state.touch();
        let Some(slot) = state.circuits.get_mut(&fingerprint) else {
            // Circuit evicted while compiling: hand the program back
            // uncached rather than resurrect the slot.
            return Ok(ProgramLookup {
                program,
                hit: false,
                evicted: 0,
            });
        };
        slot.last_used = tick;
        if let Some((existing, _)) = &slot.program {
            return Ok(ProgramLookup {
                program: Arc::clone(existing),
                hit: true,
                evicted: 0,
            });
        }
        slot.program = Some((Arc::clone(&program), bytes));
        state.bytes += bytes;
        let evicted = state.evict_to_budget(self.budget, fingerprint, "");
        Ok(ProgramLookup {
            program,
            hit: false,
            evicted,
        })
    }

    fn spill_path(&self, fingerprint: u64, key: &str) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|dir| dir.join(format!("{fingerprint:016x}-{:016x}.glbl", fnv64(key))))
    }

    /// Returns the baseline (and its "before" analysis) for `circuit`
    /// under the parameter `key`, recording at most once per key.
    ///
    /// On a memory miss the cache first tries the spill file: a load that
    /// passes `validate` (the caller's parameter check) recovers the
    /// before-figures with `replay_before` — the PR 4/5 guarantee makes
    /// those bit-identical to the originals at zero evaluation cost.
    /// Otherwise `record` runs the full simulation once.
    ///
    /// # Errors
    ///
    /// Whatever `record` / `replay_before` report, as one-line messages.
    pub fn baseline_for(
        &self,
        circuit: &Arc<CachedCircuit>,
        key: &str,
        validate: impl Fn(&SimBaseline) -> bool,
        record: impl FnOnce() -> Result<(SimBaseline, Analysis), String>,
        replay_before: impl Fn(&Netlist, &SimBaseline) -> Result<Analysis, String>,
    ) -> Result<BaselineLookup, String> {
        let fingerprint = circuit.fingerprint;
        {
            let mut state = self.state.lock().expect("cache lock");
            let tick = state.touch();
            if let Some(slot) = state.circuits.get_mut(&fingerprint) {
                slot.last_used = tick;
                if let Some(baseline) = slot.baselines.get_mut(key) {
                    baseline.last_used = tick;
                    return Ok(BaselineLookup {
                        entry: Arc::clone(&baseline.entry),
                        hit: true,
                        coalesced: false,
                        spill_load: false,
                        evicted: 0,
                    });
                }
            }
        }
        let flight_key = (fingerprint, key.to_string());
        let (flight, leader) = {
            let mut records = self.records.lock().expect("record flights");
            match records.get(&flight_key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::new());
                    records.insert(flight_key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if !leader {
            return flight.wait().map(|entry| BaselineLookup {
                entry,
                hit: false,
                coalesced: true,
                spill_load: false,
                evicted: 0,
            });
        }
        let produced = self.load_or_record(circuit, key, &validate, record, &replay_before);
        // Insert into the cache BEFORE releasing the flight, so a request
        // landing just after coalescing ends finds a warm cache.
        let outcome = produced.and_then(|(entry, spill_load)| {
            let mut state = self.state.lock().expect("cache lock");
            let tick = state.touch();
            let slot = state
                .circuits
                .get_mut(&fingerprint)
                .ok_or("circuit evicted while recording its baseline")?;
            slot.last_used = tick;
            let bytes = entry.baseline.approx_bytes();
            let replaced = slot.baselines.insert(
                key.to_string(),
                BaselineSlot {
                    entry: Arc::clone(&entry),
                    bytes,
                    last_used: tick,
                },
            );
            if let Some(old) = replaced {
                state.bytes -= old.bytes;
            }
            state.bytes += bytes;
            let evicted = state.evict_to_budget(self.budget, fingerprint, key);
            Ok((entry, spill_load, evicted))
        });
        flight.fill(outcome.clone().map(|(entry, _, _)| entry));
        self.records
            .lock()
            .expect("record flights")
            .remove(&flight_key);
        let (entry, spill_load, evicted) = outcome?;
        Ok(BaselineLookup {
            entry,
            hit: false,
            coalesced: false,
            spill_load,
            evicted,
        })
    }

    fn load_or_record(
        &self,
        circuit: &Arc<CachedCircuit>,
        key: &str,
        validate: &impl Fn(&SimBaseline) -> bool,
        record: impl FnOnce() -> Result<(SimBaseline, Analysis), String>,
        replay_before: &impl Fn(&Netlist, &SimBaseline) -> Result<Analysis, String>,
    ) -> Result<(Arc<BaselineEntry>, bool), String> {
        let spill = self.spill_path(circuit.fingerprint, key);
        if let Some(path) = &spill {
            if let Ok(baseline) = SimBaseline::load(path) {
                if baseline.matches_netlist(&circuit.netlist) && validate(&baseline) {
                    if let Ok(before) = replay_before(&circuit.netlist, &baseline) {
                        return Ok((
                            Arc::new(BaselineEntry {
                                baseline: Arc::new(baseline),
                                before: Arc::new(before),
                            }),
                            true,
                        ));
                    }
                }
            }
        }
        let (baseline, before) = record()?;
        if let Some(path) = &spill {
            // Best-effort: the spill is an optimisation, not a durability
            // promise, and the save itself is atomic (temp + rename).
            let _ = baseline.save(path);
        }
        Ok((
            Arc::new(BaselineEntry {
                baseline: Arc::new(baseline),
                before: Arc::new(before),
            }),
            false,
        ))
    }
}

/// FNV-1a, used only to make parameter keys filename-safe.
fn fnv64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_core::netlist::Netlist;
    use glitch_core::sim::SimOptions;
    use glitch_core::{AnalysisConfig, DeltaStimulus, GlitchAnalyzer};
    use glitch_io::emit_blif;

    fn sample_netlist() -> Netlist {
        let mut n = Netlist::new("cachetest");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.xor2(a, b, "x");
        let y = n.and2(a, x, "y");
        n.mark_output(y);
        n
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("glitch-cache-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_netlist(dir: &std::path::Path, name: &str, netlist: &Netlist) -> String {
        let path = dir.join(name);
        std::fs::write(&path, emit_blif(netlist)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn second_lookup_hits_without_reparsing() {
        let dir = temp_dir("hit");
        let path = write_netlist(&dir, "a.blif", &sample_netlist());
        let cache = CircuitCache::new(0, None);
        let first = cache.circuit_for(&path).unwrap();
        assert!(!first.hit);
        let second = cache.circuit_for(&path).unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(
            first.circuit.netlist(),
            second.circuit.netlist()
        ));
        // The cone index is built once and shared.
        let i1 = first.circuit.cone_index().unwrap();
        let i2 = second.circuit.cone_index().unwrap();
        assert!(Arc::ptr_eq(&i1, &i2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_file_reparses_and_same_content_shares_one_circuit() {
        let dir = temp_dir("stale");
        let netlist = sample_netlist();
        let path = write_netlist(&dir, "a.blif", &netlist);
        let cache = CircuitCache::new(0, None);
        let first = cache.circuit_for(&path).unwrap();
        // Rewrite with different content: must re-parse to a new circuit.
        let mut bigger = sample_netlist();
        let c = bigger.add_input("c");
        let x = bigger.find_net("x").unwrap();
        let z = bigger.or2(x, c, "z");
        bigger.mark_output(z);
        std::fs::write(&path, emit_blif(&bigger)).unwrap();
        bump_mtime(&path);
        let second = cache.circuit_for(&path).unwrap();
        assert_ne!(first.circuit.fingerprint(), second.circuit.fingerprint());
        // A second path with the original bytes shares the original circuit.
        let copy = write_netlist(&dir, "b.blif", &netlist);
        let third = cache.circuit_for(&copy).unwrap();
        assert_eq!(third.circuit.fingerprint(), first.circuit.fingerprint());
        assert!(Arc::ptr_eq(
            third.circuit.netlist(),
            first.circuit.netlist()
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Some filesystems have coarse mtime resolution; force a visible change.
    fn bump_mtime(path: &str) {
        let text = std::fs::read_to_string(path).unwrap();
        // Appending a newline changes the length, which the stamp also checks.
        std::fs::write(path, text + "\n").unwrap();
    }

    fn no_replay(_netlist: &Netlist, _baseline: &SimBaseline) -> Result<Analysis, String> {
        Err("no replay expected".into())
    }

    fn record_pair(netlist: &Netlist) -> (SimBaseline, Analysis) {
        let config = AnalysisConfig {
            cycles: 40,
            ..AnalysisConfig::default()
        };
        let analyzer = GlitchAnalyzer::new(config);
        let buses = vec![];
        let (analysis, baseline) = analyzer
            .analyze_baseline(netlist, &buses, &[])
            .expect("baseline");
        (baseline, analysis)
    }

    #[test]
    fn baseline_records_once_then_hits() {
        let dir = temp_dir("baseline");
        let path = write_netlist(&dir, "a.blif", &sample_netlist());
        let cache = CircuitCache::new(0, None);
        let circuit = cache.circuit_for(&path).unwrap().circuit;
        let recorded = std::cell::Cell::new(0u32);
        let record = || {
            recorded.set(recorded.get() + 1);
            Ok(record_pair(circuit.netlist()))
        };
        let first = cache
            .baseline_for(&circuit, "k", |_| true, record, no_replay)
            .unwrap();
        assert!(!first.hit);
        assert_eq!(recorded.get(), 1);
        let second = cache
            .baseline_for(
                &circuit,
                "k",
                |_| true,
                || Err("must not re-record".into()),
                no_replay,
            )
            .unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(&first.entry.baseline, &second.entry.baseline));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_spills_and_reloads_without_re_recording() {
        let dir = temp_dir("spill");
        let spill = dir.join("spill");
        std::fs::create_dir_all(&spill).unwrap();
        let path = write_netlist(&dir, "a.blif", &sample_netlist());
        // Budget that fits the circuit plus roughly one baseline.
        let cache = CircuitCache::new(16 * 1024, Some(spill.clone()));
        let circuit = cache.circuit_for(&path).unwrap().circuit;
        let validate =
            |b: &SimBaseline| b.cycle_count() == 40 && b.options() == SimOptions::default();
        let mk = |key: &str| {
            cache
                .baseline_for(
                    &circuit,
                    key,
                    validate,
                    || Ok(record_pair(circuit.netlist())),
                    replay_before,
                )
                .unwrap()
        };
        let first = mk("k1");
        assert!(!first.hit && !first.spill_load);
        // Insert enough sibling baselines to push k1 out.
        let mut evicted_total = 0;
        for i in 0..6 {
            evicted_total += mk(&format!("filler{i}")).evicted;
        }
        assert!(evicted_total > 0, "budget never forced an eviction");
        // Re-request k1: must come back from the spill file, not a re-record.
        let again = cache
            .baseline_for(
                &circuit,
                "k1",
                validate,
                || Err("must reload from spill, not re-record".into()),
                replay_before,
            )
            .unwrap();
        assert!(again.spill_load, "expected a spill reload");
        assert_eq!(again.entry.baseline.cycle_count(), 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn replay_before(netlist: &Netlist, baseline: &SimBaseline) -> Result<Analysis, String> {
        let config = AnalysisConfig {
            cycles: baseline.cycle_count(),
            ..AnalysisConfig::default()
        };
        let analyzer = GlitchAnalyzer::new(config);
        let delta = analyzer
            .analyze_delta(netlist, baseline, &DeltaStimulus::new())
            .map_err(|e| e.to_string())?;
        Ok(delta.analysis)
    }

    #[test]
    fn programs_compile_once_and_share_by_content() {
        let dir = temp_dir("program");
        let netlist = sample_netlist();
        let path = write_netlist(&dir, "a.blif", &netlist);
        let copy = write_netlist(&dir, "b.blif", &netlist);
        let cache = CircuitCache::new(0, None);
        let circuit = cache.circuit_for(&path).unwrap().circuit;
        let bytes_before = cache.bytes();
        let first = cache.program_for(&circuit).unwrap();
        assert!(!first.hit);
        assert!(
            cache.bytes() > bytes_before,
            "the program must count against the byte budget"
        );
        let second = cache.program_for(&circuit).unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(&first.program, &second.program));
        // Content-addressed: a second path with the same netlist bytes
        // lands on the same circuit, hence the same compiled program.
        let other = cache.circuit_for(&copy).unwrap().circuit;
        let third = cache.program_for(&other).unwrap();
        assert!(third.hit);
        assert!(Arc::ptr_eq(&first.program, &third.program));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_misses_coalesce_to_one_parse() {
        let dir = temp_dir("flight");
        let path = write_netlist(&dir, "a.blif", &sample_netlist());
        let cache = Arc::new(CircuitCache::new(0, None));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let path = path.clone();
            handles.push(std::thread::spawn(move || {
                cache.circuit_for(&path).unwrap().circuit.fingerprint()
            }));
        }
        let fingerprints: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(fingerprints.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.circuit_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
