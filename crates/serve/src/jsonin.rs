//! Dependency-free JSON *parsing* for protocol requests — the inbound
//! counterpart of [`crate::json`].
//!
//! A small recursive-descent parser covering the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null).
//! Requests are flat objects of scalars, but the parser is complete so a
//! malformed or adversarial line fails with a located error instead of a
//! panic. Depth is bounded; numbers keep an integer fast path so `u64`
//! seeds and fingerprints round-trip exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integral number that fits `u64` (the common protocol case: cycles,
    /// seeds). Kept exact — `u64::MAX` seeds must not round through `f64`.
    UInt(u64),
    /// Any other number (negative, fractional, exponent).
    Number(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting integral floats written as `1.0`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(v) => Some(v),
            JsonValue::Number(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(v) => Some(v as f64),
            JsonValue::Number(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Why a request line failed to parse; carries the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum nesting depth; protocol requests are flat, so anything deep is
/// garbage (or a stack-exhaustion attempt).
const MAX_DEPTH: usize = 32;

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonParseError`] with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid scalar boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(slice, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Number(v)),
            _ => Err(JsonParseError {
                offset: start,
                message: format!("invalid number `{text}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let v = parse_json(
            "{\"op\":\"analyze\",\"file\":\"a.blif\",\"cycles\":200,\
             \"frequency_mhz\":5.5,\"x_init\":true,\"note\":null}",
        )
        .unwrap();
        let JsonValue::Object(map) = v else {
            panic!("expected object")
        };
        assert_eq!(map["op"].as_str(), Some("analyze"));
        assert_eq!(map["cycles"].as_u64(), Some(200));
        assert_eq!(map["frequency_mhz"].as_f64(), Some(5.5));
        assert_eq!(map["x_init"].as_bool(), Some(true));
        assert_eq!(map["note"], JsonValue::Null);
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let v = parse_json(&format!("{{\"seed\":{}}}", u64::MAX)).unwrap();
        let JsonValue::Object(map) = v else {
            panic!("expected object")
        };
        assert_eq!(map["seed"].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_arrays_strings_and_escapes() {
        let v = parse_json("[1, -2.5, \"a\\n\\\"b\\u0041\", [true, false], {}]").unwrap();
        let JsonValue::Array(items) = v else {
            panic!("expected array")
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_str(), Some("a\n\"bA"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = parse_json("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse_json("\"\\ud83d\"").is_err());
    }

    #[test]
    fn round_trips_the_emitter() {
        let rendered = crate::json::JsonObject::new()
            .str("k", "a\"b\\c\nd\u{1}")
            .f64("v", 1.5)
            .u64("n", 42)
            .render();
        let parsed = parse_json(&rendered).unwrap();
        let JsonValue::Object(map) = parsed else {
            panic!("expected object")
        };
        assert_eq!(map["k"].as_str(), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(map["v"].as_f64(), Some(1.5));
        assert_eq!(map["n"].as_u64(), Some(42));
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "1e999",
            "\u{1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse_json("{\"a\": nope}").unwrap_err();
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn depth_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&deep).is_err());
    }
}
