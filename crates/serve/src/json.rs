//! Dependency-free JSON emission shared by the CLI `--json` outputs and
//! the serving protocol (the sharing is what makes daemon responses
//! byte-identical to one-shot CLI runs).
//!
//! Small by design: an order-preserving object builder with typed `field`
//! methods and correct string escaping. Non-finite floats serialise as
//! `null`, matching what strict JSON parsers accept.

use std::fmt::Write as _;

/// An order-preserving JSON object under construction.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn push(&mut self, key: &str, rendered: String) {
        self.fields.push((key.to_string(), rendered));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push(key, format!("\"{}\"", escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string());
        self
    }

    /// Adds an unsigned integer field from a `usize`.
    pub fn usize(self, key: &str, value: usize) -> Self {
        self.u64(key, value as u64)
    }

    /// Adds a float field; non-finite values become `null`.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            // `{:?}` round-trips f64 (shortest representation that parses
            // back exactly), unlike `{}` which drops the `.0` on integers —
            // both are valid JSON numbers, but round-tripping is safer.
            format!("{value:?}")
        } else {
            "null".to_string()
        };
        self.push(key, rendered);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string());
        self
    }

    /// Adds an optional unsigned integer field; `None` becomes `null`.
    pub fn opt_usize(mut self, key: &str, value: Option<usize>) -> Self {
        let rendered = match value {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        self.push(key, rendered);
        self
    }

    /// Adds an already-rendered JSON value (e.g. a nested object).
    pub fn raw(mut self, key: &str, rendered: &str) -> Self {
        self.push(key, rendered.to_string());
        self
    }

    /// Renders the object as a single-line JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(key), value);
        }
        out.push('}');
        out
    }
}

/// Renders already-rendered JSON values as a JSON array.
#[must_use]
pub fn json_array<I>(items: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item.as_ref());
    }
    out.push(']');
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_typed_fields_in_order() {
        let json = JsonObject::new()
            .str("name", "c17")
            .u64("cycles", 200)
            .usize("cells", 6)
            .f64("ratio", 1.5)
            .f64("infinite", f64::INFINITY)
            .opt_usize("depth", Some(3))
            .opt_usize("missing", None)
            .raw("nested", "{\"a\":1}")
            .render();
        assert_eq!(
            json,
            "{\"name\":\"c17\",\"cycles\":200,\"cells\":6,\"ratio\":1.5,\
             \"infinite\":null,\"depth\":3,\"missing\":null,\"nested\":{\"a\":1}}"
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let json = JsonObject::new().str("k", "a\"b\\c\nd\u{1}").render();
        assert_eq!(json, "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn floats_round_trip() {
        let json = JsonObject::new().f64("v", 2.0).render();
        assert_eq!(json, "{\"v\":2.0}");
    }

    #[test]
    fn arrays_join_rendered_values() {
        assert_eq!(json_array(Vec::<String>::new()), "[]");
        assert_eq!(json_array(["1", "2"]), "[1,2]");
        assert_eq!(
            json_array([JsonObject::new().u64("a", 1).render()]),
            "[{\"a\":1}]"
        );
    }
}
