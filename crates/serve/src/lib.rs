//! `glitch-serve`: the batch analysis daemon.
//!
//! Amortises the per-invocation costs of the one-shot CLI — netlist
//! parsing, cone-index construction and baseline recording — across many
//! requests, behind a dependency-free JSON-lines protocol on a loopback
//! TCP socket:
//!
//! - [`protocol`]: request parsing (`analyze`, `check`, `flip`, `sweep`,
//!   `reduce`, `metrics`, `status`, `ping`, `shutdown`) with strict
//!   unknown-field rejection.
//! - [`cache`]: the content-addressed warm cache — circuits keyed by
//!   [`glitch_core::netlist::Netlist::fingerprint`], baselines by their
//!   full parameter set, with single-flight coalescing, LRU byte-budget
//!   eviction and atomic disk spill.
//! - [`engine`]: job execution mirroring the CLI's command paths call for
//!   call, so responses are byte-identical to one-shot `--json` output.
//! - [`server`] / [`client`]: the worker-pool daemon and its blocking
//!   line-protocol client.
//!
//! The CLI layers (`glitch-cli serve` / `glitch-cli client`) are thin
//! wrappers over [`server::run_server`] and [`client::Client`]. The
//! shared JSON emission ([`json`]), parameter resolution ([`params`]) and
//! report envelopes ([`report`]) live here so the daemon and the one-shot
//! commands render through literally the same code.

pub mod cache;
pub mod client;
pub mod engine;
pub mod json;
pub mod jsonin;
pub mod params;
pub mod protocol;
pub mod report;
pub mod server;

pub use client::Client;
pub use engine::{Engine, RequestContext};
pub use protocol::{JobKind, JobRequest, MetricsFormat, Request};
pub use server::{run_server, ServeConfig};
