//! The machine-readable report envelopes — one renderer behind both the
//! CLI's `--json` output and the daemon's protocol responses.
//!
//! Field order, formatting and escaping live here and nowhere else: a
//! daemon response for a job is produced by the *same* function as the
//! equivalent one-shot `glitch-cli ... --json` line, which is what makes
//! the serving layer's byte-identity guarantee a structural property
//! instead of a test-only coincidence.

use glitch_core::activity::ActivityTotals;
use glitch_core::netlist::Netlist;
use glitch_core::power::PowerReport;
use glitch_core::sim::WindowedActivityProbe;
use glitch_core::verify::{EquivalenceReport, VerifyReport, Violation};
use glitch_core::{
    AggregateAnalysis, Analysis, CheckAnalysis, DelaySweepPoint, DeltaCheck, IncrementalStats,
    Spread,
};
use glitch_reduce::ReduceReport;

use crate::json::{json_array, JsonObject};
use crate::params::AppliedFlip;

/// The `activity` sub-object: transition totals and derived ratios.
pub fn activity_totals_json(totals: &ActivityTotals) -> JsonObject {
    JsonObject::new()
        .u64("transitions", totals.transitions)
        .u64("useful", totals.useful)
        .u64("useless", totals.useless)
        .u64("glitches", totals.glitches())
        .f64("lf_ratio", totals.useless_to_useful())
        .f64(
            "balance_reduction_factor",
            totals.balance_reduction_factor(),
        )
}

/// The `power` sub-object: the three-component breakdown and its inputs.
pub fn power_report_json(power: &PowerReport) -> JsonObject {
    JsonObject::new()
        .f64("logic_w", power.breakdown.logic)
        .f64("flipflop_w", power.breakdown.flipflop)
        .f64("clock_w", power.breakdown.clock)
        .f64("total_w", power.breakdown.total())
        .f64("frequency_hz", power.frequency)
        .usize("flipflops", power.flipflops)
        .f64("clock_capacitance_f", power.clock_capacitance)
        .f64("switched_cap_per_cycle_f", power.switched_cap_per_cycle)
}

/// The per-window rows of a windowed-activity probe, as a rendered JSON
/// array.
pub fn windows_json(probe: &WindowedActivityProbe) -> String {
    json_array(probe.windows().iter().enumerate().map(|(i, w)| {
        JsonObject::new()
            .usize("window", i)
            .u64("start_cycle", w.start_cycle)
            .u64("cycles", w.cycles)
            .u64("transitions", w.transitions)
            .u64("useful", w.useful)
            .u64("useless", w.useless)
            .u64("glitches", w.glitches())
            .render()
    }))
}

/// A min/mean/max/stddev spread sub-object.
pub fn spread_json(spread: Spread) -> JsonObject {
    JsonObject::new()
        .f64("min", spread.min)
        .f64("mean", spread.mean)
        .f64("max", spread.max)
        .f64("stddev", spread.stddev)
}

/// The per-seed rows of a multi-seed aggregate, as rendered JSON objects.
pub fn per_seed_json(aggregate: &AggregateAnalysis) -> String {
    json_array(aggregate.aggregate.shards().iter().map(|shard| {
        JsonObject::new()
            .u64("seed", shard.seed)
            .u64("cycles", shard.cycles)
            .u64("transitions", shard.activity.transitions)
            .u64("useful", shard.activity.useful)
            .u64("useless", shard.activity.useless)
            .u64("glitches", shard.activity.glitches())
            .f64("power_total_w", shard.power.breakdown.total())
            .render()
    }))
}

/// The `incremental` sub-object: dirty-region re-simulation accounting.
pub fn incremental_json(stats: &IncrementalStats) -> JsonObject {
    JsonObject::new()
        .u64("replayed_cycles", stats.replayed_cycles)
        .u64("simulated_cycles", stats.simulated_cycles)
        .u64("cells_evaluated", stats.cells_evaluated)
        .u64("baseline_cell_evals", stats.baseline_cell_evals)
        .u64("peak_dirty_cone_nets", stats.peak_dirty_cone_nets)
        .u64("dff_divergence_reseeds", stats.dff_divergence_reseeds)
        .f64("evaluated_fraction", stats.evaluated_fraction())
}

/// The applied-flip rows (`net`, `cycle`, driven `value`).
pub fn flips_json(applied: &[AppliedFlip]) -> String {
    json_array(applied.iter().map(|(name, cycle, value)| {
        JsonObject::new()
            .str("net", name)
            .u64("cycle", *cycle)
            .u64("value", u64::from(*value))
            .render()
    }))
}

/// Renders one verify report's checkers as a JSON array.
pub fn verify_checkers_json(report: &VerifyReport, netlist: &Netlist) -> String {
    json_array(report.outcomes().iter().map(|outcome| {
        let mut metrics = JsonObject::new();
        for (name, value) in &outcome.metrics {
            metrics = metrics.u64(name, *value);
        }
        let violations = json_array(outcome.violations.iter().map(|v: &Violation| {
            JsonObject::new()
                .str("net", netlist.net(v.net).name())
                .u64("cycle", v.cycle)
                .u64("time", v.time)
                .u64("budget", v.budget)
                .render()
        }));
        JsonObject::new()
            .str("name", &outcome.checker)
            .str("verdict", outcome.verdict.as_str())
            .u64("total_violations", outcome.total_violations)
            .raw("metrics", &metrics.render())
            .raw("violations", &violations)
            .str("summary", &outcome.summary)
            .render()
    }))
}

/// Renders one verify report as a nested JSON object (verdict + checkers).
pub fn verify_report_json(report: &VerifyReport, netlist: &Netlist) -> JsonObject {
    JsonObject::new()
        .str("verdict", report.verdict().as_str())
        .u64("violations_total", report.total_violations())
        .u64("violations_retained", report.retained_violations())
        .u64("violations_dropped", report.dropped_violations())
        .raw("checkers", &verify_checkers_json(report, netlist))
}

// ------------------------------------------------------------- envelopes

/// The single-seed `analyze` report line.
#[allow(clippy::too_many_arguments)]
pub fn analyze_json(
    file: &str,
    netlist: &Netlist,
    analysis: &Analysis,
    passes: u64,
    events: u64,
    max_settle: u64,
    cell_evals: u64,
    windowed: Option<&WindowedActivityProbe>,
) -> String {
    let totals = analysis.activity.totals();
    let out = JsonObject::new()
        .str("file", file)
        .str("netlist", netlist.name())
        .u64("cycles", analysis.cycles)
        .u64("passes", passes)
        .u64("events", events)
        .u64("max_settle_time", max_settle)
        .u64("cell_evals", cell_evals)
        .raw("activity", &activity_totals_json(&totals).render())
        .raw("power", &power_report_json(&analysis.power).render());
    let out = match windowed {
        Some(probe) => out.raw("windows", &windows_json(probe)),
        None => out,
    };
    out.render()
}

/// The multi-seed `analyze` report line (aggregate + spread + per-seed).
pub fn analyze_aggregate_json(
    file: &str,
    netlist: &Netlist,
    seeds: usize,
    jobs: usize,
    cycles_per_seed: u64,
    aggregate: &AggregateAnalysis,
    windowed: Option<&WindowedActivityProbe>,
) -> String {
    let totals = aggregate.activity.totals();
    let spreads = JsonObject::new()
        .raw("glitches", &spread_json(aggregate.glitch_spread()).render())
        .raw("useless", &spread_json(aggregate.useless_spread()).render())
        .raw(
            "lf_ratio",
            &spread_json(aggregate.lf_ratio_spread()).render(),
        )
        .raw(
            "power_total_w",
            &spread_json(aggregate.power_spread()).render(),
        );
    let out = JsonObject::new()
        .str("file", file)
        .str("netlist", netlist.name())
        .usize("seeds", seeds)
        .usize("jobs", jobs)
        .u64("cycles_per_seed", cycles_per_seed)
        .u64("total_cycles", aggregate.total_cycles())
        .u64("events", aggregate.aggregate.total_events())
        .u64("max_settle_time", aggregate.aggregate.max_settle_time())
        .u64("cell_evals", aggregate.aggregate.total_cell_evals())
        .raw("activity", &activity_totals_json(&totals).render())
        .raw("power", &power_report_json(&aggregate.power).render())
        .raw("spread", &spreads.render())
        .raw("per_seed", &per_seed_json(aggregate));
    let out = match windowed {
        Some(probe) => out.raw("windows", &windows_json(probe)),
        None => out,
    };
    out.render()
}

/// The `analyze --flip` report line: applied flips, incremental
/// accounting, and before/after activity+power.
pub fn analyze_flip_json(
    file: &str,
    netlist: &Netlist,
    cycles: u64,
    applied: &[AppliedFlip],
    stats: &IncrementalStats,
    before: &Analysis,
    after: &Analysis,
) -> String {
    let before_totals = before.activity.totals();
    let after_totals = after.activity.totals();
    JsonObject::new()
        .str("file", file)
        .str("netlist", netlist.name())
        .u64("cycles", cycles)
        .raw("flips", &flips_json(applied))
        .raw("incremental", &incremental_json(stats).render())
        .raw(
            "baseline",
            &JsonObject::new()
                .raw("activity", &activity_totals_json(&before_totals).render())
                .raw("power", &power_report_json(&before.power).render())
                .render(),
        )
        .raw(
            "delta",
            &JsonObject::new()
                .raw("activity", &activity_totals_json(&after_totals).render())
                .raw("power", &power_report_json(&after.power).render())
                .render(),
        )
        .render()
}

/// The delay-model `sweep` report line.
pub fn sweep_json(
    file: &str,
    netlist: &Netlist,
    seeds: usize,
    jobs: usize,
    cycles_per_seed: u64,
    points: &[DelaySweepPoint],
) -> String {
    let rendered = points
        .iter()
        .map(|point| {
            let totals = point.analysis.activity.totals();
            JsonObject::new()
                .str("delay", &point.label)
                .raw("activity", &activity_totals_json(&totals).render())
                .raw("power", &power_report_json(&point.analysis.power).render())
                .raw(
                    "glitch_spread",
                    &spread_json(point.analysis.glitch_spread()).render(),
                )
                .raw(
                    "power_spread",
                    &spread_json(point.analysis.power_spread()).render(),
                )
                .render()
        })
        .collect::<Vec<_>>();
    JsonObject::new()
        .str("file", file)
        .str("netlist", netlist.name())
        .usize("seeds", seeds)
        .usize("jobs", jobs)
        .u64("cycles_per_seed", cycles_per_seed)
        .raw("points", &json_array(rendered))
        .render()
}

/// The `check` report line: run shape, totals, verdict and checkers.
#[allow(clippy::too_many_arguments)]
pub fn check_json(
    file: &str,
    netlist: &Netlist,
    cycles_per_seed: u64,
    seeds: usize,
    jobs: usize,
    x_init: bool,
    checked: &CheckAnalysis,
) -> String {
    let report = &checked.report;
    JsonObject::new()
        .str("file", file)
        .str("netlist", netlist.name())
        .u64("cycles_per_seed", cycles_per_seed)
        .usize("seeds", seeds)
        .usize("jobs", jobs)
        .bool("x_init", x_init)
        .u64("total_cycles", checked.analysis.total_cycles())
        .u64(
            "max_settle_time",
            checked.analysis.aggregate.max_settle_time(),
        )
        .u64("cell_evals", checked.analysis.aggregate.total_cell_evals())
        .str("verdict", report.verdict().as_str())
        .u64("violations_total", report.total_violations())
        .u64("violations_retained", report.retained_violations())
        .u64("violations_dropped", report.dropped_violations())
        .raw("checkers", &verify_checkers_json(report, netlist))
        .render()
}

/// The `check --flip` report line: flips, incremental accounting and the
/// baseline/flipped verdict pair.
pub fn check_flip_json(
    file: &str,
    netlist: &Netlist,
    cycles: u64,
    x_init: bool,
    applied: &[AppliedFlip],
    base_report: &VerifyReport,
    flipped: &DeltaCheck,
) -> String {
    JsonObject::new()
        .str("file", file)
        .str("netlist", netlist.name())
        .u64("cycles", cycles)
        .bool("x_init", x_init)
        .raw("flips", &flips_json(applied))
        .raw(
            "incremental",
            &incremental_json(&flipped.incremental).render(),
        )
        .raw(
            "baseline",
            &verify_report_json(base_report, netlist).render(),
        )
        .raw(
            "flipped",
            &verify_report_json(&flipped.report, netlist).render(),
        )
        .render()
}

/// The `equivalence` sub-object of a `reduce` report: one entry per
/// (delay model, init mode) verification, plus the overall verdict.
pub fn equivalence_json(report: &EquivalenceReport) -> JsonObject {
    let checks = report.checks.iter().map(|check| {
        JsonObject::new()
            .str("delay", &check.delay)
            .bool("x_init", check.x_init)
            .u64("cycles", check.outcome.cycles)
            .u64("compared", check.outcome.compared)
            .bool("passed", check.outcome.passed())
            .render()
    });
    JsonObject::new()
        .bool("passed", report.passed())
        .u64("compared", report.compared())
        .raw("checks", &json_array(checks))
}

/// One interim progress row of a streamed `reduce`: one line per loop
/// iteration, identified by its leading `progress` key (which is how
/// clients tell interim lines from the final response). `id` tags the
/// daemon's rows with the request id; the one-shot CLI passes `None` and
/// prints otherwise-identical rows.
pub fn reduce_progress_json(
    file: &str,
    event: &glitch_reduce::ProgressEvent<'_>,
    id: Option<u64>,
) -> String {
    let out = JsonObject::new().str("progress", "reduce");
    let out = match id {
        Some(id) => out.u64("id", id),
        None => out,
    };
    let out = out
        .str("file", file)
        .usize("iteration", event.iteration)
        .usize("proposed", event.proposed)
        .usize("screened", event.screened)
        .bool("accepted", event.accepted.is_some());
    let out = match event.accepted {
        Some(m) => out
            .str("kind", m.kind.as_str())
            .str("description", &m.description)
            .f64("glitch_power_before_w", m.glitch_power_before)
            .f64("glitch_power_after_w", m.glitch_power_after)
            .usize("latency_added", m.latency_added),
        None => out,
    };
    out.f64("glitch_power_w", event.glitch_power)
        .f64("baseline_glitch_power_w", event.baseline_glitch_power)
        .render()
}

/// The `reduce` report line: headline, descent accounting, accepted
/// moves, the glitch-power history, and the equivalence verdict.
pub fn reduce_json(
    file: &str,
    report: &ReduceReport,
    seeds: usize,
    jobs: usize,
    cycles_per_seed: u64,
) -> String {
    let moves = report.moves.iter().map(|m| {
        JsonObject::new()
            .usize("iteration", m.iteration)
            .str("kind", m.kind.as_str())
            .str("description", &m.description)
            .f64("glitch_power_before_w", m.glitch_power_before)
            .f64("glitch_power_after_w", m.glitch_power_after)
            .usize("latency_added", m.latency_added)
            .render()
    });
    let history = report
        .glitch_history
        .iter()
        .map(|value| format!("{value:?}"));
    JsonObject::new()
        .str("file", file)
        .str("netlist", &report.circuit)
        .u64("cycles_per_seed", cycles_per_seed)
        .usize("seeds", seeds)
        .usize("jobs", jobs)
        .str("headline", &report.headline())
        .f64("reduction_percent", report.reduction_percent())
        .f64("initial_glitch_power_w", report.initial_glitch_power)
        .f64("final_glitch_power_w", report.final_glitch_power)
        .f64("initial_total_power_w", report.initial_total_power)
        .f64("final_total_power_w", report.final_total_power)
        .usize("iterations", report.iterations)
        .usize("proposed", report.proposed)
        .usize("screened", report.screened)
        .usize("confirmed", report.confirmed)
        .usize("latency", report.latency)
        .raw("moves", &json_array(moves))
        .raw("glitch_history_w", &json_array(history))
        .raw(
            "equivalence",
            &equivalence_json(&report.equivalence).render(),
        )
        .render()
}
