//! Cutset pipelining of gate-level netlists and the delay-imbalance metric.
//!
//! The paper's four direction-detector layouts (Table 3) were produced by
//! retiming the same design for increasingly aggressive clock targets, which
//! in practice inserts complete register ranks across the datapath.
//! [`pipeline_netlist`] reproduces that transformation structurally: it
//! levelises the combinational netlist, chooses `ranks` cut positions that
//! split the levels as evenly as possible, and inserts a flipflop on every
//! signal crossing a cut. The function of the circuit is preserved up to the
//! added latency of `ranks` cycles.

use std::collections::HashMap;

use glitch_netlist::{CellId, NetId, Netlist};

use crate::error::RetimeError;
use crate::mapping::NetMap;

/// Options for [`pipeline_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Place the first register rank directly behind the primary inputs
    /// (this is the paper's baseline circuit: input registers only).
    pub register_inputs: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            register_inputs: true,
        }
    }
}

/// Result of [`pipeline_netlist`]: the transformed netlist plus bookkeeping.
#[derive(Debug, Clone)]
pub struct PipelinedNetlist {
    /// The pipelined netlist. Primary input and output nets keep the names
    /// they had in the original design.
    pub netlist: Netlist,
    /// Latency in clock cycles added by the inserted register ranks.
    pub latency: usize,
    /// Number of flipflops in the pipelined netlist.
    pub flipflop_count: usize,
    /// The stage index assigned to every original combinational cell.
    pub stage_of_cell: HashMap<CellId, usize>,
    /// Total old-net → new-net mapping: every original net's same-stage
    /// copy, plus the final registered net each primary output was brought
    /// to (which is where the output is observed, `latency` cycles late).
    pub mapping: NetMap,
}

/// Splits a purely combinational netlist into `ranks + 1` pipeline stages by
/// inserting `ranks` register ranks at levelisation cuts (one of them
/// directly behind the inputs when
/// [`PipelineOptions::register_inputs`] is set and `ranks > 0`).
///
/// With `ranks == 0` the netlist is rebuilt unchanged (zero flipflops).
///
/// # Errors
///
/// * [`RetimeError::NotCombinational`] if the input netlist already contains
///   flipflops.
/// * [`RetimeError::InvalidNetlist`] if it fails structural validation.
pub fn pipeline_netlist(
    netlist: &Netlist,
    ranks: usize,
    options: PipelineOptions,
) -> Result<PipelinedNetlist, RetimeError> {
    netlist.validate()?;
    if netlist.dff_count() > 0 {
        return Err(RetimeError::NotCombinational {
            dff_count: netlist.dff_count(),
        });
    }
    let levels = netlist.levelize()?;
    let depth = levels.depth();

    // Stage of a cell = number of cut boundaries at or below its level.
    // `internal` boundaries divide the level range (1..=depth); an input
    // rank (boundary before level 1) is added when requested.
    let input_rank = usize::from(options.register_inputs && ranks > 0);
    let internal = ranks - input_rank;
    let boundaries: Vec<usize> = (1..=internal)
        .map(|j| (j * depth).div_ceil(internal + 1).max(1))
        .collect();
    let stage_of_level =
        |level: usize| -> usize { input_rank + boundaries.iter().filter(|&&b| level > b).count() };

    let mut out = Netlist::new(format!("{}_p{}", netlist.name(), ranks));

    // Copy primary inputs with identical names.
    let mut new_net_of: HashMap<NetId, NetId> = HashMap::new();
    for &input in netlist.inputs() {
        let id = out.add_input(netlist.net(input).name());
        new_net_of.insert(input, id);
    }

    // Source stage of every original net (0 for primary inputs, the driving
    // cell's stage otherwise), filled in as cells are emitted.
    let mut stage_of_net: HashMap<NetId, usize> =
        netlist.inputs().iter().map(|&n| (n, 0)).collect();
    // Cache of registered versions of a net: (net, extra registers) -> new net.
    let mut delayed: HashMap<(NetId, usize), NetId> = HashMap::new();
    let mut stage_of_cell: HashMap<CellId, usize> = HashMap::new();

    let registered = |out: &mut Netlist,
                      new_net_of: &HashMap<NetId, NetId>,
                      delayed: &mut HashMap<(NetId, usize), NetId>,
                      net: NetId,
                      extra: usize|
     -> NetId {
        if extra == 0 {
            return new_net_of[&net];
        }
        if let Some(&cached) = delayed.get(&(net, extra)) {
            return cached;
        }
        // Build the chain incrementally so shorter delays are shared.
        let mut current = new_net_of[&net];
        let mut have = 0usize;
        for k in (1..=extra).rev() {
            if let Some(&cached) = delayed.get(&(net, k)) {
                current = cached;
                have = k;
                break;
            }
        }
        for k in have + 1..=extra {
            let name = format!("{}_pipe{}", netlist.net(net).name(), k);
            current = out.dff(current, &name);
            delayed.insert((net, k), current);
        }
        current
    };

    for &cell_id in levels.order() {
        let cell = netlist.cell(cell_id);
        let level = levels.level(cell_id).unwrap_or(1);
        let stage = stage_of_level(level);
        stage_of_cell.insert(cell_id, stage);

        let mut new_inputs = Vec::with_capacity(cell.inputs().len());
        for &input in cell.inputs() {
            let src_stage = stage_of_net[&input];
            debug_assert!(stage >= src_stage, "stages must not decrease along wires");
            let extra = stage - src_stage;
            new_inputs.push(registered(
                &mut out,
                &new_net_of,
                &mut delayed,
                input,
                extra,
            ));
        }
        let mut new_outputs = Vec::with_capacity(cell.outputs().len());
        for &output in cell.outputs() {
            let id = out.add_net(netlist.net(output).name());
            new_net_of.insert(output, id);
            stage_of_net.insert(output, stage);
            new_outputs.push(id);
        }
        out.add_cell(cell.kind(), cell.name(), new_inputs, new_outputs)
            .map_err(RetimeError::InvalidNetlist)?;
    }

    // Bring every primary output up to the final stage so all outputs appear
    // in the same cycle, then mark them. The mapping records where each
    // output ended up — possibly a `_pipeK` register output rather than the
    // same-stage copy.
    let final_stage = ranks;
    let mut output_of: HashMap<NetId, NetId> = HashMap::new();
    for &output in netlist.outputs() {
        let src_stage = stage_of_net.get(&output).copied().unwrap_or(0);
        let extra = final_stage - src_stage;
        let new_net = registered(&mut out, &new_net_of, &mut delayed, output, extra);
        out.mark_output(new_net);
        output_of.insert(output, new_net);
    }

    // The forward table must stay total: every original net (input or cell
    // output) has a same-stage copy in `new_net_of`; nets that somehow have
    // neither (floating) get a fresh copy so the map never loses them.
    let forward: Vec<NetId> = (0..netlist.net_count())
        .map(NetId::from_index)
        .map(|old| match new_net_of.get(&old) {
            Some(&new) => new,
            None => out.add_net(netlist.net(old).name()),
        })
        .collect();

    let flipflop_count = out.dff_count();
    Ok(PipelinedNetlist {
        netlist: out,
        latency: ranks,
        flipflop_count,
        stage_of_cell,
        mapping: NetMap::new(forward, output_of, ranks),
    })
}

/// Total delay imbalance of a netlist under a unit-delay model: for every
/// combinational cell, the difference between the earliest and the latest
/// input arrival level, summed over all cells. Perfectly balanced circuits
/// (every cell's inputs arrive simultaneously) score 0 and cannot glitch
/// under a unit-delay model.
///
/// # Errors
///
/// Returns [`RetimeError::InvalidNetlist`] for structurally invalid or
/// cyclic netlists.
pub fn delay_imbalance(netlist: &Netlist) -> Result<u64, RetimeError> {
    netlist.validate()?;
    let levels = netlist.levelize()?;
    // Arrival level of a net: 0 for inputs and flipflop outputs, the driving
    // cell's level otherwise.
    let arrival = |net: NetId| -> u64 {
        match netlist.net(net).driver() {
            Some(pin) => levels.level(pin.cell).unwrap_or(0) as u64,
            None => 0,
        }
    };
    let mut total = 0u64;
    for cell_id in netlist.combinational_cells() {
        let cell = netlist.cell(cell_id);
        if cell.inputs().len() < 2 {
            continue;
        }
        let arrivals: Vec<u64> = cell.inputs().iter().map(|&n| arrival(n)).collect();
        let min = arrivals.iter().copied().min().unwrap_or(0);
        let max = arrivals.iter().copied().max().unwrap_or(0);
        total += max - min;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, ArrayMultiplier, RippleCarryAdder, WallaceTreeMultiplier};
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_ranks_is_an_identity_rebuild() {
        let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
        let piped = pipeline_netlist(&adder.netlist, 0, PipelineOptions::default()).unwrap();
        assert_eq!(piped.flipflop_count, 0);
        assert_eq!(piped.latency, 0);
        assert_eq!(piped.netlist.cell_count(), adder.netlist.cell_count());
        piped.netlist.validate().unwrap();
    }

    #[test]
    fn input_rank_only_registers_every_input() {
        let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
        let piped = pipeline_netlist(&adder.netlist, 1, PipelineOptions::default()).unwrap();
        // 8 + 8 + 1 input bits.
        assert_eq!(piped.flipflop_count, 17);
        assert_eq!(piped.latency, 1);
    }

    #[test]
    fn pipelined_multiplier_still_multiplies_after_the_latency() {
        let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);
        for ranks in [0usize, 1, 2, 4] {
            let piped = pipeline_netlist(&mult.netlist, ranks, PipelineOptions::default()).unwrap();
            piped.netlist.validate().unwrap();
            piped
                .mapping
                .validate(&mult.netlist, &piped.netlist)
                .unwrap();
            assert_eq!(piped.mapping.latency(), ranks);
            // The mapping answers both directions: inputs by their
            // same-stage copy, outputs by their final registered net.
            let map_bus = |bus: &glitch_netlist::Bus, outputs: bool| {
                glitch_netlist::Bus::new(
                    bus.bits()
                        .iter()
                        .map(|&b| {
                            if outputs {
                                piped.mapping.output_net(b)
                            } else {
                                piped.mapping.new_net(b)
                            }
                        })
                        .collect(),
                )
            };
            let x = map_bus(&mult.x, false);
            let y = map_bus(&mult.y, false);
            let product = map_bus(&mult.product, true);
            let mut sim = ClockedSimulator::new(&piped.netlist, UnitDelay).unwrap();
            let mut rng = StdRng::seed_from_u64(2 + ranks as u64);
            let pairs: Vec<(u64, u64)> = (0..8)
                .map(|_| (rng.gen_range(0..16), rng.gen_range(0..16)))
                .collect();
            for (cycle, &(a, b)) in pairs.iter().enumerate() {
                sim.step(InputAssignment::new().with_bus(&x, a).with_bus(&y, b))
                    .unwrap();
                if cycle >= ranks {
                    let (ea, eb) = pairs[cycle - ranks];
                    assert_eq!(
                        sim.bus_value(&product).unwrap(),
                        ea * eb,
                        "ranks={ranks} cycle={cycle}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_ranks_mean_more_flipflops_and_better_balance() {
        let mult = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
        let mut last_ffs = 0usize;
        for ranks in [1usize, 2, 4, 8] {
            let piped = pipeline_netlist(&mult.netlist, ranks, PipelineOptions::default()).unwrap();
            assert!(
                piped.flipflop_count > last_ffs,
                "ranks {ranks}: {} flipflops not above {last_ffs}",
                piped.flipflop_count
            );
            last_ffs = piped.flipflop_count;
        }
    }

    #[test]
    fn sequential_input_is_rejected() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.dff(a, "q");
        nl.mark_output(q);
        assert!(matches!(
            pipeline_netlist(&nl, 1, PipelineOptions::default()),
            Err(RetimeError::NotCombinational { dff_count: 1 })
        ));
    }

    #[test]
    fn imbalance_ranks_architectures_correctly() {
        let array = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
        let wallace = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let array_imbalance = delay_imbalance(&array.netlist).unwrap();
        let wallace_imbalance = delay_imbalance(&wallace.netlist).unwrap();
        assert!(
            array_imbalance > wallace_imbalance,
            "array {array_imbalance} should exceed wallace {wallace_imbalance}"
        );
        // A single-gate circuit is perfectly balanced.
        let mut nl = Netlist::new("bal");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b, "y");
        nl.mark_output(y);
        assert_eq!(delay_imbalance(&nl).unwrap(), 0);
    }
}
