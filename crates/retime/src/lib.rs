//! # glitch-retime
//!
//! Retiming and pipelining — the glitch-reduction levers of section 5 of the
//! DATE'95 paper *Analysis and Reduction of Glitches in Synchronous
//! Networks*.
//!
//! Two complementary facilities are provided:
//!
//! * [`RetimingGraph`] + [`Retiming`] — the classical Leiserson–Saxe
//!   formulation: vertices with propagation delays, edges with register
//!   weights, feasibility of a target clock period, minimum achievable
//!   period and a legal retiming that achieves it. This is the engine the
//!   paper's OPTIMA tool implements; it is exercised on operation-level
//!   graphs.
//! * [`pipeline_netlist`] — cutset pipelining of a gate-level netlist:
//!   inserts complete register ranks at levelisation boundaries, the
//!   mechanism used to create the paper's four direction-detector variants
//!   with increasing flipflop counts (Table 3 / Figure 10).
//!
//! The [`rewrite`] module exposes the move vocabulary of the reduction
//! loop — buffer insertion, driver duplication and pipelining as
//! `Netlist → Netlist` rewrites, each returning a total [`NetMap`] from
//! old nets to new so equivalence checking and move composition work
//! across the rewrite.
//!
//! The [`delay_imbalance`] metric quantifies how badly input arrival times
//! diverge at each cell — the structural property that creates glitches.
//!
//! ## Example
//!
//! ```
//! use glitch_retime::RetimingGraph;
//!
//! // The correlator example from Leiserson & Saxe: a 3-vertex toy here.
//! let mut g = RetimingGraph::new();
//! let host = g.add_vertex(0);
//! let a = g.add_vertex(3);
//! let b = g.add_vertex(7);
//! g.add_edge(host, a, 1);
//! g.add_edge(a, b, 0);
//! g.add_edge(b, host, 0);
//! assert_eq!(g.clock_period(), 10);
//! let best = g.retime_minimum_period().unwrap();
//! assert!(best.period <= 10);
//! ```

mod error;
mod graph;
mod mapping;
mod pipeline;
mod retiming;
pub mod rewrite;

pub use error::RetimeError;
pub use graph::{EdgeId, RetimingGraph, VertexId};
pub use mapping::NetMap;
pub use pipeline::{delay_imbalance, pipeline_netlist, PipelineOptions, PipelinedNetlist};
pub use retiming::Retiming;
pub use rewrite::{duplicate_driver, insert_buffer, pipeline_rewrite, Rewrite};
