//! Function-preserving netlist rewrites — the move vocabulary of the
//! reduction loop.
//!
//! Every move is exposed as a `Netlist → Netlist` rebuild that returns the
//! transformed netlist *together with* a total [`NetMap`], so callers can
//! co-simulate original against transformed (the equivalence oracle) and
//! compose accepted moves into one original → final mapping:
//!
//! * [`insert_buffer`] — a delay buffer behind a hazard-hot net: all cell
//!   loads read the buffered copy, shifting their arrival time by one
//!   buffer delay. Zero latency; function preserved because `Buf` is the
//!   identity on settled values.
//! * [`duplicate_driver`] — splits a reconvergent driver: a copy of the
//!   cell takes over every second load of its output net, halving the
//!   switched load capacitance each glitch charges. Zero latency.
//! * [`pipeline_rewrite`] — the paper's register-rank insertion
//!   ([`crate::pipeline_netlist`]) wrapped as a move: `ranks` cycles of
//!   latency, arrival times realigned at the cut boundaries.

use std::collections::{HashMap, HashSet};

use glitch_netlist::{CellId, CellKind, NetId, Netlist, Pin};

use crate::error::RetimeError;
use crate::mapping::NetMap;
use crate::pipeline::{pipeline_netlist, PipelineOptions};

/// A rewritten netlist with the mapping back to its source.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// The transformed netlist.
    pub netlist: Netlist,
    /// Total source-net → new-net mapping (plus added latency).
    pub map: NetMap,
    /// One human-readable move description, e.g. `buffer net `p3``.
    pub description: String,
}

/// Copies every net of `src` into `out` in id order, preserving names and
/// primary-input marking. Returns the dense forward table.
fn copy_nets(src: &Netlist, out: &mut Netlist) -> Vec<NetId> {
    let mut forward = Vec::with_capacity(src.net_count());
    for (_, net) in src.nets() {
        let id = if net.is_primary_input() {
            out.add_input(net.name())
        } else {
            out.add_net(net.name())
        };
        forward.push(id);
    }
    forward
}

/// A net name not yet present in `out`: `{base}{suffix}`, numbered on
/// collision so repeated moves on the same net stay well-formed.
fn fresh_name(out: &Netlist, base: &str, suffix: &str) -> String {
    let first = format!("{base}{suffix}");
    if out.find_net(&first).is_none() {
        return first;
    }
    (2..)
        .map(|k| format!("{base}{suffix}{k}"))
        .find(|name| out.find_net(name).is_none())
        .expect("some numbered suffix is free")
}

/// Copies every cell of `src` into `out` through `forward`, redirecting
/// the input pins in `redirect` to their replacement nets. Flipflop init
/// values are preserved.
fn copy_cells(
    src: &Netlist,
    out: &mut Netlist,
    forward: &[NetId],
    redirect: &HashMap<Pin, NetId>,
) -> Result<(), RetimeError> {
    for (cell_id, cell) in src.cells() {
        let inputs: Vec<NetId> = cell
            .inputs()
            .iter()
            .enumerate()
            .map(|(index, &net)| {
                redirect
                    .get(&Pin {
                        cell: cell_id,
                        index,
                    })
                    .copied()
                    .unwrap_or(forward[net.index()])
            })
            .collect();
        let outputs: Vec<NetId> = cell.outputs().iter().map(|&n| forward[n.index()]).collect();
        let new_id = out
            .add_cell(cell.kind(), cell.name(), inputs, outputs)
            .map_err(RetimeError::InvalidNetlist)?;
        if cell.is_sequential() {
            out.set_dff_init(new_id, cell.dff_init());
        }
    }
    Ok(())
}

/// Inserts a unit buffer behind `net`: the buffer reads the copy of `net`
/// and every cell load is rewired to the buffered output. The primary
/// output marking (if any) stays on the unbuffered copy, so observation
/// points do not move.
///
/// # Errors
///
/// * [`RetimeError::MoveNotApplicable`] if `net` has no cell loads to
///   rewire (buffering would be dead logic).
/// * [`RetimeError::InvalidNetlist`] if `netlist` fails validation.
pub fn insert_buffer(netlist: &Netlist, net: NetId) -> Result<Rewrite, RetimeError> {
    netlist.validate()?;
    let loads = netlist.net(net).loads();
    if loads.is_empty() {
        return Err(RetimeError::MoveNotApplicable {
            reason: format!(
                "net `{}` has no cell loads to buffer",
                netlist.net(net).name()
            ),
        });
    }
    let mut out = Netlist::new(netlist.name());
    let forward = copy_nets(netlist, &mut out);
    let name = fresh_name(&out, netlist.net(net).name(), "_dly");
    let buffered = out.add_net(name.clone());
    let redirect: HashMap<Pin, NetId> = loads.iter().map(|&pin| (pin, buffered)).collect();
    copy_cells(netlist, &mut out, &forward, &redirect)?;
    out.add_cell(
        CellKind::Buf,
        &name,
        vec![forward[net.index()]],
        vec![buffered],
    )
    .map_err(RetimeError::InvalidNetlist)?;
    for &output in netlist.outputs() {
        out.mark_output(forward[output.index()]);
    }
    Ok(Rewrite {
        netlist: out,
        map: NetMap::new(forward, HashMap::new(), 0),
        description: format!("buffer net `{}`", netlist.net(net).name()),
    })
}

/// Duplicates the combinational cell `cell` to break a reconvergent
/// fanout: the copy drives every second cell load of the original output
/// net, so each glitch on that cone charges roughly half the load
/// capacitance. Output marking stays on the original net.
///
/// # Errors
///
/// * [`RetimeError::MoveNotApplicable`] if the cell is sequential, has
///   more than one output, or its output has fewer than two cell loads.
/// * [`RetimeError::InvalidNetlist`] if `netlist` fails validation.
pub fn duplicate_driver(netlist: &Netlist, cell: CellId) -> Result<Rewrite, RetimeError> {
    netlist.validate()?;
    let source = netlist.cell(cell);
    if source.is_sequential() || source.outputs().len() != 1 {
        return Err(RetimeError::MoveNotApplicable {
            reason: format!(
                "cell `{}` is not a single-output combinational gate",
                source.name()
            ),
        });
    }
    let target = source.outputs()[0];
    let loads = netlist.net(target).loads();
    if loads.len() < 2 {
        return Err(RetimeError::MoveNotApplicable {
            reason: format!(
                "net `{}` has {} load(s); duplication needs at least two",
                netlist.net(target).name(),
                loads.len()
            ),
        });
    }
    let mut out = Netlist::new(netlist.name());
    let forward = copy_nets(netlist, &mut out);
    let name = fresh_name(&out, netlist.net(target).name(), "_dup");
    let dup_net = out.add_net(name.clone());
    // Every second load (deterministic: load-list order) moves to the copy.
    let redirect: HashMap<Pin, NetId> = loads
        .iter()
        .skip(1)
        .step_by(2)
        .map(|&pin| (pin, dup_net))
        .collect();
    copy_cells(netlist, &mut out, &forward, &redirect)?;
    let inputs: Vec<NetId> = source
        .inputs()
        .iter()
        .map(|&n| forward[n.index()])
        .collect();
    out.add_cell(source.kind(), &name, inputs, vec![dup_net])
        .map_err(RetimeError::InvalidNetlist)?;
    for &output in netlist.outputs() {
        out.mark_output(forward[output.index()]);
    }
    Ok(Rewrite {
        netlist: out,
        map: NetMap::new(forward, HashMap::new(), 0),
        description: format!("duplicate gate `{}`", source.name()),
    })
}

/// Register-rank insertion as a move: [`pipeline_netlist`] with its total
/// mapping, `ranks` cycles of latency.
///
/// # Errors
///
/// As for [`pipeline_netlist`].
pub fn pipeline_rewrite(
    netlist: &Netlist,
    ranks: usize,
    options: PipelineOptions,
) -> Result<Rewrite, RetimeError> {
    let piped = pipeline_netlist(netlist, ranks, options)?;
    Ok(Rewrite {
        netlist: piped.netlist,
        map: piped.mapping,
        description: format!("retime with {ranks} register rank(s)"),
    })
}

/// The cell loads of `net` that are rewired by [`duplicate_driver`] —
/// exposed for tests pinning the deterministic split.
#[must_use]
pub fn duplicated_loads(netlist: &Netlist, net: NetId) -> HashSet<Pin> {
    netlist
        .net(net)
        .loads()
        .iter()
        .skip(1)
        .step_by(2)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glitch_arith::{AdderStyle, RippleCarryAdder};
    use glitch_sim::{ClockedSimulator, InputAssignment, UnitDelay};

    fn exhaustive_equal(original: &Netlist, rewrite: &Rewrite, input_bits: usize) {
        assert_eq!(rewrite.map.latency(), 0, "in-place moves add no latency");
        rewrite
            .map
            .validate(original, &rewrite.netlist)
            .expect("total mapping");
        for word in 0..(1u64 << input_bits) {
            let mut a = InputAssignment::new();
            let mut b = InputAssignment::new();
            for (bit, &input) in original.inputs().iter().enumerate() {
                let value = (word >> bit) & 1 == 1;
                a = a.with(input, value);
                b = b.with(rewrite.map.new_net(input), value);
            }
            let mut sim_a = ClockedSimulator::new(original, UnitDelay).unwrap();
            let mut sim_b = ClockedSimulator::new(&rewrite.netlist, UnitDelay).unwrap();
            sim_a.step(a).unwrap();
            sim_b.step(b).unwrap();
            for &output in original.outputs() {
                assert_eq!(
                    sim_a.net_value(output),
                    sim_b.net_value(rewrite.map.output_net(output)),
                    "output `{}` diverged at input word {word}",
                    original.net(output).name()
                );
            }
        }
    }

    #[test]
    fn buffering_preserves_function_exhaustively() {
        let adder = RippleCarryAdder::new(2, AdderStyle::CompoundCell);
        for (net, _) in adder.netlist.nets() {
            if adder.netlist.net(net).loads().is_empty() {
                continue;
            }
            let rewrite = insert_buffer(&adder.netlist, net).unwrap();
            rewrite.netlist.validate().unwrap();
            assert_eq!(rewrite.netlist.cell_count(), adder.netlist.cell_count() + 1);
            exhaustive_equal(&adder.netlist, &rewrite, adder.netlist.inputs().len());
        }
    }

    #[test]
    fn duplication_preserves_function_and_splits_loads() {
        let adder = RippleCarryAdder::new(2, AdderStyle::Gates);
        let mut tested = 0;
        for cell_id in adder.netlist.combinational_cells().collect::<Vec<_>>() {
            let cell = adder.netlist.cell(cell_id);
            if cell.outputs().len() != 1 {
                continue;
            }
            let target = cell.outputs()[0];
            if adder.netlist.net(target).loads().len() < 2 {
                continue;
            }
            let rewrite = duplicate_driver(&adder.netlist, cell_id).unwrap();
            rewrite.netlist.validate().unwrap();
            let dup = duplicated_loads(&adder.netlist, target);
            assert!(!dup.is_empty(), "at least one load moves to the copy");
            exhaustive_equal(&adder.netlist, &rewrite, adder.netlist.inputs().len());
            tested += 1;
        }
        assert!(tested > 0, "the adder has multi-load gates to duplicate");
    }

    #[test]
    fn inapplicable_moves_are_rejected_loudly() {
        let mut nl = Netlist::new("reject");
        let a = nl.add_input("a");
        let q = nl.dff(a, "q");
        let y = nl.inv(q, "y");
        nl.mark_output(y);
        // `y` drives nothing a buffer could rewire.
        assert!(matches!(
            insert_buffer(&nl, y),
            Err(RetimeError::MoveNotApplicable { .. })
        ));
        // The inverter's output has a single load (the output marking is
        // not a load), so duplication is pointless.
        let inv_cell = nl.combinational_cells().next().unwrap();
        assert!(matches!(
            duplicate_driver(&nl, inv_cell),
            Err(RetimeError::MoveNotApplicable { .. })
        ));
        // Flipflops cannot be duplicated by this move.
        let dff_cell = nl.dff_cells().next().unwrap();
        assert!(matches!(
            duplicate_driver(&nl, dff_cell),
            Err(RetimeError::MoveNotApplicable { .. })
        ));
    }

    #[test]
    fn repeated_buffering_of_one_net_stays_well_formed() {
        let mut nl = Netlist::new("rebuffer");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b, "x");
        let y = nl.and2(a, x, "y");
        nl.mark_output(y);
        let once = insert_buffer(&nl, x).unwrap();
        let x_again = once.map.new_net(x);
        let twice = insert_buffer(&once.netlist, x_again).unwrap();
        twice.netlist.validate().unwrap();
        assert!(twice.netlist.find_net("x_dly").is_some());
        assert!(twice.netlist.find_net("x_dly2").is_some());
        let composed = once.map.compose(&twice.map);
        composed.validate(&nl, &twice.netlist).unwrap();
    }
}
