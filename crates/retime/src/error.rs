//! Error type for retiming and pipelining operations.

use std::error::Error;
use std::fmt;

use glitch_netlist::NetlistError;

/// Errors reported by the retiming engine and the netlist pipeliner.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RetimeError {
    /// The requested clock period cannot be achieved by any retiming of the
    /// graph.
    Infeasible {
        /// The period that was requested.
        period: u64,
    },
    /// The netlist handed to the pipeliner is not purely combinational
    /// (cutset pipelining re-times from a flipflop-free starting point).
    NotCombinational {
        /// Number of flipflops found.
        dff_count: usize,
    },
    /// The underlying netlist is structurally invalid.
    InvalidNetlist(NetlistError),
    /// A graph query referenced a vertex that does not exist.
    UnknownVertex(usize),
    /// A rewrite move does not apply to its target (nothing to rewire,
    /// wrong cell shape, ...).
    MoveNotApplicable {
        /// What disqualified the move.
        reason: String,
    },
}

impl fmt::Display for RetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimeError::Infeasible { period } => {
                write!(f, "no legal retiming achieves a clock period of {period}")
            }
            RetimeError::NotCombinational { dff_count } => write!(
                f,
                "cutset pipelining needs a purely combinational netlist, found {dff_count} flipflops"
            ),
            RetimeError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            RetimeError::UnknownVertex(v) => write!(f, "vertex {v} does not exist"),
            RetimeError::MoveNotApplicable { reason } => {
                write!(f, "move not applicable: {reason}")
            }
        }
    }
}

impl Error for RetimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RetimeError::InvalidNetlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for RetimeError {
    fn from(e: NetlistError) -> Self {
        RetimeError::InvalidNetlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(RetimeError::Infeasible { period: 5 }
            .to_string()
            .contains('5'));
        assert!(RetimeError::NotCombinational { dff_count: 3 }
            .to_string()
            .contains('3'));
        assert!(RetimeError::UnknownVertex(7).to_string().contains('7'));
    }
}
