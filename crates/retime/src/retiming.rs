//! The retiming vector and the FEAS feasibility / minimum-period algorithms.

use crate::error::RetimeError;
use crate::graph::{RetimingGraph, VertexId};

/// A legal retiming: one integer offset per vertex plus the clock period the
/// retimed graph achieves. Moving `r(v)` registers from the outputs of `v`
/// to its inputs (positive offsets) changes every edge weight `u -> v` to
/// `w(e) + r(v) - r(u)` without altering the circuit's function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retiming {
    offsets: Vec<i64>,
    /// Clock period achieved by the retimed graph.
    pub period: u64,
}

impl Retiming {
    /// The identity retiming (no register moves) for a graph with `vertices`
    /// vertices and the given period.
    #[must_use]
    pub fn identity(vertices: usize, period: u64) -> Self {
        Retiming {
            offsets: vec![0; vertices],
            period,
        }
    }

    /// Per-vertex offsets.
    #[must_use]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Offset of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is out of range.
    #[must_use]
    pub fn offset(&self, v: VertexId) -> i64 {
        self.offsets[v.index()]
    }

    /// Normalises the offsets so that the given vertex (usually the host)
    /// has offset 0; this leaves all retimed edge weights unchanged.
    #[must_use]
    pub fn normalized_to(mut self, v: VertexId) -> Self {
        let base = self.offsets[v.index()];
        for r in &mut self.offsets {
            *r -= base;
        }
        self
    }

    /// Total amount of register movement (sum of absolute offsets) — a rough
    /// cost measure for comparing retimings with equal periods.
    #[must_use]
    pub fn movement(&self) -> u64 {
        self.offsets.iter().map(|r| r.unsigned_abs()).sum()
    }
}

impl RetimingGraph {
    /// Searches for a legal retiming that achieves clock period `period`
    /// using the FEAS algorithm of Leiserson and Saxe (iteratively
    /// incrementing the lag of every vertex whose arrival time exceeds the
    /// target).
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::Infeasible`] when no retiming can reach the
    /// requested period (e.g. it is smaller than the largest single-vertex
    /// delay).
    pub fn retime_for_period(&self, period: u64) -> Result<Retiming, RetimeError> {
        let n = self.vertex_count();
        if n == 0 {
            return Ok(Retiming::identity(0, 0));
        }
        let mut offsets = vec![0i64; n];
        for _ in 0..n.saturating_sub(1) {
            let arrivals = self.arrival_times(&offsets);
            let mut changed = false;
            for (v, &arrival) in arrivals.iter().enumerate() {
                if arrival > period {
                    offsets[v] += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let achieved = self.period_of(&offsets);
        if achieved > period {
            return Err(RetimeError::Infeasible { period });
        }
        let retiming = Retiming {
            offsets,
            period: achieved,
        };
        debug_assert!(self.is_legal(&retiming));
        Ok(retiming)
    }

    /// Finds a retiming with the minimum achievable clock period (binary
    /// search over candidate periods, FEAS as the feasibility oracle),
    /// normalised so the first vertex (the host for netlist-derived graphs)
    /// keeps offset 0.
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::Infeasible`] only for graphs whose current
    /// period is unbounded (a combinational cycle).
    pub fn retime_minimum_period(&self) -> Result<Retiming, RetimeError> {
        let current = self.clock_period();
        if current == u64::MAX {
            return Err(RetimeError::Infeasible { period: current });
        }
        let mut lo = (0..self.vertex_count())
            .map(|v| self.delay(VertexId(v)))
            .max()
            .unwrap_or(0);
        let mut best = self.retime_for_period(current)?;
        let mut hi = best.period;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.retime_for_period(mid) {
                Ok(r) => {
                    hi = r.period.min(mid);
                    best = r;
                }
                Err(_) => lo = mid + 1,
            }
        }
        Ok(best.normalized_to(VertexId(0)))
    }

    /// Per-vertex combinational arrival times (the Δ values of the CP
    /// algorithm) under the retiming offsets `r`. Vertices on a zero-weight
    /// cycle get `u64::MAX`.
    fn arrival_times(&self, r: &[i64]) -> Vec<u64> {
        use std::collections::VecDeque;
        let n = self.vertex_count();
        let mut indegree = vec![0usize; n];
        let mut zero_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in self.edges_internal() {
            let w = e.weight + r[e.to] - r[e.from];
            if w == 0 {
                zero_out[e.from].push(e.to);
                indegree[e.to] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut arrival: Vec<u64> = (0..n).map(|v| self.delay(VertexId(v))).collect();
        let mut visited = vec![false; n];
        while let Some(v) = queue.pop_front() {
            visited[v] = true;
            for &succ in &zero_out[v] {
                let candidate = arrival[v].saturating_add(self.delay(VertexId(succ)));
                arrival[succ] = arrival[succ].max(candidate);
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        for (v, seen) in visited.iter().enumerate() {
            if !seen {
                arrival[v] = u64::MAX;
            }
        }
        arrival
    }

    pub(crate) fn edges_internal(&self) -> impl Iterator<Item = &crate::graph::Edge> {
        self.edges_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlator() -> RetimingGraph {
        let mut g = RetimingGraph::new();
        let vh = g.add_vertex(0);
        let d = [3u64, 3, 3, 7, 7, 7];
        let v: Vec<VertexId> = d.iter().map(|&x| g.add_vertex(x)).collect();
        g.add_edge(vh, v[0], 2);
        g.add_edge(v[0], v[1], 1);
        g.add_edge(v[1], v[2], 1);
        g.add_edge(v[0], v[3], 0);
        g.add_edge(v[1], v[3], 0);
        g.add_edge(v[2], v[4], 0);
        g.add_edge(v[3], v[4], 0);
        g.add_edge(v[4], v[5], 0);
        g.add_edge(v[1], v[5], 1);
        g.add_edge(v[5], vh, 0);
        g
    }

    #[test]
    fn correlator_retimes_to_a_shorter_period() {
        let g = correlator();
        assert_eq!(g.clock_period(), 24);
        let best = g.retime_minimum_period().unwrap();
        // Two registers can be redistributed into the adder chain, cutting
        // the 24-unit critical path at least in half.
        assert!(best.period <= 14, "period {}", best.period);
        assert!(best.period >= 7);
        assert!(g.is_legal(&best));
        let retimed = g.apply(&best);
        assert_eq!(retimed.clock_period(), best.period);
        // Host offset is normalised to zero.
        assert_eq!(best.offset(VertexId(0)), 0);
    }

    #[test]
    fn infeasible_period_is_reported() {
        let g = correlator();
        // No retiming can beat the largest single-vertex delay (7).
        assert!(matches!(
            g.retime_for_period(6),
            Err(RetimeError::Infeasible { period: 6 })
        ));
        // The current period is always feasible (identity retiming works).
        assert!(g.retime_for_period(24).is_ok());
    }

    #[test]
    fn retiming_preserves_register_count_on_cycles() {
        // Retiming conserves the number of registers on every directed
        // cycle. The cycle host -> v0 -> v3 -> v4 -> v5 -> host carries one
        // register before retiming and must still carry exactly one after.
        let g = correlator();
        let best = g.retime_minimum_period().unwrap();
        let r = best.offsets();
        let retimed = g.apply(&best);
        assert_eq!(retimed.vertex_count(), g.vertex_count());
        // Cycle edges: (0 -> 1, w2), (1 -> 4, w0), (4 -> 5, w0), (5 -> 6, w0),
        // (6 -> 0, w0) in vertex indices (host = 0, v0 = 1, ...).
        let cycle = [
            (0usize, 1usize, 2i64),
            (1, 4, 0),
            (4, 5, 0),
            (5, 6, 0),
            (6, 0, 0),
        ];
        let before: i64 = cycle.iter().map(|&(_, _, w)| w).sum();
        let after: i64 = cycle.iter().map(|&(u, v, w)| w + r[v] - r[u]).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn identity_and_movement() {
        let r = Retiming::identity(4, 9);
        assert_eq!(r.period, 9);
        assert_eq!(r.movement(), 0);
        assert_eq!(r.offsets(), &[0, 0, 0, 0]);
    }

    #[test]
    fn pipelining_a_pure_dag_reduces_period() {
        // host -> a -> b -> c -> host, all combinational, delays 4 each:
        // period 12. With one register allowed on the input edge the graph
        // can be pipelined down.
        let mut g = RetimingGraph::new();
        let host = g.add_vertex(0);
        let a = g.add_vertex(4);
        let b = g.add_vertex(4);
        let c = g.add_vertex(4);
        g.add_edge(host, a, 3);
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        g.add_edge(c, host, 0);
        assert_eq!(g.clock_period(), 12);
        let best = g.retime_minimum_period().unwrap();
        assert_eq!(best.period, 4);
    }
}
