//! The Leiserson–Saxe retiming graph.

use std::collections::VecDeque;

use glitch_netlist::{CellId, NetId, Netlist};

use crate::error::RetimeError;
use crate::retiming::Retiming;

/// Identifier of a vertex in a [`RetimingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub(crate) usize);

impl VertexId {
    /// Dense index of the vertex.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an edge in a [`RetimingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Edge {
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) weight: i64,
}

/// A directed graph whose vertices are combinational operations (with a
/// propagation delay) and whose edge weights count the registers between
/// them — the model on which retiming is defined.
///
/// Vertex 0 plays the role of the *host* (environment) when the graph is
/// extracted from a netlist with [`RetimingGraph::from_netlist`].
#[derive(Debug, Clone, Default)]
pub struct RetimingGraph {
    delays: Vec<u64>,
    edges: Vec<Edge>,
}

impl RetimingGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with the given propagation delay and returns its id.
    pub fn add_vertex(&mut self, delay: u64) -> VertexId {
        self.delays.push(delay);
        VertexId(self.delays.len() - 1)
    }

    /// Adds an edge carrying `weight` registers from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either vertex does not exist.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, weight: u64) -> EdgeId {
        assert!(from.0 < self.delays.len(), "unknown source vertex");
        assert!(to.0 < self.delays.len(), "unknown target vertex");
        self.edges.push(Edge {
            from: from.0,
            to: to.0,
            weight: weight as i64,
        });
        EdgeId(self.edges.len() - 1)
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.delays.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Propagation delay of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    #[must_use]
    pub fn delay(&self, v: VertexId) -> u64 {
        self.delays[v.0]
    }

    /// Register weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    #[must_use]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.edges[e.0].weight.max(0) as u64
    }

    /// Total number of registers on all edges.
    ///
    /// Register sharing between fanout edges is not modelled; the figure is
    /// an upper bound on the flipflops a netlist-level implementation needs.
    #[must_use]
    pub fn total_registers(&self) -> u64 {
        self.edges.iter().map(|e| e.weight.max(0) as u64).sum()
    }

    /// Extracts the retiming graph of a synchronous netlist.
    ///
    /// Vertex 0 is the environment *source* (primary inputs) and vertex 1
    /// the environment *sink* (primary outputs); keeping them separate means
    /// a purely combinational input-to-output path is a path, not a
    /// zero-weight cycle, so such netlists stay legal. The flip side is that
    /// a retiming of this graph may add input-to-output latency — i.e.
    /// pipelining is allowed, which is exactly the freedom the paper
    /// exploits. Every combinational cell becomes a vertex with the given
    /// per-cell delay (`delay_of`), and flipflops become edge weights.
    /// Returns the graph together with the map from combinational [`CellId`]
    /// to [`VertexId`].
    ///
    /// # Errors
    ///
    /// Returns [`RetimeError::InvalidNetlist`] if the netlist fails
    /// validation.
    pub fn from_netlist<F>(
        netlist: &Netlist,
        mut delay_of: F,
    ) -> Result<(Self, Vec<Option<VertexId>>), RetimeError>
    where
        F: FnMut(CellId) -> u64,
    {
        netlist.validate()?;
        let mut graph = RetimingGraph::new();
        let host = graph.add_vertex(0);
        let sink = graph.add_vertex(0);
        let mut vertex_of: Vec<Option<VertexId>> = vec![None; netlist.cell_count()];
        for cell in netlist.combinational_cells() {
            vertex_of[cell.index()] = Some(graph.add_vertex(delay_of(cell)));
        }

        // Trace each combinational cell input (and each primary output) back
        // through any chain of flipflops to its combinational source.
        let trace = |start: NetId| -> (Option<CellId>, u64) {
            let mut net = start;
            let mut registers = 0u64;
            loop {
                match netlist.net(net).driver() {
                    Some(pin) if netlist.cell(pin.cell).is_sequential() => {
                        registers += 1;
                        net = netlist.cell(pin.cell).inputs()[0];
                    }
                    Some(pin) => return (Some(pin.cell), registers),
                    None => return (None, registers),
                }
            }
        };

        for cell in netlist.combinational_cells() {
            let to = vertex_of[cell.index()].expect("combinational cell has a vertex");
            for &input in netlist.cell(cell).inputs() {
                let (source, registers) = trace(input);
                let from = match source {
                    Some(src) => vertex_of[src.index()].unwrap_or(host),
                    None => host,
                };
                graph.add_edge(from, to, registers);
            }
        }
        for &output in netlist.outputs() {
            let (source, registers) = trace(output);
            let from = match source {
                Some(src) => vertex_of[src.index()].unwrap_or(host),
                None => host,
            };
            graph.add_edge(from, sink, registers);
        }
        Ok((graph, vertex_of))
    }

    pub(crate) fn edges_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Longest purely-combinational path delay (the clock period this
    /// register placement supports). Returns `u64::MAX` if the zero-register
    /// subgraph contains a cycle, which no legal synchronous circuit has.
    #[must_use]
    pub fn clock_period(&self) -> u64 {
        self.period_of(&vec![0i64; self.delays.len()])
    }

    /// Clock period after applying the retiming offsets `r`.
    pub(crate) fn period_of(&self, r: &[i64]) -> u64 {
        let n = self.delays.len();
        let mut indegree = vec![0usize; n];
        let mut zero_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            let w = e.weight + r[e.to] - r[e.from];
            if w == 0 {
                zero_out[e.from].push(e.to);
                indegree[e.to] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut arrival: Vec<u64> = self.delays.clone();
        let mut visited = 0usize;
        let mut period = self.delays.iter().copied().max().unwrap_or(0);
        while let Some(v) = queue.pop_front() {
            visited += 1;
            period = period.max(arrival[v]);
            for &succ in &zero_out[v] {
                arrival[succ] = arrival[succ].max(arrival[v] + self.delays[succ]);
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if visited != n {
            return u64::MAX;
        }
        period
    }

    /// Checks whether the retiming offsets keep every edge weight
    /// non-negative (the legality condition of retiming).
    #[must_use]
    pub fn is_legal(&self, retiming: &Retiming) -> bool {
        let r = retiming.offsets();
        r.len() == self.delays.len()
            && self
                .edges
                .iter()
                .all(|e| e.weight + r[e.to] - r[e.from] >= 0)
    }

    /// Returns a new graph with the retiming applied (edge weights
    /// redistributed, vertex delays unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the retiming is illegal for this graph (use
    /// [`RetimingGraph::is_legal`] first when in doubt).
    #[must_use]
    pub fn apply(&self, retiming: &Retiming) -> RetimingGraph {
        assert!(
            self.is_legal(retiming),
            "retiming is illegal for this graph"
        );
        let r = retiming.offsets();
        let mut out = self.clone();
        for e in &mut out.edges {
            e.weight += r[e.to] - r[e.from];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A correlator-style test graph with a registered input, a shift chain
    /// of comparators (delay 3) and a chain of adders (delay 7) feeding the
    /// result back to the host.
    pub(crate) fn correlator() -> RetimingGraph {
        let mut g = RetimingGraph::new();
        let vh = g.add_vertex(0);
        let d = [3u64, 3, 3, 7, 7, 7];
        let v: Vec<VertexId> = d.iter().map(|&x| g.add_vertex(x)).collect();
        g.add_edge(vh, v[0], 2); // doubly-registered input
        g.add_edge(v[0], v[1], 1); // shift chain
        g.add_edge(v[1], v[2], 1);
        g.add_edge(v[0], v[3], 0); // taps into the adder chain
        g.add_edge(v[1], v[3], 0);
        g.add_edge(v[2], v[4], 0);
        g.add_edge(v[3], v[4], 0);
        g.add_edge(v[4], v[5], 0);
        g.add_edge(v[1], v[5], 1);
        g.add_edge(v[5], vh, 0);
        g
    }

    #[test]
    fn clock_period_is_longest_zero_weight_path() {
        let g = correlator();
        // v0 -> v3 -> v4 -> v5: 3 + 7 + 7 + 7 = 24.
        assert_eq!(g.clock_period(), 24);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.total_registers(), 5);
    }

    #[test]
    fn combinational_cycle_reports_unbounded_period() {
        let mut g = RetimingGraph::new();
        let a = g.add_vertex(1);
        let b = g.add_vertex(1);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        assert_eq!(g.clock_period(), u64::MAX);
    }

    #[test]
    fn from_netlist_counts_registers_on_edges() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.inv(a, "x");
        let q1 = nl.dff(x, "q1");
        let q2 = nl.dff(q1, "q2");
        let y = nl.inv(q2, "y");
        nl.mark_output(y);
        let (graph, vertex_of) = RetimingGraph::from_netlist(&nl, |_| 1).unwrap();
        // Source + sink + 2 inverters.
        assert_eq!(graph.vertex_count(), 4);
        // source->inv1 (0 regs), inv1->inv2 (2 regs), inv2->sink (0 regs).
        assert_eq!(graph.total_registers(), 2);
        assert_eq!(graph.clock_period(), 1);
        let x_cell = nl.net(x).driver().unwrap().cell;
        assert!(vertex_of[x_cell.index()].is_some());
        let ff = nl.dff_cells().next().unwrap();
        assert!(vertex_of[ff.index()].is_none());
    }

    #[test]
    fn from_netlist_period_matches_combinational_depth() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let mut cur = a;
        for i in 0..5 {
            cur = nl.inv(cur, &format!("x{i}"));
        }
        nl.mark_output(cur);
        let (graph, _) = RetimingGraph::from_netlist(&nl, |_| 1).unwrap();
        assert_eq!(graph.clock_period(), 5);
    }
}
