//! The total old-net → new-net mapping carried by every netlist rewrite.
//!
//! A rewrite (`pipeline_netlist`, the moves in [`crate::rewrite`]) rebuilds
//! the netlist, so old [`NetId`]s mean nothing in the result. Downstream
//! consumers — the equivalence checker co-simulating original against
//! transformed, the reduction loop composing accepted moves — need two
//! questions answered for *every* original net, not just the lucky ones
//! that kept their names:
//!
//! * [`NetMap::new_net`] — where did this net's *combinational value* go?
//!   Total by construction: every original net (primary input or cell
//!   output) has exactly one same-stage copy in the rewritten netlist.
//! * [`NetMap::output_net`] — where is this primary output *observed*?
//!   Pipelining re-registers outputs onto the final stage, so the marked
//!   output net can be a `_pipeK` flipflop output rather than the
//!   same-stage copy; for latency-free rewrites the two coincide.
//!
//! Maps compose ([`NetMap::compose`]) so a chain of accepted moves still
//! answers both questions against the *original* netlist, with the
//! latencies summing.

use std::collections::HashMap;

use glitch_netlist::{NetId, Netlist};

/// A total mapping from the nets of a source netlist to the nets of its
/// rewritten form, plus the clock-cycle latency the rewrite added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetMap {
    /// `forward[old.index()]` = the new net carrying the same-stage value.
    forward: Vec<NetId>,
    /// For re-registered primary outputs: old output net → the new net
    /// that is actually marked as the output. Absent entries fall back to
    /// `forward`.
    outputs: HashMap<NetId, NetId>,
    /// Clock cycles of latency the rewrite added (0 for in-place moves,
    /// `ranks` for pipelining).
    latency: usize,
}

impl NetMap {
    /// Builds a map from the dense forward table, the re-registered output
    /// entries, and the added latency.
    ///
    /// # Panics
    ///
    /// Panics if an output entry's key is outside the forward table — the
    /// map must stay total over the source netlist.
    #[must_use]
    pub fn new(forward: Vec<NetId>, outputs: HashMap<NetId, NetId>, latency: usize) -> Self {
        for old in outputs.keys() {
            assert!(
                old.index() < forward.len(),
                "output entry {old} is outside the {}-net forward table",
                forward.len()
            );
        }
        NetMap {
            forward,
            outputs,
            latency,
        }
    }

    /// The identity map over `netlist` (every net maps to itself, zero
    /// latency) — the starting point for composing a move sequence.
    #[must_use]
    pub fn identity(netlist: &Netlist) -> Self {
        NetMap {
            forward: (0..netlist.net_count()).map(NetId::from_index).collect(),
            outputs: HashMap::new(),
            latency: 0,
        }
    }

    /// Number of source nets covered (the source netlist's net count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` for a map over an empty netlist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Clock cycles of latency the rewrite added.
    #[must_use]
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// The new net carrying `old`'s same-stage value.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a net of the source netlist (the map is
    /// total over the source, so this is caller error).
    #[must_use]
    pub fn new_net(&self, old: NetId) -> NetId {
        self.forward[old.index()]
    }

    /// Where the primary output `old` is observed in the rewritten
    /// netlist: the re-registered final-stage net when the rewrite moved
    /// it, the same-stage copy otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a net of the source netlist.
    #[must_use]
    pub fn output_net(&self, old: NetId) -> NetId {
        self.outputs
            .get(&old)
            .copied()
            .unwrap_or_else(|| self.new_net(old))
    }

    /// Composes `self` (source → mid) with `later` (mid → final) into a
    /// source → final map; latencies add.
    ///
    /// # Panics
    ///
    /// Panics if `later` is not total over `self`'s target netlist.
    #[must_use]
    pub fn compose(&self, later: &NetMap) -> NetMap {
        let forward: Vec<NetId> = self.forward.iter().map(|&mid| later.new_net(mid)).collect();
        let outputs: HashMap<NetId, NetId> = (0..self.forward.len())
            .map(NetId::from_index)
            .filter_map(|old| {
                let final_net = later.output_net(self.output_net(old));
                (final_net != forward[old.index()]).then_some((old, final_net))
            })
            .collect();
        NetMap {
            forward,
            outputs,
            latency: self.latency + later.latency,
        }
    }

    /// Checks the map is total over `original` and lands inside
    /// `transformed`: every original net has a same-stage image and every
    /// original primary output an observation point. Returns the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first uncovered or
    /// out-of-range net.
    pub fn validate(&self, original: &Netlist, transformed: &Netlist) -> Result<(), String> {
        if self.forward.len() != original.net_count() {
            return Err(format!(
                "map covers {} nets but `{}` has {}",
                self.forward.len(),
                original.name(),
                original.net_count()
            ));
        }
        for (old, _) in original.nets() {
            let new = self.new_net(old);
            if new.index() >= transformed.net_count() {
                return Err(format!(
                    "net `{}` maps to {new} outside `{}`",
                    original.net(old).name(),
                    transformed.name()
                ));
            }
        }
        for &old in original.outputs() {
            let observed = self.output_net(old);
            if observed.index() >= transformed.net_count() {
                return Err(format!(
                    "output `{}` is observed at {observed} outside `{}`",
                    original.net(old).name(),
                    transformed.name()
                ));
            }
            if !transformed.net(observed).is_primary_output() {
                return Err(format!(
                    "output `{}` maps to `{}` which is not marked as an output",
                    original.net(old).name(),
                    transformed.net(observed).name()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b, "y");
        nl.mark_output(y);
        nl
    }

    #[test]
    fn identity_is_total_and_latency_free() {
        let nl = tiny();
        let map = NetMap::identity(&nl);
        assert_eq!(map.len(), nl.net_count());
        assert_eq!(map.latency(), 0);
        for (id, _) in nl.nets() {
            assert_eq!(map.new_net(id), id);
            assert_eq!(map.output_net(id), id);
        }
        map.validate(&nl, &nl).unwrap();
    }

    #[test]
    fn composition_adds_latency_and_chains_lookups() {
        let first = NetMap::new(
            vec![
                NetId::from_index(2),
                NetId::from_index(1),
                NetId::from_index(0),
            ],
            HashMap::new(),
            1,
        );
        let second = NetMap::new(
            vec![
                NetId::from_index(0),
                NetId::from_index(2),
                NetId::from_index(1),
            ],
            HashMap::from([(NetId::from_index(1), NetId::from_index(0))]),
            2,
        );
        let both = first.compose(&second);
        assert_eq!(both.latency(), 3);
        // first: 0 -> 2, second: 2 -> 1.
        assert_eq!(both.new_net(NetId::from_index(0)), NetId::from_index(1));
        // first: 1 -> 1, second observes 1 at 0.
        assert_eq!(both.output_net(NetId::from_index(1)), NetId::from_index(0));
    }

    #[test]
    fn validation_spots_lossy_maps() {
        let nl = tiny();
        let short = NetMap::new(vec![NetId::from_index(0)], HashMap::new(), 0);
        assert!(short.validate(&nl, &nl).unwrap_err().contains("covers 1"));
        let out_of_range = NetMap::new(
            vec![
                NetId::from_index(7),
                NetId::from_index(1),
                NetId::from_index(2),
            ],
            HashMap::new(),
            0,
        );
        assert!(out_of_range.validate(&nl, &nl).unwrap_err().contains("n7"));
    }
}
