//! Pins the cross-netlist mapping contract: every rewrite reports a
//! *total* old-net → new-net mapping, including the nets that pipelining
//! duplicates into `_pipeK` register chains or that moves insert fresh.
//!
//! This closes the ROADMAP's "cross-netlist cone mapping" gap — before the
//! mapping existed, callers reverse-engineered output locations from
//! `_pipe` name prefixes, which is lossy for duplicated/inserted nets.

use glitch_arith::{AdderStyle, ArrayMultiplier, RippleCarryAdder, WallaceTreeMultiplier};
use glitch_netlist::{NetId, Netlist};
use glitch_retime::rewrite::{duplicate_driver, insert_buffer, pipeline_rewrite};
use glitch_retime::{pipeline_netlist, NetMap, PipelineOptions};

/// Every original net must have an image, every original output an
/// observation point that is actually marked as an output, and distinct
/// same-stage values must not collapse onto one new net.
fn assert_total(original: &Netlist, transformed: &Netlist, map: &NetMap) {
    map.validate(original, transformed)
        .expect("mapping is total and well-targeted");
    assert_eq!(map.len(), original.net_count());
    let mut seen = vec![false; transformed.net_count()];
    for (old, _) in original.nets() {
        let new = map.new_net(old);
        assert!(
            !seen[new.index()],
            "two original nets collapsed onto `{}`",
            transformed.net(new).name()
        );
        seen[new.index()] = true;
    }
}

#[test]
fn pipeline_mapping_is_total_at_every_rank() {
    let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);
    for ranks in [0usize, 1, 2, 4, 6] {
        let piped = pipeline_netlist(&mult.netlist, ranks, PipelineOptions::default()).unwrap();
        assert_total(&mult.netlist, &piped.netlist, &piped.mapping);
        assert_eq!(piped.mapping.latency(), ranks);
    }
}

#[test]
fn pipeline_mapping_tracks_reregistered_outputs() {
    // At 4 ranks the multiplier's early product bits are re-registered to
    // the final stage: their observation point must differ from their
    // same-stage copy and carry a `_pipe` name — exactly the nets the old
    // name-prefix hack guessed at.
    let mult = ArrayMultiplier::new(4, AdderStyle::CompoundCell);
    let piped = pipeline_netlist(&mult.netlist, 4, PipelineOptions::default()).unwrap();
    let mut reregistered = 0;
    for &output in mult.netlist.outputs() {
        let observed = piped.mapping.output_net(output);
        assert!(piped.netlist.net(observed).is_primary_output());
        if observed != piped.mapping.new_net(output) {
            reregistered += 1;
            assert!(
                piped.netlist.net(observed).name().contains("_pipe"),
                "re-registered output should sit on a pipeline register"
            );
        }
    }
    assert!(
        reregistered > 0,
        "a 4-rank pipeline re-registers at least one early product bit"
    );
}

#[test]
fn pipeline_mapping_covers_wallace_and_ripple_shapes() {
    let wallace = WallaceTreeMultiplier::new(4, AdderStyle::CompoundCell);
    let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
    for netlist in [&wallace.netlist, &adder.netlist] {
        for ranks in [1usize, 3] {
            let piped = pipeline_netlist(netlist, ranks, PipelineOptions::default()).unwrap();
            assert_total(netlist, &piped.netlist, &piped.mapping);
        }
    }
}

#[test]
fn move_rewrites_report_total_mappings() {
    let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
    // Buffer every bufferable net; duplicate every duplicable driver.
    for (net, _) in adder.netlist.nets() {
        if adder.netlist.net(net).loads().is_empty() {
            continue;
        }
        let rewrite = insert_buffer(&adder.netlist, net).unwrap();
        assert_total(&adder.netlist, &rewrite.netlist, &rewrite.map);
    }
    for cell in adder.netlist.combinational_cells().collect::<Vec<_>>() {
        let outs = adder.netlist.cell(cell).outputs();
        if outs.len() != 1 || adder.netlist.net(outs[0]).loads().len() < 2 {
            continue;
        }
        let rewrite = duplicate_driver(&adder.netlist, cell).unwrap();
        assert_total(&adder.netlist, &rewrite.netlist, &rewrite.map);
    }
}

#[test]
fn composed_move_chains_stay_total() {
    let mult = ArrayMultiplier::new(3, AdderStyle::CompoundCell);
    // retime, then buffer a net in the pipelined netlist, composing maps
    // back to the original.
    let retimed = pipeline_rewrite(&mult.netlist, 2, PipelineOptions::default()).unwrap();
    let hot = retimed
        .netlist
        .nets()
        .map(|(id, _)| id)
        .find(|&id| !retimed.netlist.net(id).loads().is_empty())
        .unwrap();
    let buffered = insert_buffer(&retimed.netlist, hot).unwrap();
    let composed = retimed.map.compose(&buffered.map);
    assert_total(&mult.netlist, &buffered.netlist, &composed);
    assert_eq!(composed.latency(), 2);
}

#[test]
fn identity_map_round_trips_net_ids() {
    let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
    let map = NetMap::identity(&adder.netlist);
    assert_total(&adder.netlist, &adder.netlist, &map);
    for index in 0..adder.netlist.net_count() {
        let id = NetId::from_index(index);
        assert_eq!(map.new_net(id), id);
    }
}
