//! Cross-crate integration tests: netlist generators, the event-driven
//! simulator, transition accounting, retiming/pipelining and the power model
//! working together through the `glitch-core` flows.

use glitch_core::activity::ActivityReport;
use glitch_core::arith::{AdderStyle, ArrayMultiplier, DirectionDetector, RippleCarryAdder};
use glitch_core::netlist::Bus;
use glitch_core::retime::{delay_imbalance, pipeline_netlist, PipelineOptions, RetimingGraph};
use glitch_core::sim::{
    ActivityProbe, ClockedSimulator, InputAssignment, RandomStimulus, SimSession, StimulusProgram,
    UnitDelay, VcdProbe, VcdRecorder, ZeroDelay,
};
use glitch_core::{AnalysisConfig, DelayKind, GlitchAnalyzer, PowerExplorer};

fn detector_buses(det: &DirectionDetector) -> Vec<Bus> {
    let mut buses: Vec<Bus> = det.a.to_vec();
    buses.extend(det.b.iter().cloned());
    buses.push(det.threshold.clone());
    buses
}

#[test]
fn analyzer_and_manual_simulation_agree() {
    let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
    let config = AnalysisConfig {
        cycles: 250,
        seed: 77,
        ..AnalysisConfig::default()
    };
    let analysis = GlitchAnalyzer::new(config.clone())
        .analyze(
            &adder.netlist,
            &[adder.a.clone(), adder.b.clone()],
            &[(adder.cin, false)],
        )
        .unwrap();

    // Re-run the same stimulus by hand through a bare session.
    let stim =
        RandomStimulus::new(vec![adder.a.clone(), adder.b.clone()], 250, 77).hold(adder.cin, false);
    let mut report = SimSession::new(&adder.netlist)
        .stimulus(stim)
        .probe(ActivityProbe::new())
        .run()
        .unwrap();
    let trace = report.take_probe::<ActivityProbe>().unwrap().into_trace();
    let manual = ActivityReport::from_trace(&adder.netlist, &trace);

    assert_eq!(analysis.activity.totals(), manual.totals());
    assert_eq!(
        analysis.activity.totals().transitions,
        manual.totals().useful + manual.totals().useless
    );
}

#[test]
fn zero_delay_reference_is_glitch_free_for_every_generator() {
    let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
    let mult = ArrayMultiplier::new(5, AdderStyle::CompoundCell);
    let det = DirectionDetector::with_options(4, false, AdderStyle::CompoundCell);

    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 100,
        delay: DelayKind::Zero,
        ..AnalysisConfig::default()
    });
    let adder_run = analyzer
        .analyze(
            &adder.netlist,
            &[adder.a.clone(), adder.b.clone()],
            &[(adder.cin, false)],
        )
        .unwrap();
    let mult_run = analyzer
        .analyze(&mult.netlist, &[mult.x.clone(), mult.y.clone()], &[])
        .unwrap();
    let det_run = analyzer
        .analyze(&det.netlist, &detector_buses(&det), &[])
        .unwrap();
    for run in [&adder_run, &mult_run, &det_run] {
        assert_eq!(run.activity.totals().useless, 0, "zero delay cannot glitch");
        assert!(run.activity.totals().useful > 0);
    }
}

#[test]
fn pipelined_direction_detector_computes_the_same_directions() {
    let det = DirectionDetector::with_options(6, false, AdderStyle::CompoundCell);
    let ranks = 3usize;
    let piped = pipeline_netlist(&det.netlist, ranks, PipelineOptions::default()).unwrap();
    piped.netlist.validate().unwrap();
    assert_eq!(piped.latency, ranks);

    // Drive both implementations with the same vectors; the pipelined one
    // answers `ranks` cycles later.
    let mut flat_sim = ClockedSimulator::new(&det.netlist, UnitDelay).unwrap();
    let mut piped_sim = ClockedSimulator::new(&piped.netlist, UnitDelay).unwrap();

    let remap = |bus: &Bus| -> Bus {
        Bus::new(
            bus.bits()
                .iter()
                .map(|&b| piped.netlist.find_net(det.netlist.net(b).name()).unwrap())
                .collect(),
        )
    };
    let piped_inputs: Vec<Bus> = detector_buses(&det).iter().map(&remap).collect();
    let flat_inputs = detector_buses(&det);
    let piped_direction = Bus::new(
        det.direction
            .bits()
            .iter()
            .map(|&b| {
                let name = det.netlist.net(b).name();
                piped
                    .netlist
                    .outputs()
                    .iter()
                    .copied()
                    .find(|&o| {
                        let n = piped.netlist.net(o).name();
                        n == name || n.starts_with(&format!("{name}_pipe"))
                    })
                    .unwrap()
            })
            .collect(),
    );

    let mut gen_flat = RandomStimulus::new(flat_inputs, 40, 2024);
    let mut gen_piped = RandomStimulus::new(piped_inputs, 40, 2024);
    let mut flat_history = Vec::new();
    for cycle in 0..40usize {
        let vf = gen_flat.next_vector().unwrap();
        let vp = gen_piped.next_vector().unwrap();
        flat_sim.step(vf).unwrap();
        piped_sim.step(vp).unwrap();
        flat_history.push(flat_sim.bus_value(&det.direction).unwrap());
        if cycle >= ranks {
            let expected = flat_history[cycle - ranks];
            assert_eq!(
                piped_sim.bus_value(&piped_direction).unwrap(),
                expected,
                "cycle {cycle}"
            );
        }
    }
}

#[test]
fn pipelining_reduces_imbalance_and_glitches_together() {
    let det = DirectionDetector::with_options(6, false, AdderStyle::CompoundCell);
    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 150,
        ..AnalysisConfig::default()
    });
    let explorer = PowerExplorer::new(analyzer);
    let buses = detector_buses(&det);
    let result = explorer
        .explore(&det.netlist, &[1, 6], &buses, &[])
        .unwrap();
    let shallow = &result.points()[0];
    let deep = &result.points()[1];
    assert!(deep.activity.useless < shallow.activity.useless);
    assert!(deep.flipflops > shallow.flipflops);
    assert!(deep.power.logic < shallow.power.logic);
    assert!(deep.gate_equivalents > shallow.gate_equivalents);

    // The structural imbalance metric falls as well.
    let piped1 = pipeline_netlist(&det.netlist, 1, PipelineOptions::default()).unwrap();
    let piped6 = pipeline_netlist(&det.netlist, 6, PipelineOptions::default()).unwrap();
    assert!(delay_imbalance(&piped6.netlist).unwrap() < delay_imbalance(&piped1.netlist).unwrap());
}

#[test]
fn retiming_graph_of_generated_circuits_is_well_formed() {
    let det = DirectionDetector::with_options(4, false, AdderStyle::CompoundCell);
    let (graph, _) = RetimingGraph::from_netlist(&det.netlist, |_| 1).unwrap();
    let period = graph.clock_period();
    assert!(period > 1);
    assert!(period < u64::MAX);
    assert_eq!(period, det.netlist.combinational_depth().unwrap() as u64);
    // The environment source/sink split allows pipelining, so the minimum
    // period collapses towards a single cell delay.
    let best = graph.retime_minimum_period().unwrap();
    assert!(best.period <= period);
    assert!(graph.is_legal(&best));
}

#[test]
fn vcd_recording_captures_activity_of_a_real_run() {
    let adder = RippleCarryAdder::new(4, AdderStyle::CompoundCell);
    let mut report = SimSession::new(&adder.netlist)
        .delay_model(UnitDelay)
        .probe(VcdProbe::new(VcdRecorder::new(100)))
        .stimulus([
            InputAssignment::new()
                .with_bus(&adder.a, 5)
                .with_bus(&adder.b, 9)
                .with(adder.cin, false),
            InputAssignment::new()
                .with_bus(&adder.a, 10)
                .with_bus(&adder.b, 6)
                .with(adder.cin, false),
        ])
        .run()
        .unwrap();
    let vcd = report.take_probe::<VcdProbe>().unwrap();
    assert!(vcd.change_count() > 10);
    let text = vcd.into_vcd();
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("#100"));
}

#[test]
fn report_totals_are_conserved_across_groupings() {
    use glitch_core::activity::GroupedActivity;
    let adder = RippleCarryAdder::new(8, AdderStyle::CompoundCell);
    let analysis = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 200,
        ..AnalysisConfig::default()
    })
    .analyze(
        &adder.netlist,
        &[adder.a.clone(), adder.b.clone()],
        &[(adder.cin, false)],
    )
    .unwrap();
    let sums = GroupedActivity::from_nets("sum", &adder.netlist, &analysis.trace, adder.sum.bits());
    let carries = GroupedActivity::from_nets(
        "carry",
        &adder.netlist,
        &analysis.trace,
        adder.carries.bits(),
    );
    // Sum and carry nets are exactly the non-input nets of the adder, so the
    // grouped totals must add up to the report totals.
    let totals = analysis.activity.totals();
    assert_eq!(
        sums.total_transitions() + carries.total_transitions(),
        totals.transitions
    );
    assert_eq!(sums.total_useful() + carries.total_useful(), totals.useful);
    assert_eq!(
        sums.total_useless() + carries.total_useless(),
        totals.useless
    );
}

#[test]
fn gate_level_and_compound_cell_adders_have_identical_useful_activity() {
    // The two structural styles implement the same function, so the number
    // of useful transitions on the shared (sum) outputs must match exactly
    // for the same stimulus.
    let compound = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
    let gates = RippleCarryAdder::new(6, AdderStyle::Gates);
    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 200,
        seed: 9,
        ..Default::default()
    });
    let a = analyzer
        .analyze(
            &compound.netlist,
            &[compound.a.clone(), compound.b.clone()],
            &[(compound.cin, false)],
        )
        .unwrap();
    let b = analyzer
        .analyze(
            &gates.netlist,
            &[gates.a.clone(), gates.b.clone()],
            &[(gates.cin, false)],
        )
        .unwrap();
    let sum_useful_a: u64 = compound
        .sum
        .bits()
        .iter()
        .map(|&n| a.trace.node(n.index()).useful())
        .sum();
    let sum_useful_b: u64 = gates
        .sum
        .bits()
        .iter()
        .map(|&n| b.trace.node(n.index()).useful())
        .sum();
    assert_eq!(sum_useful_a, sum_useful_b);
}

#[test]
fn zero_delay_equals_unit_delay_useful_counts() {
    // Delay models change *when* nodes switch inside the cycle but not the
    // final values, so useful transitions are delay-model-independent.
    let mult = ArrayMultiplier::new(6, AdderStyle::CompoundCell);
    let buses = [mult.x.clone(), mult.y.clone()];
    let base = AnalysisConfig {
        cycles: 150,
        seed: 4,
        ..AnalysisConfig::default()
    };
    let unit = GlitchAnalyzer::new(base.clone())
        .analyze(&mult.netlist, &buses, &[])
        .unwrap();
    let zero = GlitchAnalyzer::new(AnalysisConfig {
        delay: DelayKind::Zero,
        ..base
    })
    .analyze(&mult.netlist, &buses, &[])
    .unwrap();
    assert_eq!(unit.activity.totals().useful, zero.activity.totals().useful);
    assert!(unit.activity.totals().useless > zero.activity.totals().useless);
}

#[test]
fn zero_delay_simulation_matches_functional_model() {
    let mult = ArrayMultiplier::new(6, AdderStyle::CompoundCell);
    let mut sim = ClockedSimulator::new(&mult.netlist, ZeroDelay).unwrap();
    for (a, b) in [(0u64, 0u64), (63, 63), (17, 42), (5, 40)] {
        sim.step(
            InputAssignment::new()
                .with_bus(&mult.x, a)
                .with_bus(&mult.y, b),
        )
        .unwrap();
        assert_eq!(sim.bus_value(&mult.product).unwrap(), a * b);
    }
}
