//! Property-based tests over the cross-crate invariants the reproduction
//! relies on: functional correctness of the generated circuits, conservation
//! laws of the transition accounting, and delay-model independence of the
//! useful work.

use glitch_core::activity::ActivityReport;
use glitch_core::arith::{build_abs_diff, AdderStyle, RippleCarryAdder, WallaceTreeMultiplier};
use glitch_core::netlist::Netlist;
use glitch_core::sim::{
    ActivityProbe, CellDelay, ClockedSimulator, DelayKind, InputAssignment, SimSession, UnitDelay,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The 8-bit ripple-carry adder computes a + b + cin for arbitrary
    /// operand sequences, in both structural styles.
    #[test]
    fn rca_is_correct_for_random_sequences(
        inputs in proptest::collection::vec((0u64..256, 0u64..256, proptest::bool::ANY), 1..20),
        gates in proptest::bool::ANY,
    ) {
        let style = if gates { AdderStyle::Gates } else { AdderStyle::CompoundCell };
        let adder = RippleCarryAdder::new(8, style);
        let mut sim = ClockedSimulator::new(&adder.netlist, UnitDelay).unwrap();
        for &(a, b, cin) in &inputs {
            sim.step(
                InputAssignment::new()
                    .with_bus(&adder.a, a)
                    .with_bus(&adder.b, b)
                    .with(adder.cin, cin),
            )
            .unwrap();
            let sum = sim.bus_value(&adder.sum).unwrap();
            let cout = u64::from(sim.net_bool(adder.cout).unwrap());
            prop_assert_eq!(sum + (cout << 8), a + b + u64::from(cin));
        }
    }

    /// The Wallace multiplier agrees with `u64` multiplication for arbitrary
    /// operand sequences (glitches never corrupt the settled result).
    #[test]
    fn wallace_multiplier_is_correct_for_random_sequences(
        inputs in proptest::collection::vec((0u64..256, 0u64..256), 1..12),
    ) {
        let mult = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
        let mut sim = ClockedSimulator::new(&mult.netlist, UnitDelay).unwrap();
        for &(a, b) in &inputs {
            sim.step(InputAssignment::new().with_bus(&mult.x, a).with_bus(&mult.y, b)).unwrap();
            prop_assert_eq!(sim.bus_value(&mult.product).unwrap(), a * b);
        }
    }

    /// The absolute-difference block is exact for arbitrary widths up to 10
    /// bits and arbitrary operand pairs.
    #[test]
    fn abs_diff_is_exact(width in 2usize..10, pairs in proptest::collection::vec((0u64..1024, 0u64..1024), 1..10)) {
        let mut nl = Netlist::new("absdiff_prop");
        let a = nl.add_input_bus("a", width);
        let b = nl.add_input_bus("b", width);
        let ports = build_abs_diff(&mut nl, &a, &b, "d", AdderStyle::CompoundCell);
        nl.mark_output_bus(&ports.magnitude);
        let mask = (1u64 << width) - 1;
        let mut sim = ClockedSimulator::new(&nl, UnitDelay).unwrap();
        for &(x, y) in &pairs {
            let (x, y) = (x & mask, y & mask);
            sim.step(InputAssignment::new().with_bus(&a, x).with_bus(&b, y)).unwrap();
            prop_assert_eq!(sim.bus_value(&ports.magnitude).unwrap(), x.abs_diff(y));
        }
    }

    /// Conservation law: total transitions = useful + useless, and the
    /// useful count never exceeds one per node per cycle.
    #[test]
    fn activity_accounting_is_conserved(
        seed in 0u64..1000,
        cycles in 1u64..40,
    ) {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let stim = glitch_core::sim::RandomStimulus::new(
            vec![adder.a.clone(), adder.b.clone()],
            cycles,
            seed,
        )
        .hold(adder.cin, false);
        let mut session_report = SimSession::new(&adder.netlist)
            .stimulus(stim)
            .probe(ActivityProbe::new())
            .run()
            .unwrap();
        let trace = session_report.take_probe::<ActivityProbe>().unwrap().into_trace();
        let report = ActivityReport::from_trace(&adder.netlist, &trace);
        let totals = report.totals();
        prop_assert_eq!(totals.transitions, totals.useful + totals.useless);
        prop_assert!(totals.useful <= cycles * report.node_count() as u64);
        prop_assert_eq!(totals.cycles, cycles);
    }

    /// Useful transitions are a property of the computation, not of the
    /// delay model: unit-delay, zero-delay and unbalanced-cell-delay
    /// simulations of the same circuit and stimulus agree on them.
    #[test]
    fn useful_transitions_are_delay_model_independent(seed in 0u64..500) {
        let adder = RippleCarryAdder::new(6, AdderStyle::CompoundCell);
        let cycles = 25u64;
        let run = |useful_only: bool, which: u8| -> u64 {
            let stim = glitch_core::sim::RandomStimulus::new(
                vec![adder.a.clone(), adder.b.clone()],
                cycles,
                seed,
            )
            .hold(adder.cin, false);
            let delay = match which {
                0 => DelayKind::Unit,
                1 => DelayKind::Zero,
                _ => DelayKind::Custom(CellDelay::new().with_full_adder(5, 2)),
            };
            let mut report = SimSession::new(&adder.netlist)
                .delay(delay)
                .stimulus(stim)
                .probe(ActivityProbe::new())
                .run()
                .unwrap();
            let trace = report.take_probe::<ActivityProbe>().unwrap().into_trace();
            let totals = ActivityReport::from_trace(&adder.netlist, &trace).totals();
            if useful_only {
                totals.useful
            } else {
                totals.useless
            }
        };
        let unit_useful = run(true, 0);
        let zero_useful = run(true, 1);
        let slow_useful = run(true, 2);
        prop_assert_eq!(unit_useful, zero_useful);
        prop_assert_eq!(unit_useful, slow_useful);
        // And the zero-delay reference never glitches.
        prop_assert_eq!(run(false, 1), 0);
    }
}
