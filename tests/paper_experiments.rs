//! Scaled-down versions of the paper's experiments, asserting that the
//! *shapes* the paper reports hold in this reproduction. The full-size runs
//! (paper parameters, full vector counts) live in the `glitch-bench`
//! experiment binaries; these tests use smaller vector counts so the suite
//! stays fast.

use glitch_core::analytic::{transition_ratio_carry, transition_ratio_sum, AdderExpectation};
use glitch_core::arith::{
    AdderStyle, ArrayMultiplier, DirectionDetector, RippleCarryAdder, WallaceTreeMultiplier,
};
use glitch_core::netlist::Bus;
use glitch_core::{AnalysisConfig, DelayKind, GlitchAnalyzer, PowerExplorer};

fn detector_buses(det: &DirectionDetector) -> Vec<Bus> {
    let mut buses: Vec<Bus> = det.a.to_vec();
    buses.extend(det.b.iter().cloned());
    buses.push(det.threshold.clone());
    buses
}

/// E2 — the simulated per-bit transition ratios of a ripple-carry adder
/// follow equations 2 and 3 of the paper.
#[test]
fn rca_transition_ratios_match_the_closed_forms() {
    const CYCLES: u64 = 2000;
    let adder = RippleCarryAdder::new(12, AdderStyle::CompoundCell);
    let analysis = GlitchAnalyzer::new(AnalysisConfig {
        cycles: CYCLES,
        ..Default::default()
    })
    .analyze(
        &adder.netlist,
        &[adder.a.clone(), adder.b.clone()],
        &[(adder.cin, false)],
    )
    .unwrap();
    for bit in 0..12usize {
        let sum_sim = analysis
            .trace
            .node(adder.sum.bit(bit).index())
            .transitions() as f64
            / CYCLES as f64;
        let carry_sim = analysis
            .trace
            .node(adder.carries.bit(bit).index())
            .transitions() as f64
            / CYCLES as f64;
        let sum_expect = transition_ratio_sum(bit as u32);
        let carry_expect = transition_ratio_carry(bit as u32);
        assert!(
            (sum_sim - sum_expect).abs() < 0.1,
            "sum bit {bit}: simulated {sum_sim:.3} vs analytic {sum_expect:.3}"
        );
        assert!(
            (carry_sim - carry_expect).abs() < 0.1,
            "carry bit {bit}: simulated {carry_sim:.3} vs analytic {carry_expect:.3}"
        );
    }
}

/// E3 — the totals of the Figure 5 experiment (scaled down to 1000 vectors):
/// simulation and the closed-form expectation agree within a few percent and
/// the useless/useful ratio is close to the paper's 0.88.
#[test]
fn rca_totals_match_expectation_and_lf_ratio() {
    const CYCLES: u64 = 1000;
    let adder = RippleCarryAdder::new(16, AdderStyle::CompoundCell);
    let analysis = GlitchAnalyzer::new(AnalysisConfig {
        cycles: CYCLES,
        ..Default::default()
    })
    .analyze(
        &adder.netlist,
        &[adder.a.clone(), adder.b.clone()],
        &[(adder.cin, false)],
    )
    .unwrap();
    let totals = analysis.activity.totals();
    let expect = AdderExpectation::ripple_carry(16, CYCLES);
    let rel = |sim: u64, exp: f64| (sim as f64 - exp).abs() / exp;
    assert!(rel(totals.transitions, expect.total_transitions()) < 0.05);
    assert!(rel(totals.useful, expect.total_useful()) < 0.05);
    assert!(rel(totals.useless, expect.total_useless()) < 0.10);
    let lf = totals.useless_to_useful();
    assert!((lf - 0.88).abs() < 0.1, "L/F = {lf:.3}");
}

/// E4 — Table 1's shape: the array multiplier produces far more useless
/// transitions than the Wallace tree of the same size, and the gap widens
/// at 16x16.
#[test]
fn array_multiplier_glitches_much_more_than_wallace() {
    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 300,
        ..Default::default()
    });

    let array8 = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
    let wallace8 = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
    let a8 = analyzer
        .analyze(&array8.netlist, &[array8.x.clone(), array8.y.clone()], &[])
        .unwrap();
    let w8 = analyzer
        .analyze(
            &wallace8.netlist,
            &[wallace8.x.clone(), wallace8.y.clone()],
            &[],
        )
        .unwrap();
    let a8_lf = a8.activity.totals().useless_to_useful();
    let w8_lf = w8.activity.totals().useless_to_useful();
    assert!(
        a8_lf > 2.0 * w8_lf,
        "8x8: array L/F {a8_lf:.2} vs wallace {w8_lf:.2}"
    );
    assert!(a8.activity.totals().useless > 2 * w8.activity.totals().useless);

    let array16 = ArrayMultiplier::new(16, AdderStyle::CompoundCell);
    let wallace16 = WallaceTreeMultiplier::new(16, AdderStyle::CompoundCell);
    let a16 = analyzer
        .analyze(
            &array16.netlist,
            &[array16.x.clone(), array16.y.clone()],
            &[],
        )
        .unwrap();
    let w16 = analyzer
        .analyze(
            &wallace16.netlist,
            &[wallace16.x.clone(), wallace16.y.clone()],
            &[],
        )
        .unwrap();
    let a16_lf = a16.activity.totals().useless_to_useful();
    let w16_lf = w16.activity.totals().useless_to_useful();
    assert!(
        a16_lf > 3.0 * w16_lf,
        "16x16: array L/F {a16_lf:.2} vs wallace {w16_lf:.2}"
    );
    // The paper's Table 1: the array's L/F deteriorates from 8x8 to 16x16
    // while the Wallace tree's improves (or at least does not deteriorate as
    // fast).
    assert!(a16_lf > a8_lf);
    assert!(w16_lf < a16_lf);
}

/// E5 — Table 2's shape: making the full-adder sum output twice as slow as
/// the carry output increases the useless transitions of both multiplier
/// architectures while leaving useful transitions unchanged.
#[test]
fn slower_sum_outputs_worsen_the_useless_ratio() {
    let base = AnalysisConfig {
        cycles: 300,
        ..Default::default()
    };
    let realistic = AnalysisConfig {
        cycles: 300,
        delay: DelayKind::RealisticAdderCells,
        ..Default::default()
    };

    for (name, netlist, buses) in [
        {
            let m = ArrayMultiplier::new(8, AdderStyle::CompoundCell);
            ("array", m.netlist.clone(), [m.x.clone(), m.y.clone()])
        },
        {
            let m = WallaceTreeMultiplier::new(8, AdderStyle::CompoundCell);
            ("wallace", m.netlist.clone(), [m.x.clone(), m.y.clone()])
        },
    ] {
        let unit = GlitchAnalyzer::new(base.clone())
            .analyze(&netlist, &buses, &[])
            .unwrap();
        let slow = GlitchAnalyzer::new(realistic.clone())
            .analyze(&netlist, &buses, &[])
            .unwrap();
        assert!(
            slow.activity.totals().useless > unit.activity.totals().useless,
            "{name}: useless must increase with the unbalanced cell delays"
        );
        assert_eq!(
            slow.activity.totals().useful,
            unit.activity.totals().useful,
            "{name}"
        );
    }
}

/// E6 — the direction detector's combinational logic produces several
/// useless transitions per useful one (the paper reports L/F = 3.79, i.e. a
/// potential activity reduction of 4.8x from balancing).
#[test]
fn direction_detector_has_a_large_useless_ratio() {
    let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let analysis = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 500,
        ..Default::default()
    })
    .analyze(&det.netlist, &detector_buses(&det), &[])
    .unwrap();
    let lf = analysis.activity.totals().useless_to_useful();
    assert!(lf > 1.5, "L/F = {lf:.2}");
    assert!(analysis.balance_reduction_factor() > 2.5);
}

/// E7 — the Table 3 / Figure 10 shape: pipelining the direction detector
/// reduces logic power severalfold, flipflop and clock power grow with the
/// flipflop count, and total power is minimised at an intermediate depth.
#[test]
fn retiming_sweep_shows_a_power_minimum() {
    let det = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 200,
        ..Default::default()
    });
    let explorer = PowerExplorer::new(analyzer);
    let buses: Vec<Bus> = det.a.iter().chain(det.b.iter()).cloned().collect();
    let held: Vec<_> = det.threshold.bits().iter().map(|&b| (b, false)).collect();
    let result = explorer
        .explore(&det.netlist, &[1, 2, 4, 8, 16], &buses, &held)
        .unwrap();
    let points = result.points();

    // Flipflop and clock power increase monotonically with the depth.
    for pair in points.windows(2) {
        assert!(pair[1].flipflops > pair[0].flipflops);
        assert!(pair[1].power.flipflop > pair[0].power.flipflop);
        assert!(pair[1].power.clock > pair[0].power.clock);
    }
    // Logic power falls substantially (paper: factor ~3.6 between the least
    // and most pipelined variants).
    let first = &points[0];
    let last = &points[points.len() - 1];
    assert!(
        first.power.logic > 1.8 * last.power.logic,
        "logic power should fall at least 1.8x, got {:.2} -> {:.2} mW",
        first.power.logic * 1e3,
        last.power.logic * 1e3
    );
    // The total-power optimum is at an intermediate pipelining depth.
    assert!(result.has_interior_minimum(), "{result}");
}
