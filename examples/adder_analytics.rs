//! Closed-form versus simulated transition activity of a ripple-carry adder
//! (equations 2–7 and Figure 5 of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p glitch-core --example adder_analytics
//! ```

use glitch_core::activity::GroupedActivity;
use glitch_core::analytic::AdderExpectation;
use glitch_core::arith::{AdderStyle, RippleCarryAdder};
use glitch_core::{AnalysisConfig, GlitchAnalyzer, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const BITS: usize = 16;
    const VECTORS: u64 = 4000;

    let adder = RippleCarryAdder::new(BITS, AdderStyle::CompoundCell);
    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: VECTORS,
        ..AnalysisConfig::default()
    });
    let analysis = analyzer.analyze(
        &adder.netlist,
        &[adder.a.clone(), adder.b.clone()],
        &[(adder.cin, false)],
    )?;

    let expectation = AdderExpectation::ripple_carry(BITS as u32, VECTORS);
    let sums = GroupedActivity::from_nets("sum", &adder.netlist, &analysis.trace, adder.sum.bits());
    let carries = GroupedActivity::from_nets(
        "carry",
        &adder.netlist,
        &analysis.trace,
        adder.carries.bits(),
    );

    let mut table = TextTable::new(vec![
        "bit",
        "sum useful (sim)",
        "sum useful (eq.4)",
        "sum useless (sim)",
        "sum useless (eq.5)",
        "carry useless (sim)",
        "carry useless (eq.7)",
    ]);
    for bit in 0..BITS {
        table.add_row(vec![
            bit.to_string(),
            sums.bits()[bit].activity.useful().to_string(),
            format!("{:.0}", expectation.bits()[bit].sum_useful),
            sums.bits()[bit].activity.useless().to_string(),
            format!("{:.0}", expectation.bits()[bit].sum_useless),
            carries.bits()[bit].activity.useless().to_string(),
            format!("{:.0}", expectation.bits()[bit].carry_useless),
        ]);
    }
    println!("16-bit ripple-carry adder, {VECTORS} random vectors\n");
    println!("{table}");

    let totals = analysis.activity.totals();
    println!(
        "simulated totals: {} transitions, {} useful, {} useless, L/F = {:.2}",
        totals.transitions,
        totals.useful,
        totals.useless,
        totals.useless_to_useful()
    );
    println!(
        "closed forms    : {:.0} transitions, {:.0} useful, {:.0} useless, L/F = {:.2}",
        expectation.total_transitions(),
        expectation.total_useful(),
        expectation.total_useless(),
        expectation.useless_to_useful()
    );
    Ok(())
}
