//! Quickstart: build a small datapath, count its glitches, estimate power.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p glitch-core --example quickstart
//! ```

use glitch_core::arith::{AdderStyle, RippleCarryAdder};
use glitch_core::{AnalysisConfig, DelayKind, GlitchAnalyzer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a circuit: a 16-bit ripple-carry adder whose operands are new
    //    every clock cycle (a typical multiplexed datapath element).
    let adder = RippleCarryAdder::new(16, AdderStyle::CompoundCell);
    println!("{}", adder.netlist.stats());

    // 2. Analyse it: simulate 4000 random input vectors under a unit-delay
    //    model, count every node's transitions and classify them into useful
    //    transitions and glitches by parity evaluation.
    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 4000,
        delay: DelayKind::Unit,
        ..AnalysisConfig::default()
    });
    let analysis = analyzer.analyze(
        &adder.netlist,
        &[adder.a.clone(), adder.b.clone()],
        &[(adder.cin, false)],
    )?;

    println!("{}", analysis.activity);
    println!("{}", analysis.power);
    println!(
        "balancing all delay paths would reduce combinational activity by a factor of {:.2}",
        analysis.balance_reduction_factor()
    );

    // 3. Compare against the ideal, glitch-free reference.
    let ideal = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 4000,
        delay: DelayKind::Zero,
        ..AnalysisConfig::default()
    })
    .analyze(
        &adder.netlist,
        &[adder.a.clone(), adder.b.clone()],
        &[(adder.cin, false)],
    )?;
    println!(
        "glitch-free logic power would be {:.2} mW instead of {:.2} mW",
        ideal.power.breakdown.logic * 1e3,
        analysis.power.breakdown.logic * 1e3
    );
    Ok(())
}
