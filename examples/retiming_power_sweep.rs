//! Retiming for power: sweep the pipelining depth of the direction detector
//! and find the flipflop count that minimises total power (the section 5
//! experiment of the paper, Table 3 / Figure 10).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p glitch-core --example retiming_power_sweep
//! ```

use glitch_core::arith::{AdderStyle, DirectionDetector};
use glitch_core::{AnalysisConfig, GlitchAnalyzer, PowerExplorer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The detector is built without its input registers: the explorer's
    // first register rank plays that role, so rank 1 reproduces the paper's
    // baseline circuit (input flipflops only).
    let detector = DirectionDetector::with_options(8, false, AdderStyle::CompoundCell);
    let mut random_buses = Vec::new();
    random_buses.extend(detector.a.iter().cloned());
    random_buses.extend(detector.b.iter().cloned());

    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 500,
        frequency: 5e6,
        ..AnalysisConfig::default()
    });
    let explorer = PowerExplorer::new(analyzer);

    let ranks = [1usize, 2, 3, 4, 6, 8, 12];
    let held: Vec<_> = detector
        .threshold
        .bits()
        .iter()
        .map(|&b| (b, false))
        .collect();
    let result = explorer.explore(&detector.netlist, &ranks, &random_buses, &held)?;

    println!("direction detector, 500 random vectors, 5 MHz, 0.8 um / 5 V technology\n");
    println!("{result}");
    let best = result.optimum_point();
    println!(
        "optimum retiming for power: {} register ranks ({} flipflops, {:.2} mW total)",
        best.ranks,
        best.flipflops,
        best.power.total() * 1e3
    );
    if result.has_interior_minimum() {
        println!("the minimum lies strictly between the least and most pipelined variants,");
        println!("matching Figure 10 of the paper.");
    }
    Ok(())
}
