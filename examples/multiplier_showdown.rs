//! Array versus Wallace-tree multipliers: how delay imbalance creates
//! glitches (the section 4.1 experiment of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p glitch-core --example multiplier_showdown
//! ```

use glitch_core::arith::{AdderStyle, ArrayMultiplier, WallaceTreeMultiplier};
use glitch_core::netlist::{Bus, Netlist};
use glitch_core::retime::delay_imbalance;
use glitch_core::{AnalysisConfig, DelayKind, GlitchAnalyzer, TextTable};

struct Candidate {
    name: &'static str,
    netlist: Netlist,
    operands: Vec<Bus>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut candidates = Vec::new();
    for bits in [8usize, 16] {
        let array = ArrayMultiplier::new(bits, AdderStyle::CompoundCell);
        candidates.push(Candidate {
            name: if bits == 8 {
                "array 8x8"
            } else {
                "array 16x16"
            },
            operands: vec![array.x.clone(), array.y.clone()],
            netlist: array.netlist,
        });
        let wallace = WallaceTreeMultiplier::new(bits, AdderStyle::CompoundCell);
        candidates.push(Candidate {
            name: if bits == 8 {
                "wallace 8x8"
            } else {
                "wallace 16x16"
            },
            operands: vec![wallace.x.clone(), wallace.y.clone()],
            netlist: wallace.netlist,
        });
    }

    let analyzer = GlitchAnalyzer::new(AnalysisConfig {
        cycles: 500,
        delay: DelayKind::Unit,
        ..AnalysisConfig::default()
    });

    let mut table = TextTable::new(vec![
        "multiplier",
        "total",
        "useful F",
        "useless L",
        "L/F",
        "imbalance",
        "logic mW",
    ]);
    for candidate in &candidates {
        let analysis = analyzer.analyze(&candidate.netlist, &candidate.operands, &[])?;
        let totals = analysis.activity.totals();
        table.add_row(vec![
            candidate.name.to_string(),
            totals.transitions.to_string(),
            totals.useful.to_string(),
            totals.useless.to_string(),
            format!("{:.2}", totals.useless_to_useful()),
            delay_imbalance(&candidate.netlist)?.to_string(),
            format!("{:.2}", analysis.power.breakdown.logic * 1e3),
        ]);
    }
    println!("transition activity for 500 random inputs (unit delay)\n");
    println!("{table}");
    println!("The balanced Wallace tree produces a small fraction of the array's glitches,");
    println!("exactly the effect Table 1 of the paper reports.");
    Ok(())
}
